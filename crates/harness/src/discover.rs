//! Checkpoint-directory discovery: non-destructive enumeration of the
//! journals in a directory, with enough classification to decide which
//! campaigns can (and should) be resumed.
//!
//! [`Journal::resume`](crate::Journal::resume) opens *one* journal for
//! *one* known campaign and truncates torn tails as a side effect. A
//! service supervising many campaigns needs the opposite view first:
//! "what is in this checkpoint directory, and which of my campaigns do
//! these files belong to?" — answered read-only, so inspection never
//! mutates evidence before a resume decision is made.
//!
//! * [`inspect`] reads one journal without modifying it and reports its
//!   fingerprint, record census and torn-tail size.
//! * [`discover`] enumerates every `*.journal` in a directory
//!   (non-journal files and unreadable entries are classified, not
//!   errors — a checkpoint directory survives strangers).
//! * [`offer_resumable`] intersects a discovery with the campaigns a
//!   caller actually knows, offering exactly the journals worth a
//!   [`Journal::resume`](crate::Journal::resume): fingerprint-matched
//!   and incomplete. Complete journals are reported separately (pure
//!   replay, nothing to execute); foreign fingerprints are never
//!   offered.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::journal::{parse_header, parse_record};
use crate::{CampaignId, HarnessError};

/// What one file in a checkpoint directory turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalStatus {
    /// A valid journal whose record census covers every chunk of its
    /// plan (per the header's `total=`/`chunk=` descriptor): resuming it
    /// is a pure replay.
    Complete,
    /// A valid journal with chunks still missing — the resume target.
    /// Torn-tail files land here too: the salvageable prefix is what
    /// counts.
    Partial,
    /// The file does not carry a valid `realm-journal v1` header (a
    /// stranger in the directory, or a crash before the header hit the
    /// disk). Never offered for resume.
    Foreign,
}

/// The read-only inspection of one journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalInfo {
    /// The file inspected.
    pub path: PathBuf,
    /// The fingerprint from the header (`None` ⇒ foreign/torn header).
    pub fingerprint: Option<u64>,
    /// The human descriptor from the `#` comment line, if present.
    pub descriptor: Option<String>,
    /// Checksummed records in the intact prefix (duplicates counted
    /// once; the census a resume would replay).
    pub distinct_chunks: u64,
    /// Chunks the plan expects, parsed from the descriptor's
    /// `total=`/`chunk=` fields (`None` when the descriptor is absent
    /// or unparseable).
    pub expected_chunks: Option<u64>,
    /// Bytes of invalid tail after the intact prefix (0 for a cleanly
    /// closed journal). Inspection reports it; only a real
    /// [`Journal::resume`](crate::Journal::resume) truncates it.
    pub torn_bytes: u64,
}

impl JournalInfo {
    /// The file's classification (see [`JournalStatus`]).
    pub fn status(&self) -> JournalStatus {
        match (self.fingerprint, self.expected_chunks) {
            (None, _) => JournalStatus::Foreign,
            (Some(_), Some(expected)) if self.distinct_chunks >= expected && expected > 0 => {
                JournalStatus::Complete
            }
            (Some(_), _) => JournalStatus::Partial,
        }
    }
}

/// Parses `total=T chunk=C` out of a journal descriptor line (the
/// `Display` form of a [`CampaignId`]) and returns the chunk count
/// `ceil(T / C)`. Parses from the right so subjects containing `=` or
/// spaces cannot confuse it.
fn expected_chunks_from_descriptor(descriptor: &str) -> Option<u64> {
    let mut total = None;
    let mut chunk = None;
    for token in descriptor.split_whitespace().rev() {
        if let Some(v) = token.strip_prefix("total=") {
            total.get_or_insert(v.parse::<u64>().ok()?);
        } else if let Some(v) = token.strip_prefix("chunk=") {
            chunk.get_or_insert(v.parse::<u64>().ok()?);
        }
        if total.is_some() && chunk.is_some() {
            break;
        }
    }
    let (total, chunk) = (total?, chunk?);
    if chunk == 0 {
        return None;
    }
    Some(total.div_ceil(chunk))
}

/// Inspects one journal file **read-only**: no truncation, no lock, no
/// side effects. I/O failures are real errors; content problems are
/// classification ([`JournalStatus::Foreign`], torn bytes), because a
/// checkpoint directory after a crash legitimately contains damaged
/// files.
pub fn inspect(path: &Path) -> Result<JournalInfo, HarnessError> {
    let text = std::fs::read_to_string(path).map_err(|e| HarnessError::io(path, e))?;
    let mut info = JournalInfo {
        path: path.to_path_buf(),
        fingerprint: None,
        descriptor: None,
        distinct_chunks: 0,
        expected_chunks: None,
        torn_bytes: 0,
    };
    let Some(header_end) = text.find('\n') else {
        info.torn_bytes = text.len() as u64;
        return Ok(info);
    };
    let Some(fingerprint) = parse_header(&text[..header_end]) else {
        info.torn_bytes = text.len() as u64;
        return Ok(info);
    };
    info.fingerprint = Some(fingerprint);

    let mut chunks: BTreeSet<u64> = BTreeSet::new();
    let mut cursor = header_end + 1;
    let mut valid_end = cursor;
    while cursor < text.len() {
        let Some(off) = text[cursor..].find('\n') else {
            break; // unterminated tail
        };
        let line = &text[cursor..cursor + off];
        if line.starts_with('#') || line.is_empty() {
            if let Some(comment) = line.strip_prefix("# ") {
                if info.descriptor.is_none() {
                    info.descriptor = Some(comment.to_string());
                    info.expected_chunks = expected_chunks_from_descriptor(comment);
                }
            }
        } else {
            let Some((index, _payload)) = parse_record(line) else {
                break; // first invalid record: everything after is torn
            };
            chunks.insert(index);
        }
        cursor += off + 1;
        valid_end = cursor;
    }
    info.distinct_chunks = chunks.len() as u64;
    info.torn_bytes = (text.len() - valid_end) as u64;
    Ok(info)
}

/// Enumerates every `*.journal` file in `dir`, inspected read-only and
/// sorted by file name (deterministic across runs). Unreadable entries
/// become [`JournalStatus::Foreign`] infos rather than failing the
/// whole scan; a missing directory is an empty discovery, not an error
/// (the legitimate state before the first campaign checkpoints).
pub fn discover(dir: &Path) -> Result<Vec<JournalInfo>, HarnessError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(HarnessError::io(dir, e)),
    };
    let mut infos = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| HarnessError::io(dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("journal") || !path.is_file() {
            continue;
        }
        match inspect(&path) {
            Ok(info) => infos.push(info),
            Err(_) => infos.push(JournalInfo {
                path,
                fingerprint: None,
                descriptor: None,
                distinct_chunks: 0,
                expected_chunks: None,
                torn_bytes: 0,
            }),
        }
    }
    infos.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(infos)
}

/// What a discovery means for one set of known campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumePlan {
    /// Campaigns with a fingerprint-matched, incomplete journal — the
    /// ones worth a [`Journal::resume`](crate::Journal::resume).
    pub resumable: Vec<(CampaignId, JournalInfo)>,
    /// Campaigns whose journal already covers every chunk (resume is a
    /// pure replay; nothing executes).
    pub complete: Vec<(CampaignId, JournalInfo)>,
    /// Campaigns with no journal in the directory at all (fresh starts).
    pub missing: Vec<CampaignId>,
}

/// Matches a discovery against the campaigns the caller knows and
/// offers **only the resumable ones**: fingerprint-matched journals
/// that still have chunks to execute. Complete journals are listed
/// separately; foreign files and fingerprints no known campaign claims
/// are never offered (resuming them would violate the fingerprint
/// binding that keeps resume bit-identical).
pub fn offer_resumable(infos: &[JournalInfo], known: &[CampaignId]) -> ResumePlan {
    let mut plan = ResumePlan {
        resumable: Vec::new(),
        complete: Vec::new(),
        missing: Vec::new(),
    };
    for id in known {
        let fp = id.fingerprint();
        let matched = infos
            .iter()
            .find(|info| info.fingerprint == Some(fp) && info.status() != JournalStatus::Foreign);
        match matched {
            Some(info) if info.status() == JournalStatus::Complete => {
                plan.complete.push((id.clone(), info.clone()));
            }
            Some(info) => plan.resumable.push((id.clone(), info.clone())),
            None => plan.missing.push(id.clone()),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Journal;
    use realm_par::ChunkPlan;
    use std::io::Write;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("realm-discover-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn id(tag: &str, total: u64, chunk: u64) -> CampaignId {
        CampaignId::new("disc", tag, ChunkPlan::new(total, chunk), 5)
    }

    /// Writes a journal with `n` records for `id` and returns its path.
    fn journal_with(dir: &Path, id: &CampaignId, n: u64) -> PathBuf {
        let path = dir.join(id.journal_file_name());
        let mut j = Journal::create(&path, id).unwrap();
        for i in 0..n {
            j.append(i, &[i as u8, 0xAB]).unwrap();
        }
        path
    }

    #[test]
    fn expected_chunks_parse_from_descriptor() {
        assert_eq!(
            expected_chunks_from_descriptor("mc: REALM16 (t=0) total=100 chunk=30 seed=2"),
            Some(4)
        );
        // A hostile subject cannot spoof the plan fields: rightmost wins.
        assert_eq!(
            expected_chunks_from_descriptor("mc: total=1 chunk=1 total=100 chunk=30 seed=2"),
            Some(4)
        );
        assert_eq!(expected_chunks_from_descriptor("no plan here"), None);
        assert_eq!(
            expected_chunks_from_descriptor("x total=10 chunk=0 seed=1"),
            None
        );
    }

    #[test]
    fn inspect_is_read_only_even_on_torn_tails() {
        let dir = scratch("readonly");
        let full = id("full", 40, 10);
        let path = journal_with(&dir, &full, 2);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"c 2 aa").unwrap(); // torn: no checksum, no newline
        drop(f);
        let before = std::fs::read(&path).unwrap();

        let info = inspect(&path).unwrap();
        assert_eq!(info.fingerprint, Some(full.fingerprint()));
        assert_eq!(info.distinct_chunks, 2);
        assert_eq!(info.expected_chunks, Some(4));
        assert!(info.torn_bytes > 0);
        assert_eq!(info.status(), JournalStatus::Partial);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "inspect must not truncate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_classifies_complete_partial_torn_and_foreign() {
        let dir = scratch("classify");
        // Complete: 4 chunks planned, 4 journaled.
        let complete = id("complete", 40, 10);
        journal_with(&dir, &complete, 4);
        // Partial: 4 planned, 2 journaled.
        let partial = id("partial", 40, 10);
        journal_with(&dir, &partial, 2);
        // Torn tail: valid prefix of 1, then a crash mid-append.
        let torn = id("torn", 40, 10);
        let torn_path = journal_with(&dir, &torn, 1);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&torn_path)
            .unwrap();
        f.write_all(b"c 1 deadbe").unwrap();
        drop(f);
        // Foreign fingerprint: a valid journal for a campaign nobody
        // here knows.
        let foreign_id = id("somebody-else", 80, 10);
        journal_with(&dir, &foreign_id, 3);
        // Foreign content: not a journal at all.
        std::fs::write(dir.join("notes.journal"), "TODO buy milk\n").unwrap();
        // Non-journal extension: ignored entirely.
        std::fs::write(dir.join("results.json"), "{}").unwrap();

        let infos = discover(&dir).unwrap();
        assert_eq!(infos.len(), 5, "{infos:?}");
        let by_fp = |cid: &CampaignId| {
            infos
                .iter()
                .find(|i| i.fingerprint == Some(cid.fingerprint()))
                .unwrap()
        };
        assert_eq!(by_fp(&complete).status(), JournalStatus::Complete);
        assert_eq!(by_fp(&partial).status(), JournalStatus::Partial);
        let torn_info = by_fp(&torn);
        assert_eq!(torn_info.status(), JournalStatus::Partial);
        assert!(torn_info.torn_bytes > 0);
        assert_eq!(
            infos
                .iter()
                .filter(|i| i.status() == JournalStatus::Foreign)
                .count(),
            1,
            "the non-journal file is foreign"
        );

        // The offer: only partial + torn are resumable; the complete one
        // is pure replay; the foreign fingerprint is never offered.
        let known = [complete.clone(), partial.clone(), torn.clone()];
        let plan = offer_resumable(&infos, &known);
        let resumable: BTreeSet<u64> = plan
            .resumable
            .iter()
            .map(|(id, _)| id.fingerprint())
            .collect();
        assert_eq!(
            resumable,
            BTreeSet::from([partial.fingerprint(), torn.fingerprint()]),
            "only the incomplete journals of known campaigns are offered"
        );
        assert_eq!(plan.complete.len(), 1);
        assert_eq!(plan.complete[0].0.fingerprint(), complete.fingerprint());
        assert!(plan.missing.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_campaign_with_no_journal_is_missing() {
        let dir = scratch("missing");
        let known = [id("fresh", 10, 5)];
        let plan = offer_resumable(&discover(&dir).unwrap(), &known);
        assert!(plan.resumable.is_empty());
        assert_eq!(plan.missing.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_discovery() {
        let dir = scratch("gone");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(discover(&dir).unwrap().is_empty());
    }

    #[test]
    fn discovery_order_is_deterministic() {
        let dir = scratch("order");
        for tag in ["b", "a", "c"] {
            journal_with(&dir, &id(tag, 20, 10), 1);
        }
        let first = discover(&dir).unwrap();
        let second = discover(&dir).unwrap();
        assert_eq!(first, second);
        let mut names: Vec<_> = first.iter().map(|i| i.path.clone()).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        names.sort();
        assert_eq!(names, sorted);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
