//! Cooperative cancellation: a cloneable token checked at chunk
//! boundaries, with optional termination-signal (SIGINT/SIGTERM)
//! wiring for the campaign drivers.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-chunk.
//! The supervisor stops claiming new chunks once the token trips,
//! finishes the chunks already in flight (journaling them as usual),
//! flushes a final checkpoint and returns a partial result with an
//! explicit stop cause — so a Ctrl-C'd (or `SIGTERM`ed, e.g. by a
//! container runtime or CI timeout) campaign resumes exactly where it
//! left off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation token.
///
/// All clones share one flag: cancelling any clone cancels them all.
/// Tokens created via [`CancelToken::term_signals`] (or its historical
/// alias [`CancelToken::ctrl_c`]) additionally trip when the process
/// receives SIGINT *or* SIGTERM.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    local: Arc<AtomicBool>,
    watch_signals: bool,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that also trips on the termination signals — Ctrl-C
    /// (SIGINT) and SIGTERM (the polite kill used by container runtimes,
    /// `timeout(1)` and CI runners). Installs the process-wide handlers
    /// on first use (idempotent). A second signal of either kind while
    /// the first is still being honored exits the process immediately
    /// with the conventional `128 + signum` status, so a wedged campaign
    /// can always be killed.
    pub fn term_signals() -> Self {
        signals::install();
        CancelToken {
            local: Arc::new(AtomicBool::new(false)),
            watch_signals: true,
        }
    }

    /// Historical alias for [`term_signals`](Self::term_signals): the
    /// returned token trips on SIGTERM as well as Ctrl-C, so `kill` and
    /// container stops checkpoint exactly like a keyboard interrupt.
    pub fn ctrl_c() -> Self {
        CancelToken::term_signals()
    }

    /// Trips the token (and every clone of it).
    pub fn cancel(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped (by [`cancel`](Self::cancel) or,
    /// for signal-watching tokens, by SIGINT/SIGTERM).
    pub fn is_cancelled(&self) -> bool {
        self.local.load(Ordering::SeqCst) || (self.watch_signals && signals::received())
    }
}

/// Minimal SIGINT/SIGTERM plumbing. The only unsafe code in the
/// workspace: two direct libc calls (`signal` to install the handlers,
/// `_exit` for the double-signal escape hatch), both async-signal-safe.
#[allow(unsafe_code)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set (only) by the signal handler — shared by both signals, so a
    /// SIGTERM followed by an impatient Ctrl-C still hard-exits.
    static RECEIVED: AtomicBool = AtomicBool::new(false);
    /// Guards one-time handler installation.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    /// The handler: the first termination signal requests cooperative
    /// shutdown; a second (either kind) exits hard with the conventional
    /// `128 + signum` status. Both paths touch only async-signal-safe
    /// operations.
    extern "C" fn on_term_signal(signum: i32) {
        if RECEIVED.swap(true, Ordering::SeqCst) {
            // SAFETY: `_exit` is async-signal-safe and never returns.
            unsafe { _exit(128 + signum) }
        }
    }

    /// Installs the handlers once per process.
    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: installing handlers that only perform atomic stores
        // and `_exit` is async-signal-safe; `signal` itself is safe to
        // call from any thread.
        unsafe {
            signal(SIGINT, on_term_signal as *const () as usize);
            signal(SIGTERM, on_term_signal as *const () as usize);
        }
    }

    /// Whether a termination signal has been received.
    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }

    /// Test hook: raise a termination signal in-process via libc
    /// `raise`. Only ever raise ONE signal per test process: the
    /// double-signal escape hatch `_exit`s on the second.
    #[cfg(test)]
    pub fn raise_for_test(signum: i32) {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raising a signal we have installed a handler for.
        unsafe {
            raise(signum);
        }
    }

    #[cfg(test)]
    pub const SIGINT_FOR_TEST: i32 = SIGINT;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn sigint_trips_signal_watching_tokens_only() {
        // SIGTERM gets the same treatment in tests/sigterm.rs — it has
        // to live in its own test process because the double-signal
        // escape hatch hard-exits on the second raise.
        let plain = CancelToken::new();
        let watched = CancelToken::ctrl_c();
        assert!(!watched.is_cancelled());
        signals::raise_for_test(signals::SIGINT_FOR_TEST);
        assert!(watched.is_cancelled(), "SIGINT must trip the token");
        assert!(!plain.is_cancelled(), "plain tokens ignore SIGINT");
    }
}
