//! Cooperative cancellation: a cloneable token checked at chunk
//! boundaries, with optional Ctrl-C (SIGINT) wiring for the campaign
//! drivers.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-chunk.
//! The supervisor stops claiming new chunks once the token trips,
//! finishes the chunks already in flight (journaling them as usual),
//! flushes a final checkpoint and returns a partial result with an
//! explicit stop cause — so a Ctrl-C'd campaign resumes exactly where
//! it left off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation token.
///
/// All clones share one flag: cancelling any clone cancels them all.
/// Tokens created via [`CancelToken::ctrl_c`] additionally trip when the
/// process receives SIGINT.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    local: Arc<AtomicBool>,
    watch_ctrl_c: bool,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that also trips on Ctrl-C. Installs the process-wide
    /// SIGINT handler on first use (idempotent). A second Ctrl-C while
    /// the first is still being honored exits the process immediately
    /// with status 130, so a wedged campaign can always be killed from
    /// the keyboard.
    pub fn ctrl_c() -> Self {
        sigint::install();
        CancelToken {
            local: Arc::new(AtomicBool::new(false)),
            watch_ctrl_c: true,
        }
    }

    /// Trips the token (and every clone of it).
    pub fn cancel(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped (by [`cancel`](Self::cancel) or,
    /// for Ctrl-C tokens, by SIGINT).
    pub fn is_cancelled(&self) -> bool {
        self.local.load(Ordering::SeqCst) || (self.watch_ctrl_c && sigint::pressed())
    }
}

/// Minimal SIGINT plumbing. The only unsafe code in the workspace: two
/// direct libc calls (`signal` to install the handler, `_exit` for the
/// double-Ctrl-C escape hatch), both async-signal-safe.
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set (only) by the signal handler.
    static PRESSED: AtomicBool = AtomicBool::new(false);
    /// Guards one-time handler installation.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    /// The handler: first Ctrl-C requests cooperative shutdown, second
    /// exits hard with the conventional 128+SIGINT status. Both paths
    /// touch only async-signal-safe operations.
    extern "C" fn on_sigint(_signum: i32) {
        if PRESSED.swap(true, Ordering::SeqCst) {
            // SAFETY: `_exit` is async-signal-safe and never returns.
            unsafe { _exit(130) }
        }
    }

    /// Installs the handler once per process.
    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: installing a handler that only performs atomic stores
        // and `_exit` is async-signal-safe; `signal` itself is safe to
        // call from any thread.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }

    /// Whether SIGINT has been received.
    pub fn pressed() -> bool {
        PRESSED.load(Ordering::SeqCst)
    }

    /// Test hook: raise SIGINT in-process via libc `raise`.
    #[cfg(test)]
    pub fn raise_sigint_for_test() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raising a signal we have installed a handler for.
        unsafe {
            raise(SIGINT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn sigint_trips_ctrl_c_tokens_only() {
        let plain = CancelToken::new();
        let watched = CancelToken::ctrl_c();
        assert!(!watched.is_cancelled());
        sigint::raise_sigint_for_test();
        assert!(watched.is_cancelled(), "SIGINT must trip the token");
        assert!(!plain.is_cancelled(), "plain tokens ignore SIGINT");
    }
}
