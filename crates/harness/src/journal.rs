//! The append-only campaign journal: chunk-granular checkpoints that
//! survive `SIGKILL`.
//!
//! # File format (`*.journal`, version 1)
//!
//! Line-oriented ASCII so a journal can be inspected with `less` and
//! diffed in CI:
//!
//! ```text
//! realm-journal v1 <fingerprint-hex16>
//! # montecarlo: REALM16 (t=0) total=16777216 chunk=65536 seed=2020
//! c <chunk-index-hex> <payload-hex> <fnv64-hex>
//! c <chunk-index-hex> <payload-hex> <fnv64-hex>
//! ...
//! ```
//!
//! * The header binds the journal to one [`CampaignId`] fingerprint;
//!   resuming with a different campaign (different sample budget, chunk
//!   size, seed, design, …) is a hard error, never a silent mix.
//! * The `#` comment line is human context and is ignored on load.
//! * Every record carries an FNV-1a 64 checksum over its own body. On
//!   load, parsing stops at the first invalid line: a torn tail from a
//!   mid-write crash is dropped (and truncated away before appending
//!   resumes), while every fully-flushed record is recovered.
//! * Appends are `write` + `flush` + `fsync` per record, so a record is
//!   durable the moment the chunk that produced it is reported complete.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::HarnessError;

/// Format magic of journal version 1.
const MAGIC_V1: &str = "realm-journal v1";

/// The identity of one characterization campaign: everything that must
/// match for two runs to be chunk-for-chunk interchangeable.
///
/// The deterministic engine guarantees that chunk `i` of a campaign is a
/// pure function of `(total, chunk_size, seed, i)` and of the subject
/// under test — so those coordinates *are* the resume key. The identity
/// is hashed into a fingerprint that names the journal file and is
/// verified on resume.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CampaignId {
    family: String,
    subject: String,
    total: u64,
    chunk_size: u64,
    seed: u64,
}

impl CampaignId {
    /// An identity from the campaign family (`"montecarlo"`,
    /// `"faults"`, …), the subject under test (design label, fault tag),
    /// the chunk plan geometry and the RNG seed.
    pub fn new(
        family: impl Into<String>,
        subject: impl Into<String>,
        plan: realm_par::ChunkPlan,
        seed: u64,
    ) -> Self {
        CampaignId {
            family: family.into(),
            subject: subject.into(),
            total: plan.total(),
            chunk_size: plan.chunk_size(),
            seed,
        }
    }

    /// The campaign family tag.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The subject under test.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The 64-bit FNV-1a fingerprint binding journals to this identity.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        for part in [self.family.as_str(), self.subject.as_str()] {
            h.update(part.as_bytes());
            h.update(&[0x1F]); // unit separator: "ab"+"c" != "a"+"bc"
        }
        for word in [self.total, self.chunk_size, self.seed] {
            h.update(&word.to_le_bytes());
        }
        h.finish()
    }

    /// The journal file name this campaign checkpoints to inside a
    /// checkpoint directory: `<family>-<fingerprint>.journal`, with the
    /// family sanitized to filesystem-safe characters.
    pub fn journal_file_name(&self) -> String {
        let safe: String = self
            .family
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{safe}-{:016x}.journal", self.fingerprint())
    }
}

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} total={} chunk={} seed={}",
            self.family, self.subject, self.total, self.chunk_size, self.seed
        )
    }
}

/// Streaming FNV-1a 64-bit hash (the journal's checksum and fingerprint
/// function — small, fast, dependency-free; corruption detection, not
/// cryptography).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.update(bytes);
        h.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// What a resume salvaged from an existing journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Checksummed records recovered.
    pub records: u64,
    /// Bytes of torn/invalid tail dropped (0 for a cleanly-closed file).
    pub truncated_bytes: u64,
}

/// An open, append-position journal for one campaign.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates (or truncates) a journal for `id`, writing and syncing
    /// the header.
    pub fn create(path: &Path, id: &CampaignId) -> Result<Self, HarnessError> {
        let mut file = File::create(path).map_err(|e| HarnessError::io(path, e))?;
        let header = format!("{MAGIC_V1} {:016x}\n# {id}\n", id.fingerprint());
        file.write_all(header.as_bytes())
            .and_then(|_| file.sync_all())
            .map_err(|e| HarnessError::io(path, e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens a journal for resume: verifies the header against `id`,
    /// salvages every intact record, truncates any torn tail, and
    /// returns the journal positioned for appending plus the recovered
    /// `chunk index → payload` map.
    ///
    /// A missing file — or one whose header never finished hitting the
    /// disk — starts a fresh journal: both are the legitimate aftermath
    /// of a crash, not corruption. A *valid* header for a different
    /// campaign is refused with [`HarnessError::CampaignMismatch`].
    pub fn resume(path: &Path, id: &CampaignId) -> Result<ResumedJournal, HarnessError> {
        if !path.exists() {
            let journal = Journal::create(path, id)?;
            return Ok((journal, BTreeMap::new(), LoadStats::default()));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| HarnessError::io(path, e))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| HarnessError::io(path, e))?;

        // Header: first complete line must be the magic + our fingerprint.
        let Some(header_end) = text.find('\n') else {
            // Torn header (crash during create): start over.
            drop(file);
            let journal = Journal::create(path, id)?;
            let dropped = text.len() as u64;
            return Ok((
                journal,
                BTreeMap::new(),
                LoadStats {
                    records: 0,
                    truncated_bytes: dropped,
                },
            ));
        };
        let header = &text[..header_end];
        let found = parse_header(header);
        match found {
            Some(fp) if fp == id.fingerprint() => {}
            Some(fp) => {
                return Err(HarnessError::CampaignMismatch {
                    path: path.to_path_buf(),
                    expected: id.fingerprint(),
                    found: fp,
                })
            }
            None => {
                // Unrecognized header: refuse to clobber what may be a
                // foreign file the user pointed us at by mistake.
                return Err(HarnessError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("unrecognized journal header '{header}'"),
                });
            }
        }

        // Records: stop at the first invalid line; everything after it
        // (a torn tail) is dropped and truncated away.
        let mut records = BTreeMap::new();
        let mut stats = LoadStats::default();
        let mut valid_end = header_end + 1;
        let mut cursor = header_end + 1;
        while cursor < text.len() {
            let line_end = match text[cursor..].find('\n') {
                Some(off) => cursor + off,
                None => break, // no terminating newline: torn tail
            };
            let line = &text[cursor..line_end];
            if line.starts_with('#') || line.is_empty() {
                cursor = line_end + 1;
                valid_end = cursor;
                continue;
            }
            let Some((index, payload)) = parse_record(line) else {
                break;
            };
            // First record wins: duplicates can only arise from a crash
            // between journaling and accounting, and determinism makes
            // them byte-identical anyway.
            records.entry(index).or_insert(payload);
            stats.records += 1;
            cursor = line_end + 1;
            valid_end = cursor;
        }
        stats.truncated_bytes = (text.len() - valid_end) as u64;
        if stats.truncated_bytes > 0 {
            file.set_len(valid_end as u64)
                .map_err(|e| HarnessError::io(path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| HarnessError::io(path, e))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            records,
            stats,
        ))
    }

    /// Appends one completed chunk's payload and makes it durable
    /// (write + fsync) before returning.
    pub fn append(&mut self, chunk: u64, payload: &[u8]) -> Result<(), HarnessError> {
        let body = format!("c {chunk:x} {}", hex_encode(payload));
        let line = format!("{body} {:016x}\n", Fnv64::hash(body.as_bytes()));
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| HarnessError::io(&self.path, e))
    }

    /// Forces everything to disk (also done per-append; kept for an
    /// explicit barrier at campaign exit).
    pub fn sync(&mut self) -> Result<(), HarnessError> {
        self.file
            .sync_all()
            .map_err(|e| HarnessError::io(&self.path, e))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses a `realm-journal v1 <fp>` header, returning the fingerprint.
pub(crate) fn parse_header(line: &str) -> Option<u64> {
    let rest = line.strip_prefix(MAGIC_V1)?.trim();
    u64::from_str_radix(rest, 16).ok()
}

/// Parses one `c <index> <payload> <checksum>` record, verifying the
/// checksum. Returns `None` for anything invalid.
pub(crate) fn parse_record(line: &str) -> Option<(u64, Vec<u8>)> {
    let body = line.strip_prefix("c ")?;
    let (body, checksum_hex) = body.rsplit_once(' ')?;
    let checksum = u64::from_str_radix(checksum_hex, 16).ok()?;
    if Fnv64::hash(format!("c {body}").as_bytes()) != checksum {
        return None;
    }
    let (index_hex, payload_hex) = body.split_once(' ')?;
    let index = u64::from_str_radix(index_hex, 16).ok()?;
    Some((index, hex_decode(payload_hex)?))
}

/// Lower-case hex encoding.
fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + 1);
    if bytes.is_empty() {
        // A visible marker so records keep their 4-field shape even for
        // zero-length payloads.
        out.push('-');
        return out;
    }
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Everything [`Journal::resume`] recovers: the reopened journal, the
/// salvaged `chunk index → payload` map, and the load statistics.
pub type ResumedJournal = (Journal, BTreeMap<u64, Vec<u8>>, LoadStats);

/// Inverse of [`hex_encode`].
fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_par::ChunkPlan;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("realm-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn id() -> CampaignId {
        CampaignId::new("unit", "test subject", ChunkPlan::new(1000, 100), 42)
    }

    #[test]
    fn fingerprint_depends_on_every_coordinate() {
        let base = id();
        let variants = [
            CampaignId::new("unit2", "test subject", ChunkPlan::new(1000, 100), 42),
            CampaignId::new("unit", "other subject", ChunkPlan::new(1000, 100), 42),
            CampaignId::new("unit", "test subject", ChunkPlan::new(999, 100), 42),
            CampaignId::new("unit", "test subject", ChunkPlan::new(1000, 10), 42),
            CampaignId::new("unit", "test subject", ChunkPlan::new(1000, 100), 43),
        ];
        for v in variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{v}");
        }
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        let a = CampaignId::new("ab", "c", ChunkPlan::new(1, 1), 0);
        let b = CampaignId::new("a", "bc", ChunkPlan::new(1, 1), 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn journal_file_name_is_sanitized() {
        let id = CampaignId::new("monte carlo/x", "s", ChunkPlan::new(1, 1), 0);
        let name = id.journal_file_name();
        assert!(!name.contains('/') && !name.contains(' '), "{name}");
        assert!(name.ends_with(".journal"));
    }

    #[test]
    fn create_append_resume_round_trip() {
        let dir = test_dir("roundtrip");
        let path = dir.join(id().journal_file_name());
        let mut j = Journal::create(&path, &id()).unwrap();
        j.append(0, &[1, 2, 3]).unwrap();
        j.append(5, &[]).unwrap();
        j.append(2, &[0xFF; 48]).unwrap();
        drop(j);

        let (_, records, stats) = Journal::resume(&path, &id()).unwrap();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(records[&0], vec![1, 2, 3]);
        assert_eq!(records[&5], Vec::<u8>::new());
        assert_eq!(records[&2], vec![0xFF; 48]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = test_dir("torn");
        let path = dir.join("t.journal");
        let mut j = Journal::create(&path, &id()).unwrap();
        j.append(0, &[9]).unwrap();
        drop(j);
        // Simulate a crash mid-append: a record without its newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"c 1 aabb").unwrap();
        drop(f);

        let (mut j, records, stats) = Journal::resume(&path, &id()).unwrap();
        assert_eq!(stats.records, 1);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(records.len(), 1);
        // Appending after salvage lands on a clean boundary.
        j.append(1, &[7, 7]).unwrap();
        drop(j);
        let (_, records, stats) = Journal::resume(&path, &id()).unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(records[&1], vec![7, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let dir = test_dir("corrupt");
        let path = dir.join("c.journal");
        let mut j = Journal::create(&path, &id()).unwrap();
        j.append(0, &[1]).unwrap();
        j.append(1, &[2]).unwrap();
        drop(j);
        // Flip a payload nibble of record 1 without fixing its checksum.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("c 1 02 ", "c 1 03 ", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();

        let (_, records, stats) = Journal::resume(&path, &id()).unwrap();
        assert_eq!(stats.records, 1, "only the intact prefix survives");
        assert!(records.contains_key(&0));
        assert!(!records.contains_key(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_campaign_is_refused() {
        let dir = test_dir("mismatch");
        let path = dir.join("m.journal");
        Journal::create(&path, &id()).unwrap();
        let other = CampaignId::new("unit", "test subject", ChunkPlan::new(1000, 100), 43);
        let err = Journal::resume(&path, &other).unwrap_err();
        assert!(
            matches!(err, HarnessError::CampaignMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused() {
        let dir = test_dir("foreign");
        let path = dir.join("f.journal");
        std::fs::write(&path, "this is not a journal\nc 0 aa 0\n").unwrap();
        let err = Journal::resume(&path, &id()).unwrap_err();
        assert!(matches!(err, HarnessError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_starts_fresh() {
        let dir = test_dir("fresh");
        let path = dir.join("missing.journal");
        let (_, records, stats) = Journal::resume(&path, &id()).unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, LoadStats::default());
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_starts_fresh() {
        let dir = test_dir("torn-header");
        let path = dir.join("h.journal");
        std::fs::write(&path, "realm-jour").unwrap(); // no newline
        let (mut j, records, _) = Journal::resume(&path, &id()).unwrap();
        assert!(records.is_empty());
        j.append(0, &[5]).unwrap();
        drop(j);
        let (_, records, _) = Journal::resume(&path, &id()).unwrap();
        assert_eq!(records[&0], vec![5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_round_trips() {
        for payload in [vec![], vec![0u8], vec![0xAB, 0xCD, 0x00, 0xFF]] {
            assert_eq!(hex_decode(&hex_encode(&payload)), Some(payload));
        }
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}
