//! The campaign supervisor: checkpoint/resume, panic quarantine,
//! deadlines and cooperative cancellation over the deterministic chunk
//! engine of `realm-par`.
//!
//! # Why this is *exactly* correct, not approximately
//!
//! The chunk engine guarantees that chunk `i` of a campaign is a pure
//! function of `(total, chunk_size, seed, i)` and the subject under
//! test — never of thread count, scheduling or wall-clock. The
//! supervisor leans on that determinism three ways:
//!
//! * **Resume is bit-identical.** A journaled chunk payload *is* the
//!   payload a fresh run would compute, so replaying the journal and
//!   executing only the missing chunks folds to the same bits as an
//!   uninterrupted run — at any thread count, across any number of
//!   interruptions.
//! * **Retry is sound.** A panicking chunk is retried with the same
//!   substream; if the panic was environmental (OOM killer, cosmic ray,
//!   injected chaos) the retry produces the canonical payload.
//! * **Quarantine is honest.** A chunk that keeps panicking is excluded
//!   with its exact index, so the coverage accounting says precisely
//!   which samples the partial result covers.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use realm_obs::{null_collector, Event, SharedCollector};
use realm_par::{run_chunks_traced, Chunk, ChunkPlan, ChunkRun, Threads};

use crate::journal::{CampaignId, Journal, LoadStats};
use crate::wire::Checkpoint;
use crate::HarnessError;

/// Why a campaign stopped before attempting every chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The cancellation token tripped (e.g. Ctrl-C).
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The per-invocation chunk budget was exhausted.
    ChunkBudget,
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCause::Cancelled => write!(f, "cancelled"),
            StopCause::Deadline => write!(f, "deadline"),
            StopCause::ChunkBudget => write!(f, "chunk budget"),
        }
    }
}

/// One quarantined chunk: it panicked on every attempt and was excluded
/// from the campaign's fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// The chunk's index in the plan (and RNG substream index).
    pub chunk: u64,
    /// Samples the chunk would have covered.
    pub samples: u64,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The last panic message observed.
    pub message: String,
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk {} ({} samples) panicked {}x: {}",
            self.chunk, self.samples, self.attempts, self.message
        )
    }
}

/// The accounting of one supervised campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Chunks in the campaign's plan.
    pub total_chunks: u64,
    /// Chunks replayed from the journal (resume).
    pub replayed_chunks: u64,
    /// Chunks executed in this invocation.
    pub executed_chunks: u64,
    /// Chunks excluded after exhausting their retries.
    pub quarantined: Vec<Quarantine>,
    /// Why the run stopped early, if it did (`None` = every non-
    /// quarantined chunk completed).
    pub stopped: Option<StopCause>,
    /// Samples covered by completed (replayed + executed) chunks.
    pub covered_samples: u64,
    /// Samples in the full campaign.
    pub total_samples: u64,
    /// What the journal load salvaged (zero for fresh runs).
    pub journal: LoadStats,
}

impl RunReport {
    /// Whether every chunk completed: nothing skipped, nothing
    /// quarantined — the result is the uninterrupted campaign's result.
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none() && self.quarantined.is_empty()
    }

    /// Fraction of the sample budget covered by completed chunks.
    pub fn coverage(&self) -> f64 {
        if self.total_samples == 0 {
            1.0
        } else {
            self.covered_samples as f64 / self.total_samples as f64
        }
    }

    /// Chunks neither completed nor quarantined (they run on resume).
    pub fn pending_chunks(&self) -> u64 {
        self.total_chunks
            - self.replayed_chunks
            - self.executed_chunks
            - self.quarantined.len() as u64
    }

    /// A multi-line human-readable report (status line, stop cause,
    /// quarantine details).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}/{} chunks complete ({} replayed, {} executed), coverage {:.2}%",
            self.replayed_chunks + self.executed_chunks,
            self.total_chunks,
            self.replayed_chunks,
            self.executed_chunks,
            self.coverage() * 100.0
        );
        if let Some(cause) = self.stopped {
            out.push_str(&format!(
                "\nstopped early ({cause}); {} chunks pending — rerun with --resume to continue",
                self.pending_chunks()
            ));
        }
        if !self.quarantined.is_empty() {
            out.push_str(&format!(
                "\nquarantined {} chunk(s):",
                self.quarantined.len()
            ));
            for q in &self.quarantined {
                out.push_str(&format!("\n  {q}"));
            }
        }
        out
    }
}

/// A supervised campaign result: the completed chunk payloads plus the
/// run's accounting.
#[derive(Debug)]
pub struct Outcome<T> {
    /// Completed payloads in chunk order: journal replays and fresh
    /// executions, indistinguishable by construction.
    pub parts: Vec<(u64, T)>,
    /// The invocation's accounting.
    pub report: RunReport,
}

/// A campaign-level value distilled from an [`Outcome`]: `None` when
/// the covered chunks contain no usable sample (e.g. everything
/// quarantined), always paired with the accounting.
#[derive(Debug)]
pub struct Supervised<V> {
    /// The folded campaign value, if any chunk produced one.
    pub value: Option<V>,
    /// The run's accounting.
    pub report: RunReport,
}

impl<T> Outcome<T> {
    /// Folds the completed parts into a campaign value, keeping the
    /// accounting attached.
    pub fn fold<V>(self, fold: impl FnOnce(Vec<(u64, T)>) -> Option<V>) -> Supervised<V> {
        Supervised {
            value: fold(self.parts),
            report: self.report,
        }
    }
}

/// Deterministic chaos injection: which chunks panic, and whether they
/// keep panicking on retries.
#[derive(Debug, Clone, Default)]
struct Chaos {
    chunks: BTreeSet<u64>,
    persistent: bool,
}

/// Exponential backoff with deterministic jitter for chunk retries.
///
/// Without backoff a panicking chunk is retried immediately, which
/// hot-spins when the panic is environmental and still present (a full
/// disk, a saturated co-tenant). With backoff, retry round `a` (1-based)
/// waits `base · 2^(a−1)` capped at `max`, scaled by a jitter factor in
/// `[1 − jitter, 1 + jitter]`.
///
/// The jitter is a **pure function** of `(seed, attempt)` — no global
/// RNG, no wall clock — so a seeded test clock observes the exact same
/// delay sequence on every run:
///
/// ```
/// use std::time::Duration;
/// use realm_harness::Backoff;
///
/// let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(5)).with_seed(7);
/// assert_eq!(b.delay(1), b.delay(1), "deterministic under one seed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    jitter: f64,
    seed: u64,
}

impl Backoff {
    /// Exponential backoff from `base` capped at `max`, with the
    /// default ±25 % jitter and seed 0.
    pub fn new(base: Duration, max: Duration) -> Self {
        Backoff {
            base,
            max,
            jitter: 0.25,
            seed: 0,
        }
    }

    /// Sets the jitter fraction (`0.0` = none, `0.25` = ±25 %). Values
    /// are clamped to `[0, 1]`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Sets the jitter seed. Two supervisors with different seeds
    /// de-synchronize their retry storms; the same seed reproduces the
    /// exact delay sequence (the deterministic-test contract).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay before retry round `attempt` (1-based: the delay
    /// between the first failure and the first retry is `delay(1)`).
    /// `attempt == 0` means "before the first try" and is always zero.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(32);
        let raw = self
            .base
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.max);
        if self.jitter == 0.0 {
            return raw;
        }
        // SplitMix64-style finalizer over (seed, attempt): cheap, well
        // mixed, and dependency-free.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        raw.mul_f64(factor).min(self.max)
    }
}

/// How the supervisor waits out a backoff delay: called with the total
/// delay and a `should_stop` predicate it must poll so cancellation and
/// deadlines cut the wait short. The default sleeps in small slices;
/// tests install a recording no-op to assert the deterministic delay
/// sequence without real sleeping.
type Sleeper = Arc<dyn Fn(Duration, &dyn Fn() -> bool) + Send + Sync>;

/// The default sleeper: sleep in ≤ 20 ms slices, polling `should_stop`
/// between slices so a cancelled campaign never over-waits.
fn cooperative_sleep(total: Duration, should_stop: &dyn Fn() -> bool) {
    let slice = Duration::from_millis(20);
    let deadline = Instant::now() + total;
    while !should_stop() {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep((deadline - now).min(slice));
    }
}

/// The resilient campaign supervisor.
///
/// Configure once (thread policy, checkpoint directory, retry budget,
/// deadline, cancellation token), then [`run`](Supervisor::run) any
/// number of campaigns through it; each campaign journals to its own
/// file (named by its [`CampaignId`] fingerprint) inside the checkpoint
/// directory.
///
/// ```
/// use realm_harness::{CampaignId, Supervisor};
/// use realm_par::ChunkPlan;
///
/// # fn main() -> Result<(), realm_harness::HarnessError> {
/// let plan = ChunkPlan::new(1_000, 100);
/// let id = CampaignId::new("doc", "sum of indices", plan, 0);
/// let outcome = Supervisor::new().run(&id, plan, |chunk| {
///     (chunk.start..chunk.end()).sum::<u64>()
/// })?;
/// assert!(outcome.report.is_complete());
/// let total: u64 = outcome.parts.iter().map(|(_, s)| s).sum();
/// assert_eq!(total, 1_000 * 999 / 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Supervisor {
    threads: Threads,
    retries: u32,
    deadline: Option<Instant>,
    cancel: crate::CancelToken,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    chunk_budget: Option<u64>,
    chaos: Chaos,
    collector: SharedCollector,
    backoff: Option<Backoff>,
    sleeper: Sleeper,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("threads", &self.threads)
            .field("retries", &self.retries)
            .field("deadline", &self.deadline)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("resume", &self.resume)
            .field("chunk_budget", &self.chunk_budget)
            .field("chaos", &self.chaos)
            .field("observed", &self.collector.enabled())
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            threads: Threads::Auto,
            retries: 2,
            deadline: None,
            cancel: crate::CancelToken::new(),
            checkpoint_dir: None,
            resume: false,
            chunk_budget: None,
            chaos: Chaos::default(),
            collector: null_collector(),
            backoff: None,
            sleeper: Arc::new(cooperative_sleep),
        }
    }
}

impl Supervisor {
    /// A supervisor with defaults: auto threads, 2 retries, no
    /// checkpointing, no deadline, a fresh cancellation token.
    pub fn new() -> Self {
        Supervisor::default()
    }

    /// Sets the worker-thread policy (`0`/auto = every hardware
    /// thread). Purely a performance knob: supervised results are
    /// bit-identical under every policy.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many times a panicking chunk is retried (with the same
    /// RNG substream) before quarantine. `0` quarantines on first
    /// panic.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets a wall-clock deadline `from_now`. Once it passes, the
    /// supervisor stops claiming chunks, flushes a final checkpoint and
    /// returns a partial result with [`StopCause::Deadline`].
    pub fn with_deadline(mut self, from_now: Duration) -> Self {
        self.deadline = Some(Instant::now() + from_now);
        self
    }

    /// Uses `token` for cooperative cancellation (checked at chunk
    /// boundaries; pair with [`crate::CancelToken::ctrl_c`] in
    /// binaries).
    pub fn with_cancel(mut self, token: crate::CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Journals completed chunks into `dir` (one `*.journal` file per
    /// campaign fingerprint). Without [`resume`](Self::resume), an
    /// existing journal for the same campaign is restarted from
    /// scratch.
    pub fn checkpoint_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// On the next [`run`](Self::run), replay the campaign's journal
    /// (if any) and execute only the missing chunks.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Executes at most `budget` chunks per [`run`](Self::run)
    /// invocation, then stops with [`StopCause::ChunkBudget`] — the
    /// deterministic way to slice a long campaign across invocations
    /// (and to test kill/resume at an exact point).
    pub fn with_chunk_budget(mut self, budget: u64) -> Self {
        self.chunk_budget = Some(budget);
        self
    }

    /// Chaos-testing hook mirroring `realm-fault`'s philosophy: the
    /// listed chunks panic when attempted. With `persistent = false`
    /// only the first attempt panics (exercising the retry path);
    /// with `persistent = true` every attempt panics (forcing
    /// quarantine).
    pub fn with_injected_panics(mut self, chunks: &[u64], persistent: bool) -> Self {
        self.chaos = Chaos {
            chunks: chunks.iter().copied().collect(),
            persistent,
        };
        self
    }

    /// Waits out `backoff.delay(attempt)` before each retry round, so
    /// chaos-injected (or environmental) panics don't hot-spin through
    /// the whole retry budget in microseconds. The wait is cooperative:
    /// cancellation and deadlines cut it short at ≤ 20 ms granularity.
    /// Without this call, retries remain immediate (the historical
    /// behavior).
    pub fn with_retry_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Replaces how backoff delays are waited out — the seeded-test-
    /// clock hook. The function receives the total delay and a
    /// `should_stop` predicate it must poll. Production code never needs
    /// this; tests install a recorder to assert the deterministic delay
    /// sequence without sleeping.
    pub fn with_sleeper(
        mut self,
        sleeper: impl Fn(Duration, &dyn Fn() -> bool) + Send + Sync + 'static,
    ) -> Self {
        self.sleeper = Arc::new(sleeper);
        self
    }

    /// Streams campaign events (spans, journal activity, quarantines)
    /// into `collector` — a `realm_obs::Registry`, `JsonlSink`,
    /// `ProgressReporter`, or any fanout of them. Observability is
    /// strictly passive: a collected run is bit-identical to an
    /// uncollected one.
    pub fn with_collector(mut self, collector: SharedCollector) -> Self {
        self.collector = collector;
        self
    }

    /// The installed event collector (the no-op [`null_collector`]
    /// unless [`with_collector`](Self::with_collector) was called).
    pub fn collector(&self) -> SharedCollector {
        self.collector.clone()
    }

    /// The configured thread policy.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// The configured cancellation token (clone it to cancel from
    /// elsewhere).
    pub fn cancel_token(&self) -> crate::CancelToken {
        self.cancel.clone()
    }

    /// Runs a campaign under supervision.
    ///
    /// `f` computes one chunk's payload and must be deterministic in
    /// the chunk (the engine-wide discipline); `id` must identify the
    /// campaign — same id ⇔ same chunk payloads.
    ///
    /// Returns the completed payloads in chunk order plus the
    /// accounting; fails only on journal I/O or corruption (a panicking
    /// chunk is retried and quarantined, never an error).
    pub fn run<T, F>(
        &self,
        id: &CampaignId,
        plan: ChunkPlan,
        f: F,
    ) -> Result<Outcome<T>, HarnessError>
    where
        T: Checkpoint + Send,
        F: Fn(Chunk) -> T + Sync,
    {
        let num_chunks = plan.num_chunks();
        let t0 = Instant::now();
        let obs = &*self.collector;
        if obs.enabled() {
            obs.record(&Event::CampaignStart {
                family: id.family().to_string(),
                subject: id.subject().to_string(),
                fingerprint: id.fingerprint(),
                total_chunks: num_chunks,
                total_samples: plan.total(),
                threads: self.threads.resolve() as u64,
            });
        }

        // Phase 1: journal replay.
        let mut journal = None;
        let mut load_stats = LoadStats::default();
        let mut completed: BTreeMap<u64, T> = BTreeMap::new();
        if let Some(dir) = &self.checkpoint_dir {
            std::fs::create_dir_all(dir).map_err(|e| HarnessError::io(dir, e))?;
            let path = dir.join(id.journal_file_name());
            let j = if self.resume {
                let (j, records, stats) = Journal::resume(&path, id)?;
                load_stats = stats;
                for (index, bytes) in records {
                    if index >= num_chunks {
                        // Can only happen via manual journal edits; the
                        // fingerprint binds the plan geometry.
                        continue;
                    }
                    let Some(value) = T::from_bytes(&bytes) else {
                        return Err(HarnessError::Corrupt {
                            path: path.clone(),
                            detail: format!("chunk {index} payload does not decode"),
                        });
                    };
                    completed.insert(index, value);
                }
                j
            } else {
                Journal::create(&path, id)?
            };
            journal = Some(Mutex::new(j));
        }
        let replayed_chunks = completed.len() as u64;
        if obs.enabled() && self.resume && journal.is_some() {
            obs.record(&Event::JournalLoaded {
                records: load_stats.records,
                truncated_bytes: load_stats.truncated_bytes,
            });
            for &index in completed.keys() {
                obs.record(&Event::ChunkReplayed {
                    chunk: index,
                    samples: plan.chunk(index).len,
                });
            }
        }

        // Phase 2: plan this invocation's work.
        let mut pending: Vec<u64> = (0..num_chunks)
            .filter(|i| !completed.contains_key(i))
            .collect();
        let mut budget_tripped = false;
        if let Some(budget) = self.chunk_budget {
            if (pending.len() as u64) > budget {
                pending.truncate(budget as usize);
                budget_tripped = true;
            }
        }

        // Phase 3: execute with bounded retries. Journal appends happen
        // in the completion callback so a chunk is durable the moment
        // it finishes; append errors are latched and surfaced after the
        // in-flight pass drains.
        let deadline = self.deadline;
        let should_stop =
            || self.cancel.is_cancelled() || deadline.is_some_and(|d| Instant::now() >= d);
        let journal_error: Mutex<Option<HarnessError>> = Mutex::new(None);
        let mut failures: BTreeMap<u64, (u32, String)> = BTreeMap::new();
        let mut executed_chunks = 0u64;
        let mut to_run = pending.clone();
        for attempt in 0..=self.retries {
            if to_run.is_empty() || should_stop() {
                break;
            }
            // Back off before each retry round (never before the first
            // attempt); cancellation and deadlines cut the wait short.
            if attempt > 0 {
                if let Some(backoff) = &self.backoff {
                    let delay = backoff.delay(attempt);
                    if !delay.is_zero() {
                        (self.sleeper)(delay, &should_stop);
                        if should_stop() {
                            break;
                        }
                    }
                }
            }
            let chaos_arms = |index: u64| {
                self.chaos.chunks.contains(&index) && (self.chaos.persistent || attempt == 0)
            };
            let body = |chunk: Chunk| {
                if chaos_arms(chunk.index) {
                    panic!("injected chaos panic (chunk {})", chunk.index);
                }
                f(chunk)
            };
            let on_complete = |index: u64, run: &ChunkRun<T>| {
                if let (Some(j), ChunkRun::Completed(value)) = (&journal, run) {
                    let bytes = value.to_bytes();
                    let result = match j.lock() {
                        Ok(mut guard) => guard.append(index, &bytes),
                        Err(_) => Err(HarnessError::Corrupt {
                            path: self.checkpoint_dir.clone().unwrap_or_default(),
                            detail: "journal mutex poisoned".into(),
                        }),
                    };
                    match result {
                        Ok(()) => {
                            if obs.enabled() {
                                obs.record(&Event::JournalAppend {
                                    chunk: index,
                                    bytes: bytes.len() as u64,
                                });
                            }
                        }
                        Err(e) => {
                            if let Ok(mut slot) = journal_error.lock() {
                                slot.get_or_insert(e);
                            }
                        }
                    }
                }
            };
            let runs = run_chunks_traced(
                plan,
                self.threads,
                &to_run,
                attempt,
                obs,
                &should_stop,
                &body,
                &on_complete,
            );
            if let Some(e) = journal_error.lock().ok().and_then(|mut s| s.take()) {
                return Err(e);
            }
            let mut still_failing = Vec::new();
            for (index, run) in runs {
                match run {
                    ChunkRun::Completed(value) => {
                        completed.insert(index, value);
                        failures.remove(&index);
                        executed_chunks += 1;
                    }
                    ChunkRun::Panicked(message) => {
                        let entry = failures.entry(index).or_insert((0, String::new()));
                        entry.0 += 1;
                        entry.1 = message;
                        still_failing.push(index);
                    }
                }
            }
            to_run = still_failing;
        }

        // Phase 4: classify what did not complete.
        let quarantined: Vec<Quarantine> = failures
            .iter()
            .filter(|(_, (attempts, _))| *attempts > self.retries)
            .map(|(&chunk, (attempts, message))| Quarantine {
                chunk,
                samples: plan.chunk(chunk).len,
                attempts: *attempts,
                message: message.clone(),
            })
            .collect();
        let finished = completed.len() as u64 + quarantined.len() as u64;
        let stopped = if finished == num_chunks {
            None
        } else if self.cancel.is_cancelled() {
            Some(StopCause::Cancelled)
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopCause::Deadline)
        } else if budget_tripped {
            Some(StopCause::ChunkBudget)
        } else {
            // Chunks interrupted mid-retry with attempts left: they run
            // again on resume; account them as a budget-style stop.
            Some(StopCause::ChunkBudget)
        };

        // Phase 5: final checkpoint barrier.
        if let Some(j) = &journal {
            if let Ok(mut guard) = j.lock() {
                guard.sync()?;
            }
        }

        let covered_samples = completed.keys().map(|&i| plan.chunk(i).len).sum();
        let report = RunReport {
            total_chunks: num_chunks,
            replayed_chunks,
            executed_chunks,
            quarantined,
            stopped,
            covered_samples,
            total_samples: plan.total(),
            journal: load_stats,
        };
        if obs.enabled() {
            for q in &report.quarantined {
                obs.record(&Event::Quarantined {
                    chunk: q.chunk,
                    samples: q.samples,
                    attempts: q.attempts,
                    message: q.message.clone(),
                });
            }
            obs.record(&Event::CampaignEnd {
                family: id.family().to_string(),
                fingerprint: id.fingerprint(),
                replayed_chunks: report.replayed_chunks,
                executed_chunks: report.executed_chunks,
                quarantined_chunks: report.quarantined.len() as u64,
                covered_samples: report.covered_samples,
                total_samples: report.total_samples,
                stopped: report.stopped.map(|c| c.to_string()),
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        Ok(Outcome {
            parts: completed.into_iter().collect(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChunkPlan {
        ChunkPlan::new(100, 10)
    }

    fn id(tag: &str) -> CampaignId {
        CampaignId::new("sup-test", tag, plan(), 1)
    }

    fn chunk_sum(c: Chunk) -> u64 {
        (c.start..c.end()).sum()
    }

    #[test]
    fn unjournaled_run_completes() {
        let outcome = Supervisor::new()
            .run(&id("plain"), plan(), chunk_sum)
            .unwrap();
        assert!(outcome.report.is_complete());
        assert_eq!(outcome.report.executed_chunks, 10);
        assert_eq!(outcome.report.coverage(), 1.0);
        let total: u64 = outcome.parts.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 100 * 99 / 2);
    }

    #[test]
    fn chunk_budget_stops_deterministically() {
        let outcome = Supervisor::new()
            .with_chunk_budget(4)
            .run(&id("budget"), plan(), chunk_sum)
            .unwrap();
        assert_eq!(outcome.report.executed_chunks, 4);
        assert_eq!(outcome.report.stopped, Some(StopCause::ChunkBudget));
        assert_eq!(outcome.report.pending_chunks(), 6);
        assert!(!outcome.report.is_complete());
    }

    #[test]
    fn cancelled_token_stops_before_any_chunk() {
        let sup = Supervisor::new();
        sup.cancel_token().cancel();
        let outcome = sup.run(&id("cancel"), plan(), chunk_sum).unwrap();
        assert_eq!(outcome.report.executed_chunks, 0);
        assert_eq!(outcome.report.stopped, Some(StopCause::Cancelled));
    }

    #[test]
    fn past_deadline_stops_before_any_chunk() {
        let outcome = Supervisor::new()
            .with_deadline(Duration::ZERO)
            .run(&id("deadline"), plan(), chunk_sum)
            .unwrap();
        assert_eq!(outcome.report.executed_chunks, 0);
        assert_eq!(outcome.report.stopped, Some(StopCause::Deadline));
    }

    #[test]
    fn transient_chaos_is_retried_to_the_canonical_result() {
        let reference = Supervisor::new()
            .run(&id("chaos"), plan(), chunk_sum)
            .unwrap();
        let chaotic = Supervisor::new()
            .with_injected_panics(&[2, 7], false)
            .run(&id("chaos"), plan(), chunk_sum)
            .unwrap();
        assert!(chaotic.report.is_complete());
        assert_eq!(
            chaotic.parts, reference.parts,
            "retry must be bit-identical"
        );
    }

    #[test]
    fn persistent_chaos_is_quarantined() {
        let outcome = Supervisor::new()
            .with_retries(1)
            .with_injected_panics(&[3], true)
            .run(&id("quarantine"), plan(), chunk_sum)
            .unwrap();
        assert_eq!(outcome.report.quarantined.len(), 1);
        let q = &outcome.report.quarantined[0];
        assert_eq!(q.chunk, 3);
        assert_eq!(q.attempts, 2); // 1 attempt + 1 retry
        assert!(q.message.contains("injected chaos"), "{}", q.message);
        assert_eq!(outcome.report.stopped, None, "quarantine is not a stop");
        assert_eq!(outcome.parts.len(), 9);
        assert_eq!(outcome.report.covered_samples, 90);
        assert!(outcome.report.render().contains("quarantined 1 chunk"));
    }

    #[test]
    fn backoff_delays_are_deterministic_and_exponential() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(60))
            .with_jitter(0.0)
            .with_seed(42);
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_millis(100));
        assert_eq!(b.delay(2), Duration::from_millis(200));
        assert_eq!(b.delay(3), Duration::from_millis(400));
        // The cap holds even at absurd attempt counts.
        assert_eq!(b.delay(40), Duration::from_secs(60));

        let jittered = Backoff::new(Duration::from_millis(100), Duration::from_secs(60))
            .with_jitter(0.25)
            .with_seed(42);
        for attempt in 1..=5u32 {
            let d = jittered.delay(attempt);
            assert_eq!(d, jittered.delay(attempt), "same seed, same delay");
            let nominal = Duration::from_millis(100 << (attempt - 1));
            assert!(
                d >= nominal.mul_f64(0.75) && d <= nominal.mul_f64(1.25),
                "{d:?}"
            );
        }
        let other_seed = jittered.with_seed(43);
        assert!(
            (1..=8u32).any(|a| other_seed.delay(a) != jittered.delay(a)),
            "different seeds must de-synchronize somewhere"
        );
    }

    #[test]
    fn retry_rounds_wait_out_the_backoff_schedule() {
        // A seeded test clock: records every requested delay, sleeps 0.
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let record = slept.clone();
        let backoff = Backoff::new(Duration::from_millis(10), Duration::from_secs(1))
            .with_jitter(0.25)
            .with_seed(9);
        let outcome = Supervisor::new()
            .with_retries(3)
            .with_retry_backoff(backoff)
            .with_sleeper(move |d, _stop| record.lock().unwrap().push(d))
            .with_injected_panics(&[4], true)
            .run(&id("backoff"), plan(), chunk_sum)
            .unwrap();
        assert_eq!(outcome.report.quarantined.len(), 1);
        // 3 retry rounds → exactly the deterministic schedule, in order.
        let want: Vec<Duration> = (1..=3).map(|a| backoff.delay(a)).collect();
        assert_eq!(*slept.lock().unwrap(), want);
    }

    #[test]
    fn cancellation_cuts_the_backoff_wait_short() {
        let sup = Supervisor::new()
            .with_retries(2)
            .with_retry_backoff(
                Backoff::new(Duration::from_millis(5), Duration::from_millis(50)).with_seed(1),
            )
            .with_injected_panics(&[0], true);
        let cancel = sup.cancel_token();
        let sup = sup.with_sleeper(move |_d, _stop| cancel.cancel());
        let outcome = sup.run(&id("backoff-cancel"), plan(), chunk_sum).unwrap();
        // The token tripped during the first backoff wait: no retry ran,
        // the chunk is pending (not quarantined), the stop is honest.
        assert_eq!(outcome.report.stopped, Some(StopCause::Cancelled));
        assert!(outcome.report.quarantined.is_empty());
        assert_eq!(outcome.report.pending_chunks(), 1);
    }

    #[test]
    fn report_render_mentions_resume_when_stopped() {
        let outcome = Supervisor::new()
            .with_chunk_budget(1)
            .run(&id("render"), plan(), chunk_sum)
            .unwrap();
        let text = outcome.report.render();
        assert!(text.contains("--resume"), "{text}");
    }
}
