//! The checkpoint wire codec: a tiny, dependency-free binary encoding
//! for per-chunk campaign payloads.
//!
//! Journal resume must be **bit-identical** to an uninterrupted run, so
//! the codec never goes through decimal formatting: every `f64` travels
//! as its IEEE-754 bit pattern ([`f64::to_bits`]), which round-trips
//! `-0.0`, subnormals and the `±inf` sentinels of a fresh accumulator
//! exactly. Integers are little-endian fixed-width words; collections
//! are length-prefixed.

/// A type that can be journaled as a per-chunk checkpoint payload and
/// reconstructed bit-identically on resume.
///
/// Implementations must be **total inverses**: for every value,
/// `decode(encode(v)) == Some(v)` with all input bytes consumed, and
/// `decode` must return `None` (never panic) on malformed input — a
/// corrupt journal degrades into an explicit error, not an abort.
pub trait Checkpoint: Sized {
    /// Appends the value's canonical byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value back from the reader, or `None` if the bytes do
    /// not form a valid encoding.
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;

    /// Convenience: the value encoded into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must consume `bytes` exactly.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.is_empty().then_some(v)
    }
}

/// A bounds-checked cursor over a checkpoint payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let raw = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(raw);
        Some(u64::from_le_bytes(word))
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let raw = self.take(4)?;
        let mut word = [0u8; 4];
        word.copy_from_slice(raw);
        Some(u32::from_le_bytes(word))
    }

    /// Reads one `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
}

impl Checkpoint for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Checkpoint for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.u32()
    }
}

impl Checkpoint for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.f64()
    }
}

impl<T: Checkpoint> Checkpoint for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let len = r.u64()?;
        // Defensive cap: a corrupt length must not trigger an OOM
        // allocation before element decoding fails naturally.
        let mut items = Vec::with_capacity(len.min(1 << 16) as usize);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Some(items)
    }
}

impl<A: Checkpoint, B: Checkpoint> Checkpoint for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::from_bytes(&v.to_bytes()), Some(v));
        }
        for v in [0u32, u32::MAX] {
            assert_eq!(u32::from_bytes(&v.to_bytes()), Some(v));
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            -1.234e-308,
        ] {
            let back = f64::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload bits survive too.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(
            f64::from_bytes(&nan.to_bytes()).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn vec_round_trips() {
        let v: Vec<u64> = vec![3, 1, 4, 1, 5];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()), Some(v));
        let empty: Vec<f64> = Vec::new();
        assert_eq!(Vec::<f64>::from_bytes(&empty.to_bytes()), Some(empty));
    }

    #[test]
    fn tuple_round_trips() {
        let v = (7u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_bytes(&v.to_bytes()), Some(v));
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let bytes = 42u64.to_bytes();
        assert_eq!(u64::from_bytes(&bytes[..7]), None);
        assert_eq!(Vec::<u64>::from_bytes(&[1, 0, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 42u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), None);
    }

    #[test]
    fn corrupt_vec_length_does_not_allocate_unbounded() {
        // Length claims 2^60 entries but the payload ends immediately.
        let bytes = (1u64 << 60).to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes), None);
    }
}
