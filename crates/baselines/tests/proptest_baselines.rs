//! Property-style tests on the baseline multipliers' published error
//! signatures: one-sidedness, bounds, exactness regions and symmetry.
//!
//! Deterministic randomized cases from [`realm_core::rng::SplitMix64`];
//! no external property-testing dependency.

use realm_baselines::adders::{approx_add, LowerPart};
use realm_baselines::{Alm, AlmAdder, Am, AmRecovery, Calm, Drum, Essm8, ImpLm, IntAlp, Mbm, Ssm};
use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_core::Multiplier;

const CASES: u64 = 512;

fn rng(salt: u64) -> SplitMix64 {
    SplitMix64::new(0xBA5E ^ salt)
}

fn pair(rng: &mut SplitMix64, lo: u64) -> (u64, u64) {
    (
        rng.range_inclusive(lo, u16::MAX as u64),
        rng.range_inclusive(lo, u16::MAX as u64),
    )
}

#[test]
fn calm_is_one_sided_and_bounded() {
    let mut rng = rng(1);
    let calm = Calm::new(16);
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        let e = calm.relative_error(a, b).expect("nonzero");
        assert!(e <= 0.0);
        assert!(e >= -1.0 / 9.0 - 1e-9);
    }
}

#[test]
fn mbm_error_within_published_peaks() {
    let mut rng = rng(2);
    // Table I: −7.64 % / +7.81 % at t = 0 (tiny margin for flooring).
    let mbm = Mbm::new(16, 0).expect("valid");
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        let e = mbm.relative_error(a, b).expect("nonzero");
        assert!(e > -0.0790 && e < 0.0790, "error {e}");
    }
}

#[test]
fn implm_double_sided_bound() {
    let mut rng = rng(3);
    // Table I: ±11.11 %.
    let implm = ImpLm::new(16);
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 2);
        let e = implm.relative_error(a, b).expect("nonzero");
        assert!(e.abs() <= 0.1112, "error {e}");
    }
}

#[test]
fn drum_small_operands_exact() {
    let mut rng = rng(4);
    let drum = Drum::new(16, 8).expect("valid");
    for _ in 0..CASES {
        let a = rng.below(256);
        let b = rng.below(256);
        assert_eq!(drum.multiply(a, b), a * b);
    }
}

#[test]
fn drum_error_bounded_by_fragment() {
    let mut rng = rng(5);
    // Per-operand error < 2^-(k−1), so the product error is below
    // 1 − (1 − 2^-(k−1))² ≈ 2^-(k−2).
    let drums: Vec<(u32, Drum)> = (4..=8)
        .map(|k| (k, Drum::new(16, k).expect("valid")))
        .collect();
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        let (k, drum) = &drums[rng.index(drums.len())];
        let e = drum.relative_error(a, b).expect("nonzero");
        let bound = 1.0 / (1u64 << (k - 2)) as f64;
        assert!(e.abs() < bound, "k={k}: error {e}");
    }
}

#[test]
fn ssm_and_essm_never_overestimate() {
    let mut rng = rng(6);
    let ssm = Ssm::new(16, 8).expect("valid");
    let essm = Essm8::new();
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        for design in [&ssm as &dyn Multiplier, &essm] {
            assert!(design.multiply(a, b) <= a * b, "{}", design.label());
        }
    }
}

#[test]
fn am_never_overestimates() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        let nb = rng.below(33) as u32;
        for recovery in [AmRecovery::Or, AmRecovery::Sum] {
            let am = Am::new(16, recovery, nb).expect("valid");
            assert!(am.multiply(a, b) <= a * b);
        }
    }
}

#[test]
fn am_full_recovery_sum_is_exact() {
    let mut rng = rng(8);
    // With every product column recovered and exact summation, the
    // design degenerates to an exact multiplier.
    let am = Am::new(16, AmRecovery::Sum, 32).expect("valid");
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        assert_eq!(am.multiply(a, b), a * b);
    }
}

#[test]
fn intalp_l1_never_underestimates_much() {
    let mut rng = rng(9);
    // One-sided error in [0, +12.5 %]; output flooring can nibble a
    // few ULPs below the exact product for tiny outputs.
    let alp = IntAlp::new(16, 1).expect("valid");
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        let p = alp.multiply(a, b);
        let exact = a * b;
        assert!((p as f64) >= exact as f64 * 0.999 - 2.0, "{p} vs {exact}");
        assert!((p as f64) <= exact as f64 * 1.1251 + 2.0, "{p} vs {exact}");
    }
}

#[test]
fn alm_m_zero_is_calm() {
    let mut rng = rng(10);
    let alm = Alm::new(16, AlmAdder::Soa, 0);
    let calm = Calm::new(16);
    for _ in 0..CASES {
        let (a, b) = pair(&mut rng, 1);
        assert_eq!(alm.multiply(a, b), calm.multiply(a, b));
    }
}

#[test]
fn approx_adders_bounded_error() {
    let mut rng = rng(11);
    for _ in 0..CASES {
        let a = rng.below(1 << 16);
        let b = rng.below(1 << 16);
        let m = rng.range_inclusive(1, 11) as u32;
        for scheme in [LowerPart::Or, LowerPart::SetOne] {
            let approx = approx_add(a, b, m, scheme) as i128;
            let exact = (a + b) as i128;
            assert!((approx - exact).abs() < (1 << m), "{scheme:?} m={m}");
        }
    }
}

#[test]
fn all_baselines_are_commutative() {
    let mut rng = rng(12);
    let designs = realm_baselines::catalog::baseline_configurations();
    for _ in 0..64 {
        let (a, b) = pair(&mut rng, 1);
        for design in &designs {
            assert_eq!(
                design.multiply(a, b),
                design.multiply(b, a),
                "{} not commutative",
                design.label()
            );
        }
    }
}
