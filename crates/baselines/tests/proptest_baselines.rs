//! Property-based tests on the baseline multipliers' published error
//! signatures: one-sidedness, bounds, exactness regions and symmetry.

use proptest::prelude::*;
use realm_baselines::adders::{approx_add, LowerPart};
use realm_baselines::{Alm, AlmAdder, Am, AmRecovery, Calm, Drum, Essm8, ImpLm, IntAlp, Mbm, Ssm};
use realm_core::multiplier::MultiplierExt;
use realm_core::Multiplier;

proptest! {
    #[test]
    fn calm_is_one_sided_and_bounded(a in 1u64..=u16::MAX as u64, b in 1u64..=u16::MAX as u64) {
        let e = Calm::new(16).relative_error(a, b).expect("nonzero");
        prop_assert!(e <= 0.0);
        prop_assert!(e >= -1.0 / 9.0 - 1e-9);
    }

    #[test]
    fn mbm_error_within_published_peaks(a in 1u64..=u16::MAX as u64,
                                        b in 1u64..=u16::MAX as u64) {
        // Table I: −7.64 % / +7.81 % at t = 0 (tiny margin for flooring).
        let e = Mbm::new(16, 0).expect("valid").relative_error(a, b).expect("nonzero");
        prop_assert!(e > -0.0790 && e < 0.0790, "error {}", e);
    }

    #[test]
    fn implm_double_sided_bound(a in 2u64..=u16::MAX as u64, b in 2u64..=u16::MAX as u64) {
        // Table I: ±11.11 %.
        let e = ImpLm::new(16).relative_error(a, b).expect("nonzero");
        prop_assert!(e.abs() <= 0.1112, "error {}", e);
    }

    #[test]
    fn drum_small_operands_exact(a in 0u64..256, b in 0u64..256) {
        let drum = Drum::new(16, 8).expect("valid");
        prop_assert_eq!(drum.multiply(a, b), a * b);
    }

    #[test]
    fn drum_error_bounded_by_fragment(a in 1u64..=u16::MAX as u64,
                                      b in 1u64..=u16::MAX as u64,
                                      k in 4u32..=8) {
        // Per-operand error < 2^-(k−1), so the product error is below
        // 1 − (1 − 2^-(k−1))² ≈ 2^-(k−2).
        let e = Drum::new(16, k).expect("valid").relative_error(a, b).expect("nonzero");
        let bound = 1.0 / (1u64 << (k - 2)) as f64;
        prop_assert!(e.abs() < bound, "k={}: error {}", k, e);
    }

    #[test]
    fn ssm_and_essm_never_overestimate(a in 1u64..=u16::MAX as u64,
                                       b in 1u64..=u16::MAX as u64) {
        for design in [&Ssm::new(16, 8).expect("valid") as &dyn Multiplier, &Essm8::new()] {
            prop_assert!(design.multiply(a, b) <= a * b, "{}", design.label());
        }
    }

    #[test]
    fn am_never_overestimates(a in 1u64..=u16::MAX as u64, b in 1u64..=u16::MAX as u64,
                              nb in 0u32..=32) {
        for recovery in [AmRecovery::Or, AmRecovery::Sum] {
            let am = Am::new(16, recovery, nb).expect("valid");
            prop_assert!(am.multiply(a, b) <= a * b);
        }
    }

    #[test]
    fn am_full_recovery_sum_is_exact(a in 1u64..=u16::MAX as u64, b in 1u64..=u16::MAX as u64) {
        // With every product column recovered and exact summation, the
        // design degenerates to an exact multiplier.
        let am = Am::new(16, AmRecovery::Sum, 32).expect("valid");
        prop_assert_eq!(am.multiply(a, b), a * b);
    }

    #[test]
    fn intalp_l1_never_underestimates_much(a in 1u64..=u16::MAX as u64,
                                           b in 1u64..=u16::MAX as u64) {
        // One-sided error in [0, +12.5 %]; output flooring can nibble a
        // few ULPs below the exact product for tiny outputs.
        let alp = IntAlp::new(16, 1).expect("valid");
        let p = alp.multiply(a, b);
        let exact = a * b;
        prop_assert!(p + 2 >= exact.min(p + 2), "sanity");
        prop_assert!((p as f64) >= exact as f64 * 0.999 - 2.0, "{} vs {}", p, exact);
        prop_assert!((p as f64) <= exact as f64 * 1.1251 + 2.0, "{} vs {}", p, exact);
    }

    #[test]
    fn alm_m_zero_is_calm(a in 1u64..=u16::MAX as u64, b in 1u64..=u16::MAX as u64) {
        let alm = Alm::new(16, AlmAdder::Soa, 0);
        prop_assert_eq!(alm.multiply(a, b), Calm::new(16).multiply(a, b));
    }

    #[test]
    fn approx_adders_bounded_error(a in 0u64..(1 << 16), b in 0u64..(1 << 16), m in 1u32..12) {
        for scheme in [LowerPart::Or, LowerPart::SetOne] {
            let approx = approx_add(a, b, m, scheme) as i128;
            let exact = (a + b) as i128;
            prop_assert!((approx - exact).abs() < (1 << m), "{:?} m={}", scheme, m);
        }
    }

    #[test]
    fn all_baselines_are_commutative(a in 1u64..=u16::MAX as u64, b in 1u64..=u16::MAX as u64) {
        for design in realm_baselines::catalog::baseline_configurations() {
            prop_assert_eq!(
                design.multiply(a, b),
                design.multiply(b, a),
                "{} not commutative",
                design.label()
            );
        }
    }
}
