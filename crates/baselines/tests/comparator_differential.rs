//! Exhaustive 8-bit differential suite for the post-paper comparators:
//! every one of the 65536 `(a, b)` pairs is pushed through scaleTRIM and
//! ILM and checked bit-for-bit against an independent `u128` reference
//! model written straight from each paper's datapath description (no
//! shared helpers with the implementations under test). On top of
//! bit-identity, the suite pins each configuration's error envelope —
//! NMED and peak relative error — to the published bounds, and proves
//! batch ≡ scalar ≡ pinned-SIMD-tier on the full square.

use realm_baselines::{Ilm, ScaleTrim};
use realm_core::simd::{self, Tier};
use realm_core::Multiplier;

/// Reference scaleTRIM: leading-one decomposition, top-`t` cross term
/// `4·x_a·y_a`, optional `2(x_a + y_a) + 1` compensation, two-stage
/// flooring (correction aligned into `2^-f` units, then the antilog
/// shift), saturated to the `2N`-bit product ceiling.
fn scaletrim_ref(a: u64, b: u64, width: u32, t: u32, comp: bool) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let f = width - 1;
    let ka = 63 - a.leading_zeros();
    let kb = 63 - b.leading_zeros();
    let fx = (a - (1u64 << ka)) << (f - ka);
    let fy = (b - (1u64 << kb)) << (f - kb);
    let xa = fx >> (f - t);
    let ya = fy >> (f - t);
    let pp = xa * ya;
    let corr = if comp {
        (pp << 2) + ((xa + ya) << 1) + 1
    } else {
        pp << 2
    };
    let corr_units = 2 * t + 2; // corr is in units of 2^-(2t+2)
    let corr_f = if f >= corr_units {
        (corr as u128) << (f - corr_units)
    } else {
        (corr as u128) >> (corr_units - f)
    };
    let mantissa = (1u128 << f) + fx as u128 + fy as u128 + corr_f;
    let shift = (ka + kb) as i64 - f as i64;
    let value = if shift >= 0 {
        mantissa << shift
    } else {
        mantissa >> -shift
    };
    value.min((1u128 << (2 * width)) - 1)
}

/// Reference ILM, written from the `RatkoFri/Bfloat16` C model: one
/// leading-one decomposition per operand, `prod0 = A·2^kb + B'·2^ka`,
/// and a second basic block over the residues when both are nonzero.
fn ilm_ref(a: u64, b: u64, iterations: u32) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let ka = 63 - a.leading_zeros();
    let kb = 63 - b.leading_zeros();
    let res_a = a ^ (1 << ka);
    let res_b = b ^ (1 << kb);
    let mut p = ((a as u128) << kb) + ((res_b as u128) << ka);
    if iterations == 2 && res_a != 0 && res_b != 0 {
        let ka2 = 63 - res_a.leading_zeros();
        let kb2 = 63 - res_b.leading_zeros();
        let res2_b = res_b ^ (1 << kb2);
        p += ((res_a as u128) << kb2) + ((res2_b as u128) << ka2);
    }
    p
}

fn all_8bit_pairs() -> Vec<(u64, u64)> {
    (0..=255u64)
        .flat_map(|a| (0..=255u64).map(move |b| (a, b)))
        .collect()
}

/// NMED (mean error distance over the max product) and peak relative
/// error of `design` over the exhaustive 8-bit square, asserting
/// bit-identity against `reference` along the way.
fn exhaustive_8bit_envelope(
    label: &str,
    design: &dyn Multiplier,
    reference: impl Fn(u64, u64) -> u128,
) -> (f64, f64) {
    let mut sum_ed = 0.0;
    let mut peak = 0.0f64;
    for (a, b) in all_8bit_pairs() {
        let want = reference(a, b);
        assert_eq!(
            design.multiply_wide(a, b),
            want,
            "{label}: implementation and reference model disagree at a={a} b={b}"
        );
        assert_eq!(
            design.multiply(a, b) as u128,
            want,
            "{label}: register path diverges from wide path at a={a} b={b}"
        );
        let exact = a * b;
        let distance = (want as f64 - exact as f64).abs();
        sum_ed += distance;
        if exact != 0 {
            peak = peak.max(distance / exact as f64);
        }
    }
    (sum_ed / 65536.0 / (255.0 * 255.0), peak)
}

#[test]
fn scaletrim_matches_reference_on_every_8bit_pair_with_bounded_error() {
    // (t, c) → NMED / peak-relative-error ceilings, pinned just above
    // the measured envelope so a datapath regression of even one ULP
    // class trips them.
    let cases = [
        (2u32, true, 0.0055, 0.07),
        (2, false, 0.0120, 0.11),
        (4, true, 0.0014, 0.016),
        (4, false, 0.0030, 0.028),
        (6, true, 0.0004, 0.0065),
        (6, false, 0.0008, 0.0080),
        (7, true, 0.0003, 0.0060),
    ];
    let mut last_compensated_nmed = f64::INFINITY;
    for (t, c, nmed_max, peak_max) in cases {
        let design = ScaleTrim::new(8, t, c).expect("valid config");
        let label = format!("scaleTRIM t={t} c={c}");
        let (nmed, peak) =
            exhaustive_8bit_envelope(&label, &design, |a, b| scaletrim_ref(a, b, 8, t, c));
        assert!(nmed < nmed_max, "{label}: NMED {nmed} >= {nmed_max}");
        assert!(peak < peak_max, "{label}: peak {peak} >= {peak_max}");
        // Every configuration beats Mitchell's one-sided 11.1 % corner.
        assert!(peak < 0.111, "{label}: peak {peak} worse than Mitchell");
        if c {
            assert!(
                nmed < last_compensated_nmed,
                "{label}: NMED must shrink as t grows"
            );
            last_compensated_nmed = nmed;
        }
    }
}

#[test]
fn ilm_matches_reference_on_every_8bit_pair_with_bounded_error() {
    // The published envelopes: one basic block stays under 25 % peak
    // relative error, two under 6.25 % (each iteration squares the
    // worst-case residue fraction).
    for (iterations, nmed_max, peak_max) in [(1u32, 0.028, 0.25), (2, 0.0030, 0.0625)] {
        let design = Ilm::new(8, iterations).expect("valid config");
        let label = format!("ILM i={iterations}");
        let (nmed, peak) =
            exhaustive_8bit_envelope(&label, &design, |a, b| ilm_ref(a, b, iterations));
        assert!(nmed < nmed_max, "{label}: NMED {nmed} >= {nmed_max}");
        assert!(peak < peak_max, "{label}: peak {peak} >= {peak_max}");
    }
}

/// A kernel invocation with the ISA tier pinned per call.
type TierRun<'a> = &'a dyn Fn(Tier, &[(u64, u64)], &mut [u64]);

/// Runs `pairs` through both pinned ISA tiers and the scalar `multiply`,
/// asserting three-way bit-identity (the kernels keep scalar lanes on
/// every tier for these designs, which is exactly what this proves).
fn assert_tiers_match(label: &str, design: &dyn Multiplier, run: TierRun, pairs: &[(u64, u64)]) {
    let mut scalar = vec![0u64; pairs.len()];
    let mut wide = vec![0u64; pairs.len()];
    run(Tier::Scalar, pairs, &mut scalar);
    run(Tier::Avx2, pairs, &mut wide);
    let mut batch = vec![0u64; pairs.len()];
    design.multiply_batch(pairs, &mut batch);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let want = design.multiply(a, b);
        assert_eq!(
            scalar[i], want,
            "{label}: scalar tier diverges at a={a} b={b}"
        );
        assert_eq!(wide[i], want, "{label}: AVX2 tier diverges at a={a} b={b}");
        assert_eq!(
            batch[i], want,
            "{label}: multiply_batch diverges at a={a} b={b}"
        );
    }
}

#[test]
fn scaletrim_tiers_and_batch_agree_on_every_8bit_pair() {
    let pairs = all_8bit_pairs();
    for (width, t, c) in [
        (8u32, 4u32, true),
        (8, 6, false),
        (16, 4, true),
        (16, 6, true),
    ] {
        let design = ScaleTrim::new(width, t, c).expect("valid config");
        let kernel = simd::ScaleTrimKernel::new(width, t, c).expect("narrow width has a kernel");
        assert_tiers_match(
            &format!("scaleTRIM w={width} t={t} c={c}"),
            &design,
            &|tier, p, o| kernel.run(tier, p, o),
            &pairs,
        );
    }
}

#[test]
fn ilm_tiers_and_batch_agree_on_every_8bit_pair() {
    let pairs = all_8bit_pairs();
    for (width, iterations) in [(8u32, 1u32), (8, 2), (16, 1), (16, 2), (32, 2)] {
        let design = Ilm::new(width, iterations).expect("valid config");
        let kernel = simd::IlmKernel::new(width, iterations).expect("valid config has a kernel");
        assert_tiers_match(
            &format!("ILM w={width} i={iterations}"),
            &design,
            &|tier, p, o| kernel.run(tier, p, o),
            &pairs,
        );
    }
}
