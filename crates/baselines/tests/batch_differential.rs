//! Exhaustive batch≡scalar differential tests for the monomorphic
//! `multiply_batch` kernels of the hot baseline designs (cALM, DRUM).
//!
//! Coverage is the full 8-bit operand square — every `(a, b)` with
//! `a, b ∈ 0..=255` — run both through the design's native width-8
//! configuration and through the paper's 16-bit configuration (where the
//! 8-bit square exercises the small-operand and cross-interval paths).
//! The batch kernels are hand-hoisted monomorphizations, so bit-identity
//! with the scalar `multiply` is a real proof obligation, not a tautology.

use realm_baselines::{Calm, Drum};
use realm_core::Multiplier;

fn all_8bit_pairs() -> Vec<(u64, u64)> {
    (0..=255u64)
        .flat_map(|a| (0..=255u64).map(move |b| (a, b)))
        .collect()
}

fn assert_batch_matches_scalar(design: &dyn Multiplier) {
    let pairs = all_8bit_pairs();
    let mut out = vec![0u64; pairs.len()];
    design.multiply_batch(&pairs, &mut out);
    for (&(a, b), &p) in pairs.iter().zip(&out) {
        assert_eq!(
            p,
            design.multiply(a, b),
            "{:?}: batch and scalar disagree at a={a} b={b}",
            design
        );
    }
}

#[test]
fn calm_batch_is_bit_identical_to_scalar_on_every_8bit_pair() {
    for width in [8u32, 16, 32] {
        assert_batch_matches_scalar(&Calm::new(width));
    }
}

#[test]
fn drum_batch_is_bit_identical_to_scalar_on_every_8bit_pair() {
    // The paper sweeps k ∈ {4, …, 8} at N = 16; include the native 8-bit
    // configuration and the minimum legal fragment too.
    for fragment in [3u32, 4, 6, 8] {
        assert_batch_matches_scalar(&Drum::new(8, fragment).expect("valid config"));
        assert_batch_matches_scalar(&Drum::new(16, fragment).expect("valid config"));
    }
    assert_batch_matches_scalar(&Drum::new(32, 8).expect("valid config"));
}

#[test]
#[should_panic(expected = "one output slot per operand pair")]
fn drum_batch_rejects_length_mismatch() {
    let drum = Drum::new(16, 6).expect("valid config");
    let mut out = [0u64; 2];
    drum.multiply_batch(&[(1, 2), (3, 4), (5, 6)], &mut out);
}
