//! Exhaustive batch≡scalar differential tests for the monomorphic
//! `multiply_batch` kernels of the hot baseline designs (cALM, DRUM).
//!
//! Coverage is the full 8-bit operand square — every `(a, b)` with
//! `a, b ∈ 0..=255` — run both through the design's native width-8
//! configuration and through the paper's 16-bit configuration (where the
//! 8-bit square exercises the small-operand and cross-interval paths).
//! The batch kernels are hand-hoisted monomorphizations, so bit-identity
//! with the scalar `multiply` is a real proof obligation, not a tautology.
//!
//! Since the kernels moved into the tiered `realm-simd` layer, the same
//! square is additionally run with the ISA tier pinned per call —
//! scalar and AVX2 — proving SIMD ≡ scalar for cALM and DRUM on all
//! 65536 pairs (the core suite covers Accurate and REALM), plus a
//! deterministic random-stream pass over odd batch lengths for the
//! remainder lanes.

use realm_baselines::{Calm, Drum};
use realm_core::rng::SplitMix64;
use realm_core::simd::{self, Tier};
use realm_core::Multiplier;

fn all_8bit_pairs() -> Vec<(u64, u64)> {
    (0..=255u64)
        .flat_map(|a| (0..=255u64).map(move |b| (a, b)))
        .collect()
}

fn assert_batch_matches_scalar(design: &dyn Multiplier) {
    let pairs = all_8bit_pairs();
    let mut out = vec![0u64; pairs.len()];
    design.multiply_batch(&pairs, &mut out);
    for (&(a, b), &p) in pairs.iter().zip(&out) {
        assert_eq!(
            p,
            design.multiply(a, b),
            "{:?}: batch and scalar disagree at a={a} b={b}",
            design
        );
    }
}

#[test]
fn calm_batch_is_bit_identical_to_scalar_on_every_8bit_pair() {
    for width in [8u32, 16, 32] {
        assert_batch_matches_scalar(&Calm::new(width));
    }
}

#[test]
fn drum_batch_is_bit_identical_to_scalar_on_every_8bit_pair() {
    // The paper sweeps k ∈ {4, …, 8} at N = 16; include the native 8-bit
    // configuration and the minimum legal fragment too.
    for fragment in [3u32, 4, 6, 8] {
        assert_batch_matches_scalar(&Drum::new(8, fragment).expect("valid config"));
        assert_batch_matches_scalar(&Drum::new(16, fragment).expect("valid config"));
    }
    assert_batch_matches_scalar(&Drum::new(32, 8).expect("valid config"));
}

/// A kernel invocation with the ISA tier pinned per call.
type TierRun<'a> = &'a dyn Fn(Tier, &[(u64, u64)], &mut [u64]);

/// Runs `pairs` through both pinned tiers and the design's scalar
/// `multiply`, asserting three-way bit-identity.
fn assert_tiers_match(label: &str, design: &dyn Multiplier, run: TierRun, pairs: &[(u64, u64)]) {
    let mut scalar = vec![0u64; pairs.len()];
    let mut wide = vec![0u64; pairs.len()];
    run(Tier::Scalar, pairs, &mut scalar);
    run(Tier::Avx2, pairs, &mut wide);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        assert_eq!(
            scalar[i],
            design.multiply(a, b),
            "{label}: scalar tier != multiply at a={a} b={b}"
        );
        assert_eq!(
            wide[i], scalar[i],
            "{label}: SIMD tier != scalar tier at a={a} b={b} (lane {i})"
        );
    }
}

#[test]
fn calm_tiers_agree_on_every_8bit_pair() {
    let pairs = all_8bit_pairs();
    for width in [8u32, 16, 31] {
        let design = Calm::new(width);
        let kernel = simd::CalmKernel::new(width).expect("narrow width has a kernel");
        assert_tiers_match(
            &format!("cALM w={width}"),
            &design,
            &|t, p, o| kernel.run(t, p, o),
            &pairs,
        );
    }
}

#[test]
fn drum_tiers_agree_on_every_8bit_pair() {
    let pairs = all_8bit_pairs();
    for (width, fragment) in [(8u32, 3u32), (8, 6), (16, 4), (16, 6), (16, 8), (32, 8)] {
        let design = Drum::new(width, fragment).expect("valid config");
        let kernel = simd::DrumKernel::new(width, fragment).expect("valid config has a kernel");
        assert_tiers_match(
            &format!("DRUM w={width} k={fragment}"),
            &design,
            &|t, p, o| kernel.run(t, p, o),
            &pairs,
        );
    }
}

#[test]
fn proptest_baseline_tiers_agree_on_random_streams_and_odd_lengths() {
    // Odd lengths cover every remainder-lane count (len mod 4 ∈
    // {0,1,2,3}); operands stay in-contract for each design's width.
    let mut rng = SplitMix64::new(0xBA5E_11E5);
    let calm = Calm::new(16);
    let calm_kernel = simd::CalmKernel::new(16).expect("narrow width has a kernel");
    let drum = Drum::new(16, 6).expect("valid config");
    let drum_kernel = simd::DrumKernel::new(16, 6).expect("valid config has a kernel");
    for len in [1usize, 2, 3, 5, 63, 1021, 4099] {
        let pairs: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.next_u64() & 0xFFFF, rng.next_u64() & 0xFFFF))
            .collect();
        assert_tiers_match(
            &format!("cALM len={len}"),
            &calm,
            &|t, p, o| calm_kernel.run(t, p, o),
            &pairs,
        );
        assert_tiers_match(
            &format!("DRUM len={len}"),
            &drum,
            &|t, p, o| drum_kernel.run(t, p, o),
            &pairs,
        );
    }
}

#[test]
#[should_panic(expected = "one output slot per operand pair")]
fn drum_batch_rejects_length_mismatch() {
    let drum = Drum::new(16, 6).expect("valid config");
    let mut out = [0u64; 2];
    drum.multiply_batch(&[(1, 2), (3, 4), (5, 6)], &mut out);
}
