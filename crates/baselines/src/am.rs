//! AM1 and AM2: approximate multipliers with configurable error recovery,
//! Jiang et al., "Low-power approximate unsigned multipliers with
//! configurable error recovery", IEEE TCAS-I 2019 — reference \[15\] of
//! the paper.
//!
//! # Reconstruction notes
//!
//! The cited design accumulates partial products through approximate
//! adders that emit a *sum* and a separate *error vector* (the carries the
//! adder chose not to propagate), then compensates by re-injecting an
//! approximation of the accumulated error restricted to the `nb`
//! most-significant result columns. The print specification leaves cell-
//! level details open, so this model reconstructs the architecture
//! behaviourally:
//!
//! * the approximate adder is carry-free: `sum = x ⊕ y`, error vector
//!   `e = x ∧ y` (each dropped carry is worth `2·e`);
//! * partial products are folded sequentially through that adder,
//!   collecting one error vector per stage;
//! * **AM1** recovers with the OR of all error vectors (cheap, coarse),
//!   **AM2** with their exact sum (costlier, finer), both masked to the
//!   `nb` most-significant columns before the final `×2` re-injection.
//!
//! The reconstruction reproduces the published signatures that matter for
//! Table I: error is strictly one-sided (never positive, min ≈ −61 % for
//! worst-case small products regardless of `nb`), bias and mean error
//! shrink as `nb` grows, and AM2 is consistently more accurate but more
//! expensive than AM1.

use realm_core::{ConfigError, Multiplier};

/// Error-recovery style distinguishing AM1 from AM2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmRecovery {
    /// OR-combined error vectors (AM1).
    Or,
    /// Exactly summed error vectors (AM2).
    Sum,
}

/// The AM1/AM2 approximate multiplier with `nb` error-recovery columns.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::{Am, AmRecovery};
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let am1 = Am::new(16, AmRecovery::Or, 13)?;
/// // Never overestimates.
/// assert!(am1.multiply(40_000, 50_000) <= 40_000u64 * 50_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Am {
    width: u32,
    recovery: AmRecovery,
    recovery_bits: u32,
}

impl Am {
    /// Creates an AM with the given recovery style and `nb` recovery
    /// columns (the paper sweeps `nb ∈ {5, 9, 13}` at `N = 16`).
    ///
    /// # Errors
    ///
    /// Rejects widths outside `4..=32` and `nb` larger than the `2N`-bit
    /// product.
    pub fn new(width: u32, recovery: AmRecovery, recovery_bits: u32) -> Result<Self, ConfigError> {
        if !(4..=32).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if recovery_bits > 2 * width {
            return Err(ConfigError::TruncationTooLarge {
                truncation: recovery_bits,
                fraction_bits: 2 * width,
                index_bits: 0,
            });
        }
        Ok(Am {
            width,
            recovery,
            recovery_bits,
        })
    }

    /// The number of most-significant product columns with error recovery.
    pub fn recovery_bits(&self) -> u32 {
        self.recovery_bits
    }

    /// The recovery style (AM1 = OR, AM2 = Sum).
    pub fn recovery(&self) -> AmRecovery {
        self.recovery
    }
}

impl Multiplier for Am {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let product_bits = 2 * self.width;
        // Error recovery is restricted to the top `nb` product columns:
        // each stage's error vector is masked before it is combined, which
        // is what the recovery hardware sees.
        let mask = if self.recovery_bits == 0 {
            0
        } else {
            let low = product_bits.saturating_sub(self.recovery_bits);
            (((1u128 << product_bits) - 1) >> low) << low
        };
        // Carry-free accumulation of partial products, one error vector
        // per stage.
        let mut acc: u128 = 0;
        let mut err_or: u128 = 0;
        let mut err_sum: u128 = 0;
        for bit in 0..self.width {
            if (b >> bit) & 1 == 1 {
                let pp = (a as u128) << bit;
                let e = acc & pp;
                acc ^= pp;
                err_or |= e & mask;
                err_sum += e & mask;
            }
        }
        let recovered = match self.recovery {
            AmRecovery::Or => err_or,
            AmRecovery::Sum => err_sum,
        };
        let approx = acc + (recovered << 1);
        // Recovery is a lower bound on the dropped carries, so the result
        // never exceeds the exact product; clamp defensively anyway.
        let exact = (a as u128) * (b as u128);
        approx.min(exact) as u64
    }

    fn name(&self) -> &str {
        match self.recovery {
            AmRecovery::Or => "AM1",
            AmRecovery::Sum => "AM2",
        }
    }

    fn config(&self) -> String {
        format!("nb={}", self.recovery_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn error_is_one_sided() {
        for recovery in [AmRecovery::Or, AmRecovery::Sum] {
            let m = Am::new(16, recovery, 13).unwrap();
            for a in (1..65_536u64).step_by(211) {
                for b in (1..65_536u64).step_by(199) {
                    let e = m.relative_error(a, b).expect("nonzero");
                    assert!(e <= 0.0, "positive error at ({a}, {b}): {e}");
                }
            }
        }
    }

    #[test]
    fn single_partial_product_is_exact() {
        // b a power of two: only one partial product, nothing to drop.
        let m = Am::new(16, AmRecovery::Or, 5).unwrap();
        for k in 0..16 {
            assert_eq!(m.multiply(54_321, 1 << k), 54_321 << k);
        }
    }

    #[test]
    fn am2_at_least_as_accurate_as_am1() {
        let am1 = Am::new(16, AmRecovery::Or, 9).unwrap();
        let am2 = Am::new(16, AmRecovery::Sum, 9).unwrap();
        let mean = |m: &Am| {
            let (mut s, mut n) = (0.0, 0u64);
            for a in (1..65_536u64).step_by(157) {
                for b in (1..65_536u64).step_by(163) {
                    s += m.relative_error(a, b).expect("nonzero").abs();
                    n += 1;
                }
            }
            s / n as f64
        };
        let (e1, e2) = (mean(&am1), mean(&am2));
        assert!(e2 <= e1 + 1e-9, "AM2 mean {e2} vs AM1 mean {e1}");
    }

    #[test]
    fn more_recovery_bits_reduce_bias() {
        let bias = |nb: u32| {
            let m = Am::new(16, AmRecovery::Or, nb).unwrap();
            let (mut s, mut n) = (0.0, 0u64);
            for a in (1..65_536u64).step_by(157) {
                for b in (1..65_536u64).step_by(163) {
                    s += m.relative_error(a, b).expect("nonzero");
                    n += 1;
                }
            }
            s / n as f64
        };
        let (b5, b9, b13) = (bias(5), bias(9), bias(13));
        assert!(b13 > b9 && b9 > b5, "b5={b5} b9={b9} b13={b13}");
    }

    #[test]
    fn worst_case_is_large_and_nb_independent() {
        // Table I: min ≈ −61.6 % for every nb — dominated by products whose
        // carries all fall below the recovered columns.
        for nb in [5u32, 9, 13] {
            let m = Am::new(16, AmRecovery::Or, nb).unwrap();
            let mut lo = 0.0f64;
            for a in (1..65_536u64).step_by(53) {
                for b in (1..65_536u64).step_by(59) {
                    lo = lo.min(m.relative_error(a, b).expect("nonzero"));
                }
            }
            assert!(lo < -0.45, "nb={nb} min {lo} unexpectedly mild");
        }
    }

    #[test]
    fn validation() {
        assert!(Am::new(16, AmRecovery::Or, 33).is_err());
        assert!(Am::new(3, AmRecovery::Or, 5).is_err());
        assert!(Am::new(16, AmRecovery::Sum, 0).is_ok());
    }
}
