//! Ready-made collections of every design/configuration evaluated in the
//! paper, so experiments iterate the same rows as Table I.

// Every constructor argument below is a fixed design point from the
// paper; failure is unreachable rather than an error to propagate.
#![allow(clippy::expect_used)]

use realm_core::{Multiplier, Realm, RealmConfig};

use crate::alm::{Alm, AlmAdder};
use crate::am::{Am, AmRecovery};
use crate::calm::Calm;
use crate::drum::Drum;
use crate::ilm::Ilm;
use crate::implm::ImpLm;
use crate::intalp::IntAlp;
use crate::mbm::Mbm;
use crate::scaletrim::ScaleTrim;
use crate::ssm::{Essm8, Ssm};

/// Every REALM configuration of Table I: `M ∈ {16, 8, 4}` × `t ∈ 0..=9`
/// at `N = 16`, `q = 6`, in the table's row order.
///
/// # Panics
///
/// Panics only if the paper's own design points were invalid — i.e. never.
pub fn realm_configurations() -> Vec<Realm> {
    let mut designs = Vec::with_capacity(30);
    for m in [16u32, 8, 4] {
        for t in 0..=9u32 {
            designs.push(Realm::new(RealmConfig::n16(m, t)).expect("paper design point"));
        }
    }
    designs
}

/// Every non-REALM design of Table I, in the table's row order.
///
/// # Panics
///
/// Panics only if the paper's own design points were invalid — i.e. never.
pub fn baseline_configurations() -> Vec<Box<dyn Multiplier>> {
    let mut designs: Vec<Box<dyn Multiplier>> = Vec::new();
    designs.push(Box::new(Calm::new(16)));
    designs.push(Box::new(ImpLm::new(16)));
    for t in [0u32, 2, 4, 6, 8, 9] {
        designs.push(Box::new(Mbm::new(16, t).expect("paper design point")));
    }
    for m in [3u32, 6, 9, 11, 12] {
        designs.push(Box::new(Alm::new(16, AlmAdder::Maa, m)));
    }
    for m in [3u32, 6, 9, 11, 12] {
        designs.push(Box::new(Alm::new(16, AlmAdder::Soa, m)));
    }
    for level in [2u32, 1] {
        designs.push(Box::new(
            IntAlp::new(16, level).expect("paper design point"),
        ));
    }
    for nb in [13u32, 9, 5] {
        designs.push(Box::new(
            Am::new(16, AmRecovery::Or, nb).expect("paper design point"),
        ));
    }
    for nb in [13u32, 9, 5] {
        designs.push(Box::new(
            Am::new(16, AmRecovery::Sum, nb).expect("paper design point"),
        ));
    }
    for k in [8u32, 7, 6, 5, 4] {
        designs.push(Box::new(Drum::new(16, k).expect("paper design point")));
    }
    for m in [10u32, 9, 8] {
        designs.push(Box::new(Ssm::new(16, m).expect("paper design point")));
    }
    designs.push(Box::new(Essm8::new()));
    designs
}

/// The post-paper comparators appended to the extended Table I at
/// `N = 16`: scaleTRIM (`t ∈ {4, 6}`, compensated) and ILM
/// (`i ∈ {1, 2}`), in the same order `realm-synth` appends their
/// netlists.
///
/// # Panics
///
/// Panics only if the fixed design points were invalid — i.e. never.
pub fn comparator_configurations() -> Vec<Box<dyn Multiplier>> {
    let mut designs: Vec<Box<dyn Multiplier>> = Vec::with_capacity(4);
    for t in [4u32, 6] {
        designs.push(Box::new(
            ScaleTrim::new(16, t, true).expect("fixed design point"),
        ));
    }
    for i in [1u32, 2] {
        designs.push(Box::new(Ilm::new(16, i).expect("fixed design point")));
    }
    designs
}

/// All rows of the extended Table I: REALM first, then the paper's
/// baselines, then the post-paper comparators (appended last so the
/// paper rows keep their positions).
pub fn table1_designs() -> Vec<Box<dyn Multiplier>> {
    let mut designs: Vec<Box<dyn Multiplier>> = realm_configurations()
        .into_iter()
        .map(|r| Box::new(r) as Box<dyn Multiplier>)
        .collect();
    designs.extend(baseline_configurations());
    designs.extend(comparator_configurations());
    designs
}

/// The designs of the JPEG study (Table II), excluding the accurate
/// reference: REALM{16,8,4} at `t = 8`, MBM `t = 0`, cALM, ImpLM (EA),
/// IntALP `L = 1` and ALM-SOA `m = 11`.
///
/// # Panics
///
/// Panics only if the paper's own design points were invalid — i.e. never.
pub fn table2_designs() -> Vec<Box<dyn Multiplier>> {
    vec![
        Box::new(Realm::new(RealmConfig::n16(16, 8)).expect("paper design point")),
        Box::new(Realm::new(RealmConfig::n16(8, 8)).expect("paper design point")),
        Box::new(Realm::new(RealmConfig::n16(4, 8)).expect("paper design point")),
        Box::new(Mbm::new(16, 0).expect("paper design point")),
        Box::new(Calm::new(16)),
        Box::new(ImpLm::new(16)),
        Box::new(IntAlp::new(16, 1).expect("paper design point")),
        Box::new(Alm::new(16, AlmAdder::Soa, 11)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn realm_rows_match_table1_count() {
        assert_eq!(realm_configurations().len(), 30);
    }

    #[test]
    fn baseline_rows_match_table1_count() {
        // 1 cALM + 1 ImpLM + 6 MBM + 5 MAA + 5 SOA + 2 IntALP + 3 AM1 +
        // 3 AM2 + 5 DRUM + 3 SSM + 1 ESSM8 = 35.
        assert_eq!(baseline_configurations().len(), 35);
    }

    #[test]
    fn comparator_rows_extend_the_table() {
        assert_eq!(comparator_configurations().len(), 4);
        assert_eq!(table1_designs().len(), 69);
    }

    #[test]
    fn all_designs_are_16_bit_and_zero_preserving() {
        for d in table1_designs() {
            assert_eq!(d.width(), 16, "{}", d.label());
            assert_eq!(d.multiply(0, 1234), 0, "{}", d.label());
            assert_eq!(d.multiply(1234, 0), 0, "{}", d.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = table1_designs().iter().map(|d| d.label()).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate design labels");
    }

    #[test]
    fn table2_has_eight_approximate_designs() {
        assert_eq!(table2_designs().len(), 8);
    }
}
