//! scaleTRIM: the scalable truncation-based approximate multiplier with
//! linearization and compensation of Farahmand et al. (arXiv:2303.02495).
//!
//! scaleTRIM keeps the leading-one decomposition `A = 2^k (1 + x)` of the
//! log family but never leaves the linear domain: it expands the exact
//! product `(1 + x)(1 + y) = 1 + x + y + x·y` and replaces only the cross
//! term `x·y` with a truncated product of the top `t` fraction bits of
//! each operand (`x_a`, `y_a`), optionally adding the expected value of
//! the truncated low parts as a constant compensation term. Where
//! Mitchell drops `x·y` entirely (the one-sided −11.1 % error), scaleTRIM
//! pays a small `t × t` multiplier to win most of it back, and the
//! compensation centres the remaining truncation error around zero.

use realm_core::mitchell;
use realm_core::{ConfigError, Multiplier};

/// The scaleTRIM approximate multiplier with truncation parameter `t`
/// and optional compensation.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::ScaleTrim;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// // Without compensation the datapath is exact on powers of two
/// // (empty fractions leave only the leading-one term).
/// let m = ScaleTrim::new(16, 4, false)?;
/// assert_eq!(m.multiply(1 << 10, 1 << 3), 1 << 13);
/// // With compensation, Mitchell's −11.1 % corner 6 × 12 = 72 (which
/// // cALM computes as 64) comes back within two ULPs.
/// let c = ScaleTrim::new(16, 4, true)?;
/// assert!(c.multiply(6, 12) >= 70);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaleTrim {
    width: u32,
    truncation: u32,
    compensate: bool,
}

impl ScaleTrim {
    /// Creates a scaleTRIM for `width`-bit operands keeping the top
    /// `truncation = t` fraction bits of each operand for the cross-term
    /// product (the paper sweeps `t ∈ {2, …, 8}`), with the linearized
    /// compensation term on or off.
    ///
    /// # Errors
    ///
    /// Rejects widths outside `4..=64` and `t` outside
    /// `2..=min(8, width − 1)`.
    pub fn new(width: u32, truncation: u32, compensate: bool) -> Result<Self, ConfigError> {
        if !(4..=64).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if !(2..=8).contains(&truncation) || truncation > width - 1 {
            return Err(ConfigError::TruncationTooLarge {
                truncation,
                fraction_bits: width - 1,
                index_bits: 2,
            });
        }
        Ok(ScaleTrim {
            width,
            truncation,
            compensate,
        })
    }

    /// The truncation parameter `t` (cross-term bits kept per operand).
    pub fn truncation(&self) -> u32 {
        self.truncation
    }

    /// Whether the linearized compensation term is enabled.
    pub fn compensate(&self) -> bool {
        self.compensate
    }

    /// The shared datapath: pre-scale mantissa (with `f = N − 1` fraction
    /// bits), accumulated exponent, and `f`. `None` when either operand is
    /// zero (the datapath short-circuits).
    ///
    /// The cross term `x·y` is approximated in units of `2^-(2t+2)`:
    /// `x_a·y_a` contributes `4·pp`, and compensation adds the expected
    /// value of the dropped `x_a·y_l + y_a·x_l + x_l·y_l` terms,
    /// `2(x_a + y_a) + 1` in the same units.
    fn mantissa(&self, a: u64, b: u64) -> Option<(u128, i64, u32)> {
        if a == 0 || b == 0 {
            return None;
        }
        let f = self.width - 1;
        let t = self.truncation;
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let fx = (a - (1u64 << ka)) << (f - ka);
        let fy = (b - (1u64 << kb)) << (f - kb);
        let xa = fx >> (f - t);
        let ya = fy >> (f - t);
        let pp = xa * ya;
        let corr = if self.compensate {
            (pp << 2) + ((xa + ya) << 1) + 1
        } else {
            pp << 2
        };
        let corr_bits = 2 * t + 2;
        let corr_f = if f >= corr_bits {
            (corr as u128) << (f - corr_bits)
        } else {
            (corr as u128) >> (corr_bits - f)
        };
        let mantissa = (1u128 << f) + fx as u128 + fy as u128 + corr_f;
        Some((mantissa, (ka + kb) as i64, f))
    }
}

impl Multiplier for ScaleTrim {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        match self.mantissa(a, b) {
            Some((mantissa, exponent, f)) => {
                mitchell::saturate_product(mitchell::scale(mantissa, exponent, f), self.width)
            }
            None => 0,
        }
    }

    /// The wide path for `N > 32`: same datapath saturated to the true
    /// `2^(2N) − 1` ceiling. Equal to `multiply(a, b) as u128` for every
    /// `N ≤ 32`.
    fn multiply_wide(&self, a: u64, b: u64) -> u128 {
        match self.mantissa(a, b) {
            Some((mantissa, exponent, f)) => {
                mitchell::saturate_product_wide(mitchell::scale(mantissa, exponent, f), self.width)
            }
            None => 0,
        }
    }

    fn name(&self) -> &str {
        "scaleTRIM"
    }

    fn config(&self) -> String {
        let tag = realm_core::multiplier::width_tag(self.width);
        let c = u8::from(self.compensate);
        if tag.is_empty() {
            format!("t={}, c={c}", self.truncation)
        } else {
            format!("{tag}, t={}, c={c}", self.truncation)
        }
    }

    /// Monomorphic batch kernel via `realm_simd::ScaleTrimKernel` (scalar
    /// lanes on every tier; no AVX2 specialization yet). Widths above the
    /// kernel's range fall back to the clamped scalar path per lane.
    fn multiply_batch(&self, pairs: &[(u64, u64)], out: &mut [u64]) {
        if let Some(kernel) =
            realm_simd::ScaleTrimKernel::new(self.width, self.truncation, self.compensate)
        {
            kernel.run(realm_simd::active_tier(), pairs, out);
            return;
        }
        for (slot, (a, b)) in realm_core::batch_lanes(pairs, out) {
            *slot = self.multiply(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn zero_short_circuits() {
        let m = ScaleTrim::new(16, 4, true).unwrap();
        assert_eq!(m.multiply(0, 999), 0);
        assert_eq!(m.multiply(999, 0), 0);
    }

    #[test]
    fn config_validation() {
        assert!(ScaleTrim::new(3, 2, true).is_err());
        assert!(ScaleTrim::new(65, 4, true).is_err());
        assert!(ScaleTrim::new(16, 1, true).is_err());
        assert!(ScaleTrim::new(16, 9, true).is_err());
        assert!(ScaleTrim::new(4, 4, true).is_err()); // t > N − 1
        assert!(ScaleTrim::new(4, 3, true).is_ok());
        assert!(ScaleTrim::new(64, 8, false).is_ok());
    }

    #[test]
    fn beats_mitchell_on_the_worst_case() {
        // 6 × 12 (x = y = 0.5) is Mitchell's −11.1 % corner; scaleTRIM's
        // cross term restores most of it.
        let m = ScaleTrim::new(8, 4, true).unwrap();
        let p = m.multiply(6, 12);
        assert!(p > 64, "got {p}");
        assert!((p as i64 - 72).unsigned_abs() <= 2, "got {p}");
    }

    #[test]
    fn error_tightens_as_t_grows_exhaustive_8bit() {
        let nmed = |t: u32, c: bool| {
            let m = ScaleTrim::new(8, t, c).unwrap();
            let mut sum = 0.0;
            for a in 1..256u64 {
                for b in 1..256u64 {
                    sum += (m.multiply(a, b) as f64 - (a * b) as f64).abs();
                }
            }
            sum / (255.0 * 255.0) / (255.0 * 255.0)
        };
        let (n2, n4, n6) = (nmed(2, true), nmed(4, true), nmed(6, true));
        assert!(n2 > n4 && n4 > n6, "n2={n2} n4={n4} n6={n6}");
    }

    #[test]
    fn compensation_reduces_mean_error_8bit() {
        let mean_abs = |c: bool| {
            let m = ScaleTrim::new(8, 4, c).unwrap();
            let mut sum = 0.0;
            let mut n = 0u64;
            for a in 1..256u64 {
                for b in 1..256u64 {
                    sum += m.relative_error(a, b).unwrap().abs();
                    n += 1;
                }
            }
            sum / n as f64
        };
        assert!(mean_abs(true) < mean_abs(false));
    }

    #[test]
    fn batch_matches_scalar_across_widths() {
        for width in [8u32, 16, 24, 32, 64] {
            let m = ScaleTrim::new(width, 4, true).unwrap();
            let max = m.max_operand();
            let mut pairs: Vec<(u64, u64)> = (0..1024u64)
                .map(|i| {
                    let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & max;
                    let b = i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) & max;
                    (a, b)
                })
                .collect();
            pairs.extend([(0, 0), (0, max), (max, max), (1, 1), (6, 12)]);
            let mut out = vec![0u64; pairs.len()];
            m.multiply_batch(&pairs, &mut out);
            for (&(a, b), &p) in pairs.iter().zip(&out) {
                assert_eq!(p, m.multiply(a, b), "width={width} a={a} b={b}");
            }
        }
    }

    #[test]
    fn wide_path_agrees_with_register_below_33_bits() {
        for width in [8u32, 16, 32] {
            let m = ScaleTrim::new(width, 5, true).unwrap();
            let max = m.max_operand();
            for (a, b) in [(max, max), (max / 3, max / 2), (1, max), (7, 9)] {
                assert_eq!(m.multiply_wide(a, b), m.multiply(a, b) as u128);
            }
        }
    }
}
