//! ALM-MAA and ALM-SOA: the approximate-adder derivatives of Mitchell's
//! multiplier by Liu et al., "Design and evaluation of approximate
//! logarithmic multipliers for low power error-tolerant applications",
//! IEEE TCAS-I 2018 — reference \[9\] of the paper.
//!
//! The only change relative to cALM is the adder that sums the two
//! log-values (characteristic ∥ fraction): its lower `m` bits use one of
//! the approximate schemes of [`crate::adders`], shrinking the adder at
//! the cost of extra (and, for SOA, positively biased) error.

use crate::adders::{approx_add, LowerPart};
use realm_core::mitchell::{self, LogEncoding};
use realm_core::Multiplier;

/// Which approximate adder an [`Alm`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlmAdder {
    /// The MAA variant (approximate-mirror-adder cells; modelled with the
    /// OR-based lower part — see [`crate::adders`] for the rationale).
    Maa,
    /// The set-one-adder variant.
    Soa,
}

impl AlmAdder {
    fn lower_part(self) -> LowerPart {
        match self {
            AlmAdder::Maa => LowerPart::Or,
            AlmAdder::Soa => LowerPart::SetOne,
        }
    }
}

/// An approximate log-based multiplier whose log-sum adder's lower `m`
/// bits are approximate (ALM-MAA / ALM-SOA).
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::{Alm, AlmAdder};
///
/// let alm = Alm::new(16, AlmAdder::Soa, 9);
/// assert_eq!(alm.name(), "ALM-SOA");
/// assert_eq!(alm.config(), "m=9");
/// let _ = alm.multiply(1234, 5678);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alm {
    width: u32,
    adder: AlmAdder,
    lower_bits: u32,
}

impl Alm {
    /// Creates an ALM with the chosen adder type and `m` approximate
    /// lower bits (the paper sweeps `m ∈ {3, 6, 9, 11, 12}` at `N = 16`).
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= width <= 32` and `m < width − 1` (the
    /// approximation must stay inside the fraction field).
    pub fn new(width: u32, adder: AlmAdder, lower_bits: u32) -> Self {
        assert!(
            (4..=32).contains(&width),
            "ALM width must be in 4..=32, got {width}"
        );
        assert!(
            lower_bits < width - 1,
            "approximate lower part ({lower_bits} bits) must stay inside the {}-bit fraction",
            width - 1
        );
        Alm {
            width,
            adder,
            lower_bits,
        }
    }

    /// The adder scheme in use.
    pub fn adder(&self) -> AlmAdder {
        self.adder
    }

    /// Number of approximate lower bits `m`.
    pub fn lower_bits(&self) -> u32 {
        self.lower_bits
    }
}

impl Multiplier for Alm {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (Some(ea), Some(eb)) = (
            LogEncoding::encode(a, self.width),
            LogEncoding::encode(b, self.width),
        ) else {
            return 0;
        };
        let f = self.width - 1;
        // Characteristic ∥ fraction, summed with the approximate adder.
        let la = ((ea.characteristic as u64) << f) | ea.fraction;
        let lb = ((eb.characteristic as u64) << f) | eb.fraction;
        let lsum = approx_add(la, lb, self.lower_bits, self.adder.lower_part());
        let k = (lsum >> f) as i64;
        let frac = lsum & ((1u64 << f) - 1);
        let product = mitchell::scale((1u128 << f) + frac as u128, k, f);
        mitchell::saturate_product(product, self.width)
    }

    fn name(&self) -> &str {
        match self.adder {
            AlmAdder::Maa => "ALM-MAA",
            AlmAdder::Soa => "ALM-SOA",
        }
    }

    fn config(&self) -> String {
        format!("m={}", self.lower_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;
    use realm_core::Multiplier;

    fn sweep_bias_and_peaks(m: &dyn Multiplier) -> (f64, f64, f64) {
        let (mut sum, mut lo, mut hi, mut n) = (0.0, f64::INFINITY, f64::NEG_INFINITY, 0u64);
        for a in (1..65_536u64).step_by(131) {
            for b in (1..65_536u64).step_by(139) {
                let e = m.relative_error(a, b).expect("nonzero");
                sum += e;
                lo = lo.min(e);
                hi = hi.max(e);
                n += 1;
            }
        }
        (sum / n as f64, lo, hi)
    }

    #[test]
    fn maa_small_m_matches_calm_signature() {
        // Table I: ALM-MAA m=3 has bias −3.85 %, max error ≈ 0.
        let alm = Alm::new(16, AlmAdder::Maa, 3);
        let (bias, lo, hi) = sweep_bias_and_peaks(&alm);
        assert!((bias - (-0.0385)).abs() < 0.003, "bias = {bias}");
        assert!(lo > -0.13, "min = {lo}");
        assert!(hi < 0.005, "max = {hi}");
    }

    #[test]
    fn soa_max_error_scales_with_m() {
        // Table I: ALM-SOA max error tracks 2^m / 2^15 — ≈1.56 % at m=9,
        // ≈6.25 % at m=11, ≈12.5 % at m=12 (the set-ones block overshoots
        // by at most 2^m − 1 in the log domain). The published bias also
        // drifts from −3.84 to −1.75 over that sweep; this behavioural
        // model keeps the max-error scaling (what determines the Table I
        // peaks and Fig. 4 Pareto shape) while its bias stays near cALM's —
        // a documented deviation, see EXPERIMENTS.md.
        let m9 = sweep_bias_and_peaks(&Alm::new(16, AlmAdder::Soa, 9));
        let m12 = sweep_bias_and_peaks(&Alm::new(16, AlmAdder::Soa, 12));
        assert!(m9.2 > 0.005 && m9.2 < 0.025, "m=9 max = {}", m9.2);
        assert!(m12.2 > 0.04 && m12.2 < 0.14, "m=12 max = {}", m12.2);
        assert!(
            m12.1 < m9.1,
            "m=12 min {} should be deeper than m=9 min {}",
            m12.1,
            m9.1
        );
        // Bias must never leave the cALM-to-zero corridor.
        for s in [&m9, &m12] {
            assert!(s.0 > -0.045 && s.0 < 0.0, "bias = {}", s.0);
        }
    }

    #[test]
    fn m_zero_equals_calm() {
        let alm = Alm::new(16, AlmAdder::Soa, 0);
        let calm = crate::calm::Calm::new(16);
        for (a, b) in [(6u64, 12u64), (1000, 999), (65_535, 3), (40_000, 40_000)] {
            assert_eq!(alm.multiply(a, b), calm.multiply(a, b), "a={a} b={b}");
        }
    }

    #[test]
    fn zero_short_circuits() {
        assert_eq!(Alm::new(16, AlmAdder::Maa, 6).multiply(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "must stay inside")]
    fn rejects_lower_part_spanning_characteristic() {
        let _ = Alm::new(16, AlmAdder::Soa, 15);
    }
}
