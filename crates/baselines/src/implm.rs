//! ImpLM: the improved logarithmic multiplier of Ansari et al., "A
//! hardware-efficient logarithmic multiplier with improved accuracy",
//! DATE 2019 — reference \[10\] of the paper.
//!
//! ImpLM replaces Mitchell's leading-one detector with a *nearest-one*
//! detector: the characteristic is the power of two **nearest** to the
//! operand instead of the highest one below it, so the fraction becomes a
//! signed value in `[−1/4, +1/2)` and the log approximation error is
//! roughly halved and double-sided. The REALM paper evaluates the "EA"
//! configuration (exact adder), which this model implements.

use realm_core::mitchell;
use realm_core::Multiplier;

/// The ImpLM approximate multiplier (nearest-one characteristic, exact
/// adder — the paper's "EA" configuration).
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::ImpLm;
///
/// let implm = ImpLm::new(16);
/// // 48 is nearer to 64 than to 32: characteristic 6, fraction −0.25.
/// // 48 · 48 → 2^12 · (1 − 0.25 − 0.25) = 2048 … +  antilog handling.
/// let p = implm.multiply(48, 48);
/// let exact = 48 * 48;
/// let rel = (p as f64 - exact as f64) / exact as f64;
/// assert!(rel.abs() < 0.12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImpLm {
    width: u32,
}

impl ImpLm {
    /// Creates an ImpLM for `width`-bit operands.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= width <= 32`.
    pub fn new(width: u32) -> Self {
        assert!(
            (4..=32).contains(&width),
            "ImpLM width must be in 4..=32, got {width}"
        );
        ImpLm { width }
    }

    /// Nearest-one encoding: returns `(characteristic, signed fraction)`
    /// with the fraction in units of `2^-width`.
    ///
    /// For a value with leading one at `k`: if the bit below the leading
    /// one is set (fraction ≥ 0.5), round the characteristic up to `k + 1`
    /// and use the negative fraction `value/2^(k+1) − 1 ∈ [−1/4, 0)`.
    fn encode(&self, value: u64) -> Option<(i64, i64)> {
        if value == 0 {
            return None;
        }
        let f = self.width; // one extra bit so the k = N−1 round-up corner stays exact
        let k = 63 - value.leading_zeros();
        let frac_up = (value - (1u64 << k)) << (f - k); // Mitchell fraction, f bits
        if frac_up >> (f - 1) == 0 {
            // fraction < 0.5 → keep floor characteristic
            Some((k as i64, frac_up as i64))
        } else {
            // round characteristic up; fraction = value/2^(k+1) − 1,
            // exact for every k because f = N gives one spare bit.
            let scaled = value << (f - k - 1);
            Some((k as i64 + 1, scaled as i64 - (1i64 << f)))
        }
    }
}

impl Multiplier for ImpLm {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (Some((ka, xa)), Some((kb, xb))) = (self.encode(a), self.encode(b)) else {
            return 0;
        };
        let f = self.width;
        // C̃ = 2^(ka+kb) · (1 + x + y) with the signed fraction sum in
        // [−1/2, +1); the mantissa stays attached to the summed
        // characteristic (no renormalization — a mantissa below 1 simply
        // shifts further right).
        let mant = (1i64 << f) + xa + xb; // in (2^(f−1), 2^(f+1))
        debug_assert!(mant > 0);
        let product = mitchell::scale(mant as u128, ka + kb, f);
        mitchell::saturate_product(product, self.width)
    }

    fn name(&self) -> &str {
        "ImpLM"
    }

    fn config(&self) -> String {
        "EA".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn encode_rounds_to_nearest_power() {
        let m = ImpLm::new(8);
        // 96 is equidistant-ish: leading one at 6, fraction 0.5 → round up.
        let (k, x) = m.encode(96).unwrap();
        assert_eq!(k, 7);
        assert_eq!(x, -(1i64 << 6)); // −0.25 in 8 fraction bits
                                     // 80: fraction 0.25 < 0.5 → keep floor.
        let (k, x) = m.encode(80).unwrap();
        assert_eq!(k, 6);
        assert_eq!(x, 1i64 << 6); // +0.25
    }

    #[test]
    fn error_is_double_sided_and_bounded_exhaustive_8bit() {
        let m = ImpLm::new(8);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for a in 2..256u64 {
            for b in 2..256u64 {
                let e = m.relative_error(a, b).expect("nonzero");
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        // Table I: min −11.11 %, max +11.11 %.
        assert!(lo >= -0.1112, "min = {lo}");
        assert!(hi <= 0.1112, "max = {hi}");
        assert!(lo < -0.08, "min unexpectedly mild: {lo}");
        assert!(hi > 0.08, "max unexpectedly mild: {hi}");
    }

    #[test]
    fn bias_is_near_zero() {
        // Table I: ImpLM bias −0.04 %.
        let m = ImpLm::new(16);
        let (mut sum, mut n) = (0.0, 0u64);
        for a in (2..65_536u64).step_by(97) {
            for b in (2..65_536u64).step_by(101) {
                sum += m.relative_error(a, b).expect("nonzero");
                n += 1;
            }
        }
        let bias = sum / n as f64;
        assert!(bias.abs() < 0.01, "bias = {bias}");
    }

    #[test]
    fn exact_on_powers_of_two() {
        let m = ImpLm::new(16);
        for (a, b) in [(256u64, 128u64), (1, 32_768), (4, 4)] {
            assert_eq!(m.multiply(a, b), a * b);
        }
    }

    #[test]
    fn tiny_operands_do_not_underflow() {
        let m = ImpLm::new(16);
        // 1 · 1 = 1; nearest-one gives k = 0, x = 0 for both.
        assert_eq!(m.multiply(1, 1), 1);
        assert_eq!(m.multiply(0, 7), 0);
    }
}
