//! # realm-baselines
//!
//! Bit-accurate behavioural implementations of every state-of-the-art
//! approximate multiplier the REALM paper (DATE 2020) compares against in
//! Table I and Table II:
//!
//! | Design | Module | Reference | Knob |
//! |---|---|---|---|
//! | cALM | [`calm`] | Mitchell, IRE Trans. EC 1962 | — |
//! | ALM-MAA / ALM-SOA | [`alm`] | Liu et al., TCAS-I 2018 | `m` (approx. adder LSBs) |
//! | ImpLM | [`implm`] | Ansari et al., DATE 2019 | exact adder ("EA") |
//! | MBM | [`mbm`] | Saadat et al., TCAD 2018 | `t` (fraction truncation) |
//! | DRUM | [`drum`] | Hashemi et al., ICCAD 2015 | `k` (dynamic segment bits) |
//! | SSM / ESSM | [`ssm`] | Narayanamoorthy et al., TVLSI 2015 | `m` (static segment bits) |
//! | AM1 / AM2 | [`am`] | Jiang et al., TCAS-I 2019 | `nb` (error-recovery MSBs) |
//! | IntALP | [`intalp`] | integer ApproxLP (Imani et al., DAC 2019) | `L` (levels) |
//!
//! Two width-generic comparators from later literature extend the zoo
//! beyond the paper's own Table I:
//!
//! | Design | Module | Reference | Knob |
//! |---|---|---|---|
//! | scaleTRIM | [`scaletrim`] | Farahmand et al., arXiv:2303.02495 | `t` (cross-term bits), `c` (compensation) |
//! | ILM | [`ilm`] | Babić et al., MICPRO 2011 | `i` (iterations, 1–2) |
//!
//! All designs implement [`realm_core::Multiplier`], so they plug directly
//! into the `realm-metrics` characterization harness, the `realm-synth`
//! area/power models and the `realm-jpeg` application study.
//!
//! Where a cited paper under-specifies its hardware (AM1/AM2 internals,
//! ApproxLP's selection logic), the module documentation states exactly
//! what was reconstructed and which published error signatures the
//! reconstruction reproduces — the same caveat the REALM authors attach to
//! their own "IntALP\* (inspired by \[11\])".
//!
//! ```
//! use realm_core::Multiplier;
//! use realm_baselines::{Calm, Drum};
//!
//! # fn main() -> Result<(), realm_core::ConfigError> {
//! let calm = Calm::new(16);
//! let drum = Drum::new(16, 6)?;
//! // Mitchell always underestimates; DRUM is unbiased.
//! assert!(calm.multiply(1000, 1000) <= 1_000_000);
//! let _ = drum.multiply(1000, 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adders;
pub mod alm;
pub mod am;
pub mod calm;
pub mod catalog;
pub mod drum;
pub mod ilm;
pub mod implm;
pub mod intalp;
pub mod kulkarni;
pub mod mbm;
pub mod scaletrim;
pub mod ssm;

pub use alm::{Alm, AlmAdder};
pub use am::{Am, AmRecovery};
pub use calm::Calm;
pub use drum::Drum;
pub use ilm::Ilm;
pub use implm::ImpLm;
pub use intalp::IntAlp;
pub use kulkarni::Kulkarni;
pub use mbm::Mbm;
pub use scaletrim::ScaleTrim;
pub use ssm::{Essm8, Ssm};
