//! SSM and ESSM: static segment multipliers of Narayanamoorthy et al.,
//! "Energy-efficient approximate multiplication for digital signal
//! processing and classification applications", IEEE TVLSI 2015 —
//! reference \[14\] of the paper.
//!
//! SSM picks one of **two** static `m`-bit segments per operand — the top
//! `m` bits when the upper part is nonzero, otherwise the bottom `m` bits —
//! and feeds a small exact `m × m` multiplier. ESSM ("extended" SSM) adds
//! an intermediate, overlapping segment position, halving the worst-case
//! truncation. Both simply drop the bits below the chosen segment, so
//! their error is one-sided (never positive).

use realm_core::{ConfigError, Multiplier};

/// The static segment multiplier with segment width `m`.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Ssm;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let ssm = Ssm::new(16, 8)?;
/// // Both operands below 2^8: exact.
/// assert_eq!(ssm.multiply(200, 180), 200 * 180);
/// // Large operands lose their low byte.
/// assert_eq!(ssm.multiply(0x1234, 0x0100), 0x1200 * 0x0100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ssm {
    width: u32,
    segment: u32,
}

impl Ssm {
    /// Creates an SSM for `width`-bit operands with `m = segment`-bit
    /// segments (the paper sweeps `m ∈ {8, 9, 10}` at `N = 16`).
    ///
    /// # Errors
    ///
    /// Rejects widths outside `4..=32` and segments outside
    /// `width/2 ..= width − 1`.
    pub fn new(width: u32, segment: u32) -> Result<Self, ConfigError> {
        if !(4..=32).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if segment < width / 2 || segment >= width {
            return Err(ConfigError::TruncationTooLarge {
                truncation: segment,
                fraction_bits: width,
                index_bits: width / 2,
            });
        }
        Ok(Ssm { width, segment })
    }

    /// Segment width `m`.
    pub fn segment(&self) -> u32 {
        self.segment
    }

    fn truncate_operand(&self, v: u64) -> u64 {
        if v >> self.segment == 0 {
            v // lower segment: exact
        } else {
            let shift = self.width - self.segment;
            (v >> shift) << shift // upper segment, low bits dropped
        }
    }
}

impl Multiplier for Ssm {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.truncate_operand(a) * self.truncate_operand(b)
    }

    fn name(&self) -> &str {
        "SSM"
    }

    fn config(&self) -> String {
        format!("m={}", self.segment)
    }
}

/// The extended static segment multiplier with 8-bit segments for 16-bit
/// operands ("ESSM8" in Table I): three segment positions —
/// `[15:8]`, `[11:4]`, `[7:0]` — chosen by the leading-one region.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Essm8;
///
/// let essm = Essm8::new();
/// // Leading one in [11:8] picks the middle segment: only bits [3:0] drop.
/// assert_eq!(essm.multiply(0x0ABC, 1), 0x0AB0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Essm8;

impl Essm8 {
    /// Creates the 16-bit ESSM8.
    pub fn new() -> Self {
        Essm8
    }

    fn truncate_operand(v: u64) -> u64 {
        if v >> 12 != 0 {
            (v >> 8) << 8 // segment [15:8]
        } else if v >> 8 != 0 {
            (v >> 4) << 4 // segment [11:4]
        } else {
            v // segment [7:0]: exact
        }
    }
}

impl Multiplier for Essm8 {
    fn width(&self) -> u32 {
        16
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        Essm8::truncate_operand(a) * Essm8::truncate_operand(b)
    }

    fn name(&self) -> &str {
        "ESSM8"
    }

    fn config(&self) -> String {
        "m=8".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn ssm_error_is_one_sided() {
        let m = Ssm::new(16, 8).unwrap();
        for a in (1..65_536u64).step_by(173) {
            for b in (1..65_536u64).step_by(181) {
                let e = m.relative_error(a, b).expect("nonzero");
                assert!(e <= 0.0, "positive error at ({a}, {b}): {e}");
            }
        }
    }

    #[test]
    fn ssm_worst_case_grows_as_m_shrinks() {
        // Table I minima: m=10 → −10.26 %, m=9 → −34.27 %, m=8 → −72.70 %.
        let worst = |seg: u32| {
            let m = Ssm::new(16, seg).unwrap();
            let mut lo = 0.0f64;
            for a in (1..65_536u64).step_by(37) {
                for b in (1..65_536u64).step_by(41) {
                    lo = lo.min(m.relative_error(a, b).expect("nonzero"));
                }
            }
            lo
        };
        let (w10, w9, w8) = (worst(10), worst(9), worst(8));
        assert!(w10 > -0.125 && w10 < -0.07, "w10 = {w10}");
        assert!(w9 > -0.40 && w9 < -0.25, "w9 = {w9}");
        assert!(w8 > -0.80 && w8 < -0.60, "w8 = {w8}");
    }

    #[test]
    fn essm_bounds_worst_case_better_than_ssm8() {
        // Table I: ESSM8 min −11.26 % vs SSM8's −72.70 %.
        let essm = Essm8::new();
        let mut lo = 0.0f64;
        for a in (1..65_536u64).step_by(37) {
            for b in (1..65_536u64).step_by(41) {
                let e = essm.relative_error(a, b).expect("nonzero");
                assert!(e <= 0.0, "positive error at ({a}, {b})");
                lo = lo.min(e);
            }
        }
        assert!(lo > -0.12 && lo < -0.08, "min = {lo}");
    }

    #[test]
    fn small_operands_exact_for_both() {
        let ssm = Ssm::new(16, 8).unwrap();
        let essm = Essm8::new();
        for a in [0u64, 1, 17, 255] {
            for b in [0u64, 3, 128, 255] {
                assert_eq!(ssm.multiply(a, b), a * b);
                assert_eq!(essm.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn ssm_validation() {
        assert!(Ssm::new(16, 7).is_err());
        assert!(Ssm::new(16, 16).is_err());
        assert!(Ssm::new(16, 8).is_ok());
    }
}
