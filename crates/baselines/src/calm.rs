//! The classical approximate log-based multiplier (cALM) of Mitchell,
//! "Computer multiplication and division using binary logarithms",
//! IRE Trans. Electronic Computers, 1962 — reference \[8\] of the paper.
//!
//! cALM is the ancestor of the whole family: encode both operands with the
//! linear log approximation, add, and take the antilog (paper Eq. 1–3).
//! Its relative error is one-sided — always in `(−11.11 %, 0]` — which is
//! exactly the bias REALM's per-segment factors remove.

use realm_core::mitchell::{self, LogEncoding};
use realm_core::Multiplier;

/// Mitchell's classical approximate log-based multiplier.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Calm;
///
/// let calm = Calm::new(8);
/// // 6 = 2^2·1.5, 12 = 2^3·1.5: x + y carries, product = 2^6 · 1.0 = 64
/// // against the exact 72 — the classic −11.1 % worst case.
/// assert_eq!(calm.multiply(6, 12), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Calm {
    width: u32,
}

impl Calm {
    /// Creates a cALM for `width`-bit operands.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= width <= 64`.
    pub fn new(width: u32) -> Self {
        assert!(
            (4..=64).contains(&width),
            "cALM width must be in 4..=64, got {width}"
        );
        Calm { width }
    }
}

impl Default for Calm {
    fn default() -> Self {
        Calm::new(16)
    }
}

impl Multiplier for Calm {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (Some(ea), Some(eb)) = (
            LogEncoding::encode(a, self.width),
            LogEncoding::encode(b, self.width),
        ) else {
            return 0;
        };
        mitchell::log_mul(&ea, &eb, 0, 6, self.width)
    }

    fn name(&self) -> &str {
        "cALM"
    }

    fn config(&self) -> String {
        realm_core::multiplier::width_tag(self.width)
    }

    /// The wide path for `N > 32`: same encode → log-add datapath,
    /// saturated to the true `2^(2N) − 1` ceiling. Equal to
    /// `multiply(a, b) as u128` for every `N ≤ 32`.
    fn multiply_wide(&self, a: u64, b: u64) -> u128 {
        let (Some(ea), Some(eb)) = (
            LogEncoding::encode(a, self.width),
            LogEncoding::encode(b, self.width),
        ) else {
            return 0;
        };
        mitchell::log_mul_wide(&ea, &eb, 0, 6, self.width)
    }

    /// Monomorphic batch kernel: encode → log-add inlined with the fraction
    /// width hoisted out of the loop; bit-identical to the scalar path
    /// (cALM is `log_mul` with a zero correction, so the correction terms
    /// vanish entirely).
    fn multiply_batch(&self, pairs: &[(u64, u64)], out: &mut [u64]) {
        let width = self.width;
        let f = width - 1;
        // Narrow fast path (width ≤ 31): mantissa < 2^(f+1) and the
        // scale shift is at most 2·width − 1 − f, so everything fits in
        // u64. The loop body is `realm_simd::CalmKernel::lane` (this
        // crate's former monomorphic loop verbatim), giving the scalar
        // and AVX2 tiers one shared source of truth.
        if let Some(kernel) = realm_simd::CalmKernel::new(width) {
            kernel.run(realm_simd::active_tier(), pairs, out);
            return;
        }
        for (slot, (a, b)) in realm_core::batch_lanes(pairs, out) {
            if a == 0 || b == 0 {
                *slot = 0;
                continue;
            }
            let ka = 63 - a.leading_zeros();
            let kb = 63 - b.leading_zeros();
            let fa = (a - (1u64 << ka)) << (f - ka);
            let fb = (b - (1u64 << kb)) << (f - kb);
            let fsum = fa + fb;
            let k_sum = (ka + kb) as i64;
            let (mantissa, exponent) = if fsum >> f == 0 {
                ((1u128 << f) + fsum as u128, k_sum)
            } else {
                (fsum as u128, k_sum + 1)
            };
            *slot = mitchell::saturate_product(mitchell::scale(mantissa, exponent, f), width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn exact_on_powers_of_two() {
        let m = Calm::new(16);
        for ka in 0..16 {
            for kb in 0..16 {
                let (a, b) = (1u64 << ka, 1u64 << kb);
                assert_eq!(m.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn error_is_one_sided_and_bounded_exhaustive_8bit() {
        let m = Calm::new(8);
        for a in 1..256u64 {
            for b in 1..256u64 {
                let e = m.relative_error(a, b).expect("nonzero");
                assert!(e <= 0.0, "positive error at ({a}, {b}): {e}");
                assert!(
                    e >= -1.0 / 9.0 - 1e-12,
                    "error beyond −11.1 % at ({a}, {b}): {e}"
                );
            }
        }
    }

    #[test]
    fn bias_matches_paper_minus_3_85_percent() {
        // Table I reports error bias −3.85 % for cALM; a strided sweep of
        // the 16-bit space should land close.
        let m = Calm::new(16);
        let mut sum = 0.0;
        let mut n = 0u64;
        for a in (1..65_536u64).step_by(113) {
            for b in (1..65_536u64).step_by(127) {
                sum += m.relative_error(a, b).expect("nonzero");
                n += 1;
            }
        }
        let bias = sum / n as f64;
        assert!((bias - (-0.0385)).abs() < 0.002, "bias = {bias}");
    }

    #[test]
    fn zero_short_circuits() {
        assert_eq!(Calm::new(16).multiply(0, 999), 0);
    }

    #[test]
    fn batch_kernel_matches_scalar() {
        for width in [8u32, 16, 32] {
            let m = Calm::new(width);
            let max = (1u64 << width) - 1;
            let mut pairs: Vec<(u64, u64)> = (0..4096u64)
                .map(|i| {
                    let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (max + 1);
                    let b = i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) % (max + 1);
                    (a, b)
                })
                .collect();
            pairs.extend([(0, 0), (0, max), (max, max), (1, 1), (6, 12)]);
            let mut out = vec![0u64; pairs.len()];
            m.multiply_batch(&pairs, &mut out);
            for (&(a, b), &p) in pairs.iter().zip(&out) {
                assert_eq!(p, m.multiply(a, b), "width={width} a={a} b={b}");
            }
        }
    }
}
