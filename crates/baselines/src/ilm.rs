//! The iterative logarithmic multiplier (ILM) of Babić, Avramović and
//! Bulić, "An iterative logarithmic multiplier", Microprocessors and
//! Microsystems 2011 — the two-iteration variant whose reference C model
//! circulates as `RatkoFri/Bfloat16/ILM.c`.
//!
//! One iteration is the leading-one decomposition of both operands,
//! `A·B = (2^ka + A')(2^kb + B') ≈ A·2^kb + B'·2^ka`, which drops only
//! the residue product `A'·B'`. Each further iteration re-applies the
//! same decomposition to the residues, adding back an approximation of
//! the term the previous one dropped. The approximation therefore never
//! overestimates, and becomes exact whenever a residue reaches zero.

use realm_core::mitchell;
use realm_core::{ConfigError, Multiplier};

/// The iterative logarithmic multiplier with 1 or 2 iterations.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Ilm;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let m = Ilm::new(8, 2)?;
/// // 6 × 12: iteration 1 gives 64, iteration 2 restores the residue
/// // product 2 × 4 exactly → 72, the exact result.
/// assert_eq!(m.multiply(6, 12), 72);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ilm {
    width: u32,
    iterations: u32,
}

impl Ilm {
    /// Creates an ILM for `width`-bit operands running `iterations`
    /// basic blocks (the reference model supports one or two).
    ///
    /// # Errors
    ///
    /// Rejects widths outside `4..=64` and iteration counts outside
    /// `1..=2`.
    pub fn new(width: u32, iterations: u32) -> Result<Self, ConfigError> {
        if !(4..=64).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if !(1..=2).contains(&iterations) {
            return Err(ConfigError::InvalidIterations { iterations });
        }
        Ok(Ilm { width, iterations })
    }

    /// Number of basic-block iterations (1 or 2).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// The full product approximation in `u128` (never exceeds the exact
    /// `2N`-bit product, so no saturation is ever needed).
    fn approx(&self, a: u64, b: u64) -> u128 {
        if a == 0 || b == 0 {
            return 0;
        }
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let res_a = a ^ (1u64 << ka);
        let res_b = b ^ (1u64 << kb);
        let mut p = ((a as u128) << kb) + ((res_b as u128) << ka);
        // Second basic block, re-decomposing the residues; the reference
        // C model leaves LOD(0) undefined, so it is guarded out (a zero
        // residue means the first iteration was already exact).
        if self.iterations == 2 && res_a != 0 && res_b != 0 {
            let ka2 = 63 - res_a.leading_zeros();
            let kb2 = 63 - res_b.leading_zeros();
            let res2_b = res_b ^ (1u64 << kb2);
            p += ((res_a as u128) << kb2) + ((res2_b as u128) << ka2);
        }
        p
    }
}

impl Multiplier for Ilm {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        // The approximation is bounded by the exact product, so only the
        // 64-bit register clamp (widths > 32) can ever bite.
        mitchell::saturate_product(self.approx(a, b), self.width)
    }

    /// The wide path for `N > 32`: the approximation is at most the exact
    /// `2N`-bit product, hence exact in `u128`.
    fn multiply_wide(&self, a: u64, b: u64) -> u128 {
        self.approx(a, b)
    }

    fn name(&self) -> &str {
        "ILM"
    }

    fn config(&self) -> String {
        let tag = realm_core::multiplier::width_tag(self.width);
        if tag.is_empty() {
            format!("i={}", self.iterations)
        } else {
            format!("{tag}, i={}", self.iterations)
        }
    }

    /// Monomorphic batch kernel via `realm_simd::IlmKernel` (scalar lanes
    /// on every tier; no AVX2 specialization yet). Widths above the
    /// kernel's range fall back to the clamped scalar path per lane.
    fn multiply_batch(&self, pairs: &[(u64, u64)], out: &mut [u64]) {
        if let Some(kernel) = realm_simd::IlmKernel::new(self.width, self.iterations) {
            kernel.run(realm_simd::active_tier(), pairs, out);
            return;
        }
        for (slot, (a, b)) in realm_core::batch_lanes(pairs, out) {
            *slot = self.multiply(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn zero_short_circuits() {
        let m = Ilm::new(16, 2).unwrap();
        assert_eq!(m.multiply(0, 4321), 0);
        assert_eq!(m.multiply(4321, 0), 0);
    }

    #[test]
    fn config_validation() {
        assert!(Ilm::new(3, 2).is_err());
        assert!(Ilm::new(65, 2).is_err());
        assert!(Ilm::new(16, 0).is_err());
        assert!(Ilm::new(16, 3).is_err());
        assert!(Ilm::new(64, 1).is_ok());
    }

    #[test]
    fn exact_on_powers_of_two() {
        let m = Ilm::new(16, 1).unwrap();
        for ka in 0..16 {
            for kb in 0..16 {
                let (a, b) = (1u64 << ka, 1u64 << kb);
                assert_eq!(m.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn never_overestimates_exhaustive_8bit() {
        for iterations in [1, 2] {
            let m = Ilm::new(8, iterations).unwrap();
            for a in 0..256u64 {
                for b in 0..256u64 {
                    assert!(
                        m.multiply(a, b) <= a * b,
                        "i={iterations} a={a} b={b}: {} > {}",
                        m.multiply(a, b),
                        a * b
                    );
                }
            }
        }
    }

    #[test]
    fn second_iteration_restores_the_residue_product_bound() {
        // One iteration drops A'·B'; two iterations drop only the second-
        // level residue product, so i=2 is always at least as accurate.
        let one = Ilm::new(8, 1).unwrap();
        let two = Ilm::new(8, 2).unwrap();
        for a in 1..256u64 {
            for b in 1..256u64 {
                assert!(two.multiply(a, b) >= one.multiply(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn matches_reference_c_model_spot_values() {
        // Hand-evaluated against the RatkoFri/Bfloat16 ILM.c model
        // (second iteration guarded on nonzero residues).
        let m = Ilm::new(8, 2).unwrap();
        // 6 = 2^2 + 2, 12 = 2^3 + 4: prod0 = 6·8 + 4·4 = 64,
        // prod1 = 2·4 + 0·2 = 8 → 72 (exact).
        assert_eq!(m.multiply(6, 12), 72);
        // 255 × 255: prod0 = 255·128 + 127·128 = 48 896,
        // residues 127/127: prod1 = 127·64 + 63·64 = 12 160 → 61 056.
        assert_eq!(m.multiply(255, 255), 61_056);
        // Exact when the second-level residue vanishes: 160 × 5 = 800.
        // 160 = 2^7 + 32, 5 = 2^2 + 1: prod0 = 160·4 + 1·128 = 768,
        // residues 32 and 1: prod1 = 32·2^0 + 0·2^5 = 32 → 800.
        assert_eq!(m.multiply(160, 5), 800);
    }

    #[test]
    fn batch_matches_scalar_across_widths() {
        for width in [8u32, 16, 24, 32, 64] {
            let m = Ilm::new(width, 2).unwrap();
            let max = m.max_operand();
            let mut pairs: Vec<(u64, u64)> = (0..1024u64)
                .map(|i| {
                    let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & max;
                    let b = i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) & max;
                    (a, b)
                })
                .collect();
            pairs.extend([(0, 0), (0, max), (max, max), (1, 1), (6, 12)]);
            let mut out = vec![0u64; pairs.len()];
            m.multiply_batch(&pairs, &mut out);
            for (&(a, b), &p) in pairs.iter().zip(&out) {
                assert_eq!(p, m.multiply(a, b), "width={width} a={a} b={b}");
            }
        }
    }

    #[test]
    fn wide_path_agrees_with_register_below_33_bits() {
        for width in [8u32, 16, 32] {
            let m = Ilm::new(width, 2).unwrap();
            let max = m.max_operand();
            for (a, b) in [(max, max), (max / 3, max / 2), (1, max), (6, 12)] {
                assert_eq!(m.multiply_wide(a, b), m.multiply(a, b) as u128);
            }
        }
    }
}
