//! IntALP: an integer version of ApproxLP (Imani et al., "ApproxLP:
//! Approximate multiplication with linearization and iterative error
//! control", DAC 2019 — reference \[11\] of the paper).
//!
//! # Reconstruction notes
//!
//! ApproxLP is a floating-point mantissa multiplier that approximates the
//! product surface `(1+x)(1+y)` with piecewise linear planes plus
//! iterative plane corrections; its paper "does not report any
//! mathematical formulation" (REALM §II), so the REALM authors built their
//! own integer version ("IntALP\*, inspired by \[11\]") and so do we:
//!
//! * **Level 1** approximates the fraction product `x·y` with one upper-
//!   bounding plane per side of the carry diagonal:
//!   `xy ≈ (x+y)/4` for `x + y < 1` and `xy ≈ 3(x+y)/4 − 1/2` otherwise.
//!   Both planes dominate `xy` (AM–GM), so the error is one-sided in
//!   `[0, +12.5 %]` — matching Table I's IntALP L=1 row (min 0.00,
//!   max 12.50, bias +3.91).
//! * **Level 2** subtracts a least-squares plane fit of the level-1
//!   residual in each quadrant of the unit square (quadrants are selected
//!   by the fraction MSBs, the comparator structure ApproxLP uses for its
//!   iterative error control). Plane coefficients are quantized to 8
//!   fractional bits; evaluating them needs two constant multipliers,
//!   which is why the paper's IntALP L=2 row shows markedly lower
//!   area/power savings than the log-based designs.

use realm_core::mitchell::{self, LogEncoding};
use realm_core::quad::adaptive_simpson_2d;
use realm_core::{ConfigError, Multiplier};

/// Fractional precision of the quantized level-2 plane coefficients.
const COEFF_BITS: u32 = 8;

/// A quantized correction plane `α + βx + γy` (coefficients in units of
/// `2^-COEFF_BITS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Plane {
    alpha: i64,
    beta: i64,
    gamma: i64,
}

impl Plane {
    /// Least-squares fit of `f` over the box, then coefficient
    /// quantization.
    fn fit<F: Fn(f64, f64) -> f64>(f: F, x0: f64, x1: f64, y0: f64, y1: f64) -> Plane {
        let tol = 1e-10;
        let int = |g: &dyn Fn(f64, f64) -> f64| adaptive_simpson_2d(&g, x0, x1, y0, y1, tol);
        // Normal equations for the basis {1, x, y}.
        let a = [
            [int(&|_, _| 1.0), int(&|x, _| x), int(&|_, y| y)],
            [int(&|x, _| x), int(&|x, _| x * x), int(&|x, y| x * y)],
            [int(&|_, y| y), int(&|x, y| x * y), int(&|_, y| y * y)],
        ];
        let b = [
            int(&|x, y| f(x, y)),
            int(&|x, y| x * f(x, y)),
            int(&|x, y| y * f(x, y)),
        ];
        let sol = solve3(a, b);
        let q = |v: f64| (v * (1u64 << COEFF_BITS) as f64).round() as i64;
        Plane {
            alpha: q(sol[0]),
            beta: q(sol[1]),
            gamma: q(sol[2]),
        }
    }

    /// Evaluates the plane at fixed-point fractions with `f` fraction
    /// bits, returning the result in the same `f`-bit scale.
    ///
    /// Terms are computed in sign-magnitude form (shift-add on the
    /// coefficient magnitude, sign applied afterwards) so the behavioural
    /// model is bit-identical to the constant-multiplier hardware in
    /// `realm-synth`.
    fn eval_fixed(&self, x: u64, y: u64, f: u32) -> i64 {
        let term = |coeff: i64, v: u64| -> i64 {
            let mag = ((coeff.unsigned_abs() * v) >> COEFF_BITS) as i64;
            if coeff < 0 {
                -mag
            } else {
                mag
            }
        };
        let alpha_f = {
            let mag = if f >= COEFF_BITS {
                (self.alpha.unsigned_abs() << (f - COEFF_BITS)) as i64
            } else {
                (self.alpha.unsigned_abs() >> (COEFF_BITS - f)) as i64
            };
            if self.alpha < 0 {
                -mag
            } else {
                mag
            }
        };
        alpha_f + term(self.beta, x) + term(self.gamma, y)
    }
}

/// Gaussian elimination for the 3×3 normal equations.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Partial pivoting.
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        for row in (col + 1)..3 {
            let factor = a[row][col] / d;
            let pivot_row = a[col];
            for (cell, pivot) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut v = b[row];
        for k in (row + 1)..3 {
            v -= a[row][k] * x[k];
        }
        x[row] = v / a[row][row];
    }
    x
}

/// Level-1 residual `p(x, y) − x·y` (always in `[0, 1/4]`).
fn level1_residual(x: f64, y: f64) -> f64 {
    let p = if x + y < 1.0 {
        (x + y) / 4.0
    } else {
        0.75 * (x + y) - 0.5
    };
    p - x * y
}

/// The IntALP approximate multiplier with `L ∈ {1, 2}` correction levels.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::IntAlp;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let l1 = IntAlp::new(16, 1)?;
/// // Level 1 never underestimates.
/// assert!(l1.multiply(40_000, 50_000) >= (40_000u64 * 50_000) * 99 / 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntAlp {
    width: u32,
    level: u32,
    /// Quadrant correction planes (row-major by x-MSB then y-MSB); empty
    /// for level 1.
    planes: Vec<Plane>,
}

impl IntAlp {
    /// Creates an IntALP for `width`-bit operands with `level ∈ {1, 2}`.
    ///
    /// # Errors
    ///
    /// Rejects unsupported widths and levels outside `1..=2`.
    pub fn new(width: u32, level: u32) -> Result<Self, ConfigError> {
        if !(4..=32).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if !(1..=2).contains(&level) {
            return Err(ConfigError::InvalidSegmentCount { segments: level });
        }
        let planes = if level == 2 {
            let mut planes = Vec::with_capacity(4);
            for u in 0..2 {
                for v in 0..2 {
                    let (x0, x1) = (u as f64 * 0.5, (u as f64 + 1.0) * 0.5);
                    let (y0, y1) = (v as f64 * 0.5, (v as f64 + 1.0) * 0.5);
                    planes.push(Plane::fit(level1_residual, x0, x1, y0, y1));
                }
            }
            planes
        } else {
            Vec::new()
        };
        Ok(IntAlp {
            width,
            level,
            planes,
        })
    }

    /// The correction level `L`.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The quantized level-2 plane coefficients `(α, β, γ)` per quadrant
    /// (row-major by x-MSB then y-MSB; empty for level 1), in units of
    /// `2^-8`. Exposed for the `realm-synth` constant-multiplier netlists.
    pub fn plane_coefficients(&self) -> Vec<(i64, i64, i64)> {
        self.planes
            .iter()
            .map(|p| (p.alpha, p.beta, p.gamma))
            .collect()
    }

    /// Fractional precision of the plane coefficients (`2^-8`).
    pub fn coefficient_bits() -> u32 {
        COEFF_BITS
    }
}

impl Multiplier for IntAlp {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (Some(ea), Some(eb)) = (
            LogEncoding::encode(a, self.width),
            LogEncoding::encode(b, self.width),
        ) else {
            return 0;
        };
        let f = self.width - 1;
        let fsum = ea.fraction + eb.fraction;
        // Level-1 plane approximation of x·y.
        let p = if fsum >> f == 0 {
            (fsum >> 2) as i64
        } else {
            ((3 * fsum) >> 2) as i64 - (1i64 << (f - 1))
        };
        let mut mant = (1i64 << f) + fsum as i64 + p;
        if self.level == 2 {
            let u = (ea.fraction >> (f - 1)) as usize;
            let v = (eb.fraction >> (f - 1)) as usize;
            mant -= self.planes[u * 2 + v].eval_fixed(ea.fraction, eb.fraction, f);
        }
        // The exact mantissa (1+x)(1+y) is never below 1, so a level-2
        // correction that pushes the approximate mantissa under 1.0 is pure
        // overshoot; clamping it is the analogue of REALM's small-product
        // special-case logic (without it, tiny operands floor to zero and
        // the peak error explodes to −100 %).
        let mant = mant.max(1i64 << f) as u128;
        let exponent = (ea.characteristic + eb.characteristic) as i64;
        mitchell::saturate_product(mitchell::scale(mant, exponent, f), self.width)
    }

    fn name(&self) -> &str {
        "IntALP"
    }

    fn config(&self) -> String {
        format!("L={}", self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn level1_residual_is_nonnegative_and_bounded() {
        for i in 0..=64 {
            for j in 0..=64 {
                let (x, y) = (i as f64 / 64.0, j as f64 / 64.0);
                let e = level1_residual(x, y);
                assert!(e >= -1e-12, "negative residual at ({x}, {y}): {e}");
                assert!(e <= 0.25 + 1e-12, "residual too large at ({x}, {y}): {e}");
            }
        }
    }

    #[test]
    fn level1_error_is_one_sided_with_12_5_percent_peak() {
        // Table I IntALP L=1: min 0.00, max +12.50, bias +3.91.
        let m = IntAlp::new(16, 1).unwrap();
        let (mut lo, mut hi, mut sum, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0u64);
        for a in (1..65_536u64).step_by(73) {
            for b in (1..65_536u64).step_by(79) {
                let e = m.relative_error(a, b).expect("nonzero");
                lo = lo.min(e);
                hi = hi.max(e);
                sum += e;
                n += 1;
            }
        }
        assert!(lo >= -1e-4, "min = {lo}");
        assert!(hi <= 0.1251, "max = {hi}");
        assert!(hi > 0.10, "max unexpectedly mild: {hi}");
        let bias = sum / n as f64;
        assert!((bias - 0.0391).abs() < 0.006, "bias = {bias}");
    }

    #[test]
    fn level2_shrinks_error_substantially() {
        // Table I IntALP L=2: ME 0.99 %, bias 0.03 %, peaks −2.86/+4.17.
        let l1 = IntAlp::new(16, 1).unwrap();
        let l2 = IntAlp::new(16, 2).unwrap();
        let stats = |m: &IntAlp| {
            let (mut lo, mut hi, mut abs, mut sum, mut n) =
                (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0.0, 0u64);
            for a in (1..65_536u64).step_by(73) {
                for b in (1..65_536u64).step_by(79) {
                    let e = m.relative_error(a, b).expect("nonzero");
                    lo = lo.min(e);
                    hi = hi.max(e);
                    abs += e.abs();
                    sum += e;
                    n += 1;
                }
            }
            (lo, hi, abs / n as f64, sum / n as f64)
        };
        let s1 = stats(&l1);
        let s2 = stats(&l2);
        assert!(
            s2.2 < s1.2 / 2.0,
            "L2 mean {} not well below L1 mean {}",
            s2.2,
            s1.2
        );
        assert!(s2.3.abs() < 0.01, "L2 bias {}", s2.3);
        assert!(s2.0 > -0.06 && s2.1 < 0.07, "L2 peaks ({}, {})", s2.0, s2.1);
    }

    #[test]
    fn exact_on_powers_of_two_l1() {
        let m = IntAlp::new(16, 1).unwrap();
        for (a, b) in [(1024u64, 512u64), (1, 1), (32_768, 2)] {
            assert_eq!(m.multiply(a, b), a * b);
        }
    }

    #[test]
    fn validation() {
        assert!(IntAlp::new(16, 0).is_err());
        assert!(IntAlp::new(16, 3).is_err());
        assert!(IntAlp::new(2, 1).is_err());
    }

    #[test]
    fn solve3_recovers_known_solution() {
        let a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        // x = (1, 2, 3) → b = (4, 10, 14)
        let b = [4.0, 10.0, 14.0];
        let x = solve3(a, b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }
}
