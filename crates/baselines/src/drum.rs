//! DRUM: the dynamic range unbiased multiplier of Hashemi et al.,
//! "DRUM: A dynamic range unbiased multiplier for approximate
//! applications", ICCAD 2015 — reference \[3\] of the paper.
//!
//! DRUM extracts a `k`-bit fragment starting at each operand's leading
//! one, forces the fragment's LSB to 1 (the unbiasing trick REALM's `t`
//! knob borrows), multiplies the fragments exactly with a small `k × k`
//! multiplier, and shifts the result back into place. Operands that
//! already fit in `k` bits pass through unmodified, so small products are
//! exact.

use realm_core::{ConfigError, Multiplier};

/// The DRUM approximate multiplier with fragment width `k`.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Drum;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let drum = Drum::new(16, 6)?;
/// // Small operands are exact.
/// assert_eq!(drum.multiply(31, 63), 31 * 63);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Drum {
    width: u32,
    fragment: u32,
}

impl Drum {
    /// Creates a DRUM for `width`-bit operands with `k = fragment` bits
    /// (the paper sweeps `k ∈ {4, …, 8}` at `N = 16`).
    ///
    /// # Errors
    ///
    /// Rejects widths outside `4..=64` and fragments outside
    /// `3..=width`.
    pub fn new(width: u32, fragment: u32) -> Result<Self, ConfigError> {
        if !(4..=64).contains(&width) {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        if fragment < 3 || fragment > width {
            return Err(ConfigError::TruncationTooLarge {
                truncation: fragment,
                fraction_bits: width,
                index_bits: 3,
            });
        }
        Ok(Drum { width, fragment })
    }

    /// The fragment width `k`.
    pub fn fragment(&self) -> u32 {
        self.fragment
    }

    /// Approximates one operand: leading-`k`-bit fragment with forced LSB,
    /// zero-padded back to full width.
    fn approximate_operand(&self, v: u64) -> u64 {
        if v == 0 {
            return 0;
        }
        let p = 63 - v.leading_zeros();
        if p < self.fragment {
            return v; // fits in k bits: exact
        }
        let shift = p - self.fragment + 1;
        ((v >> shift) | 1) << shift
    }
}

impl Multiplier for Drum {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        let a = self.approximate_operand(a);
        let b = self.approximate_operand(b);
        // The k×k core plus the two barrel shifts; behaviourally a product
        // of the approximated operands (cannot exceed 2N bits). For
        // N ≤ 32 that fits the 64-bit register exactly; wider products
        // clamp to it (the full value is multiply_wide's).
        if self.width <= 32 {
            a * b
        } else {
            realm_core::mitchell::saturate_product(a as u128 * b as u128, self.width)
        }
    }

    /// The wide path for `N > 32`: the product of the approximated
    /// operands never exceeds `2N` bits, so it is exact in `u128`.
    fn multiply_wide(&self, a: u64, b: u64) -> u128 {
        let a = self.approximate_operand(a) as u128;
        let b = self.approximate_operand(b) as u128;
        a * b
    }

    fn name(&self) -> &str {
        "DRUM"
    }

    fn config(&self) -> String {
        let tag = realm_core::multiplier::width_tag(self.width);
        if tag.is_empty() {
            format!("k={}", self.fragment)
        } else {
            format!("{tag}, k={}", self.fragment)
        }
    }

    /// Monomorphic batch kernel: the fragment width is hoisted out of the
    /// loop and the operand approximation inlined, avoiding per-sample
    /// virtual dispatch in Table I catalog sweeps. Products of the
    /// approximated operands cannot exceed `2N ≤ 64` bits, so plain `u64`
    /// arithmetic suffices at every supported width. Bit-identical to the
    /// scalar path — the tests exhaustively cross-check.
    fn multiply_batch(&self, pairs: &[(u64, u64)], out: &mut [u64]) {
        // The loop body is `realm_simd::DrumKernel::lane` (this crate's
        // former monomorphic loop verbatim), so the scalar and AVX2
        // tiers share one source of truth.
        if let Some(kernel) = realm_simd::DrumKernel::new(self.width, self.fragment) {
            kernel.run(realm_simd::active_tier(), pairs, out);
            return;
        }
        let (k, width) = (self.fragment, self.width);
        for (slot, (a, b)) in realm_core::batch_lanes(pairs, out) {
            if a == 0 || b == 0 {
                *slot = 0;
                continue;
            }
            let pa = 63 - a.leading_zeros();
            let a = if pa < k {
                a
            } else {
                let shift = pa - k + 1;
                ((a >> shift) | 1) << shift
            };
            let pb = 63 - b.leading_zeros();
            let b = if pb < k {
                b
            } else {
                let shift = pb - k + 1;
                ((b >> shift) | 1) << shift
            };
            // Wide widths (33..=64) are the only way here past the
            // kernel; clamp exactly as the scalar path does.
            *slot = realm_core::mitchell::saturate_product(a as u128 * b as u128, width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn small_operands_are_exact() {
        let m = Drum::new(16, 6).unwrap();
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert_eq!(m.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn operand_approximation_keeps_leading_bits() {
        let m = Drum::new(16, 6).unwrap();
        // 0b1011_0110_1101 (2925): leading 6 bits 101101, LSB forced:
        // 101101 | 1 = 101101 → restore shift of 6.
        assert_eq!(
            m.approximate_operand(0b1011_0110_1101),
            0b1011_0100_0000 | (1 << 6)
        );
    }

    #[test]
    fn error_bounds_match_k8_exhaustive_slice() {
        // Table I DRUM k=8: min −1.49 %, max +1.57 %.
        let m = Drum::new(16, 8).unwrap();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for a in (1..65_536u64).step_by(89) {
            for b in (1..65_536u64).step_by(97) {
                let e = m.relative_error(a, b).expect("nonzero");
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        assert!(lo > -0.016, "min = {lo}");
        assert!(hi < 0.017, "max = {hi}");
    }

    #[test]
    fn unbiased_within_noise() {
        // Table I DRUM k=6 bias 0.04 % — the forced LSB balances the
        // truncation.
        let m = Drum::new(16, 6).unwrap();
        let (mut sum, mut n) = (0.0, 0u64);
        for a in (1..65_536u64).step_by(149) {
            for b in (1..65_536u64).step_by(151) {
                sum += m.relative_error(a, b).expect("nonzero");
                n += 1;
            }
        }
        let bias = sum / n as f64;
        assert!(bias.abs() < 0.005, "bias = {bias}");
    }

    #[test]
    fn error_grows_as_k_shrinks() {
        let mean = |k: u32| {
            let m = Drum::new(16, k).unwrap();
            let (mut sum, mut n) = (0.0, 0u64);
            for a in (1..65_536u64).step_by(241) {
                for b in (1..65_536u64).step_by(251) {
                    sum += m.relative_error(a, b).expect("nonzero").abs();
                    n += 1;
                }
            }
            sum / n as f64
        };
        let (m8, m6, m4) = (mean(8), mean(6), mean(4));
        assert!(m8 < m6 && m6 < m4, "m8={m8} m6={m6} m4={m4}");
        // Table I means: 0.37 %, 1.47 %, 5.89 %.
        assert!((m8 - 0.0037).abs() < 0.002, "m8 = {m8}");
        assert!((m6 - 0.0147).abs() < 0.004, "m6 = {m6}");
        assert!((m4 - 0.0589).abs() < 0.012, "m4 = {m4}");
    }

    #[test]
    fn config_validation() {
        assert!(Drum::new(16, 2).is_err());
        assert!(Drum::new(16, 17).is_err());
        assert!(Drum::new(65, 8).is_err());
        assert!(Drum::new(64, 8).is_ok());
    }
}
