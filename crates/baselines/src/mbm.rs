//! MBM: the minimally biased multiplier of Saadat et al., "Minimally
//! biased multipliers for approximate integer and floating-point
//! multiplication", IEEE TCAD 2018 — reference \[4\] of the paper.
//!
//! MBM couples cALM with a **single** error-correction term for the whole
//! multiplier, computed by averaging the actual (absolute, not relative)
//! error over a complete power-of-two interval: the mean gap between
//! `(1+x)(1+y)` and Mitchell's mantissa is `1/12` (see
//! [`realm_core::factors::mean_product_gap`]), which MBM quantizes to the
//! shift-add-friendly constant `5/64 = 0.078125 = 2^-4 + 2^-6`. That
//! choice reproduces Table I's MBM peaks exactly: `+5/64 = +7.81 %` at
//! `x = y = 0` and `−1/9 + (5/64)/2.25 = −7.64 %` at `x = y = 1/2`.
//!
//! REALM's contribution is precisely to replace this single constant with
//! `M²` per-segment factors derived from *relative* error.

use realm_core::mitchell::{self, LogEncoding};
use realm_core::Multiplier;

/// MBM's correction constant in units of `2^-6`: `5/64`.
pub const MBM_CORRECTION_CODE: u64 = 5;

/// Fractional precision of the MBM correction constant (`q = 6`).
pub const MBM_CORRECTION_BITS: u32 = 6;

/// The minimally biased multiplier with fraction-truncation knob `t`.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Mbm;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let mbm = Mbm::new(16, 0)?;
/// // Correction makes the product overshoot slightly where Mitchell was
/// // exact: 1024 · 1024 → 2^20 · (1 + 5/64 rounding-scaled…).
/// assert!(mbm.multiply(1024, 1024) >= 1024 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mbm {
    width: u32,
    truncation: u32,
}

impl Mbm {
    /// Creates an MBM for `width`-bit operands with `t` truncated fraction
    /// LSBs (the paper sweeps `t ∈ {0, 2, 4, 6, 8, 9}` at `N = 16`).
    ///
    /// # Errors
    ///
    /// Returns [`realm_core::ConfigError`] when the width is unsupported or
    /// the truncation leaves no fraction bits.
    pub fn new(width: u32, truncation: u32) -> Result<Self, realm_core::ConfigError> {
        if !(4..=32).contains(&width) {
            return Err(realm_core::ConfigError::UnsupportedWidth { width });
        }
        if truncation + 1 >= width {
            return Err(realm_core::ConfigError::TruncationTooLarge {
                truncation,
                fraction_bits: width - 1,
                index_bits: 1,
            });
        }
        Ok(Mbm { width, truncation })
    }

    /// The truncation knob `t`.
    pub fn truncation(&self) -> u32 {
        self.truncation
    }
}

impl Multiplier for Mbm {
    fn width(&self) -> u32 {
        self.width
    }

    // `truncation` was range-checked in `Mbm::new`, so the truncate
    // calls below cannot fail.
    #[allow(clippy::expect_used)]
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (Some(ea), Some(eb)) = (
            LogEncoding::encode(a, self.width),
            LogEncoding::encode(b, self.width),
        ) else {
            return 0;
        };
        let ea = ea
            .truncate(self.truncation)
            .expect("validated at construction");
        let eb = eb
            .truncate(self.truncation)
            .expect("validated at construction");
        mitchell::log_mul(
            &ea,
            &eb,
            MBM_CORRECTION_CODE,
            MBM_CORRECTION_BITS,
            self.width,
        )
    }

    fn name(&self) -> &str {
        "MBM"
    }

    fn config(&self) -> String {
        format!("t={}", self.truncation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn peaks_match_paper() {
        // Table I MBM t=0: min −7.64 %, max +7.81 %.
        let m = Mbm::new(16, 0).unwrap();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for a in (1..65_536u64).step_by(61) {
            for b in (1..65_536u64).step_by(67) {
                let e = m.relative_error(a, b).expect("nonzero");
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        assert!(lo > -0.080 && lo < -0.070, "min = {lo}");
        assert!(hi < 0.0790 && hi > 0.072, "max = {hi}");
    }

    #[test]
    fn bias_is_minimal() {
        // Table I: MBM t=0 bias −0.09 %, vs cALM's −3.85 %.
        let m = Mbm::new(16, 0).unwrap();
        let (mut sum, mut n) = (0.0, 0u64);
        for a in (1..65_536u64).step_by(103) {
            for b in (1..65_536u64).step_by(107) {
                sum += m.relative_error(a, b).expect("nonzero");
                n += 1;
            }
        }
        let bias = sum / n as f64;
        assert!(bias.abs() < 0.005, "bias = {bias}");
    }

    #[test]
    fn mean_error_is_higher_than_realm() {
        // Table I: MBM mean error ≈ 2.58 % (REALM16 is 0.42 %) — the single
        // correction constant cannot flatten the whole profile.
        let m = Mbm::new(16, 0).unwrap();
        let (mut sum, mut n) = (0.0, 0u64);
        for a in (1..65_536u64).step_by(211) {
            for b in (1..65_536u64).step_by(223) {
                sum += m.relative_error(a, b).expect("nonzero").abs();
                n += 1;
            }
        }
        let me = sum / n as f64;
        assert!((me - 0.0258).abs() < 0.004, "mean error = {me}");
    }

    #[test]
    fn truncation_validated() {
        assert!(Mbm::new(16, 15).is_err());
        assert!(Mbm::new(16, 9).is_ok());
        assert!(Mbm::new(3, 0).is_err());
    }

    #[test]
    fn zero_short_circuits() {
        assert_eq!(Mbm::new(16, 0).unwrap().multiply(12, 0), 0);
    }
}
