//! Kulkarni's underdesigned recursive multiplier (reference \[7\] of the
//! paper's related work: "Trading accuracy for power with an
//! underdesigned multiplier architecture", VLSID 2011) — the classic
//! ad-hoc design the paper contrasts with mathematically formulated
//! approaches. Included as an extra baseline beyond Table I.
//!
//! The 2×2 building block is exact except for `3 × 3`, which it encodes
//! as `7` (binary `111`) instead of `9` — saving the block's fourth
//! output bit. Larger multipliers compose four half-width blocks
//! recursively with exact addition, so every error comes from `3 × 3`
//! sub-patterns and is always negative (`7 < 9`).

use realm_core::{ConfigError, Multiplier};

/// The approximate 2×2 block: exact except `3 × 3 → 7`.
pub fn approx_2x2(a: u64, b: u64) -> u64 {
    debug_assert!(a < 4 && b < 4);
    if a == 3 && b == 3 {
        7
    } else {
        a * b
    }
}

/// Kulkarni's recursive multiplier for power-of-two widths.
///
/// ```
/// use realm_core::Multiplier;
/// use realm_baselines::Kulkarni;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let m = Kulkarni::new(16)?;
/// assert_eq!(m.multiply(3, 3), 7); // the underdesigned corner
/// assert_eq!(m.multiply(2, 3), 6); // everything else is exact
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kulkarni {
    width: u32,
}

impl Kulkarni {
    /// Creates the multiplier for a power-of-two `width` in `2..=32`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedWidth`] otherwise (the recursion
    /// halves the width until the 2×2 base case).
    pub fn new(width: u32) -> Result<Self, ConfigError> {
        if !(2..=32).contains(&width) || !width.is_power_of_two() {
            return Err(ConfigError::UnsupportedWidth { width });
        }
        Ok(Kulkarni { width })
    }

    fn recurse(&self, a: u64, b: u64, width: u32) -> u64 {
        if width == 2 {
            return approx_2x2(a, b);
        }
        let half = width / 2;
        let mask = (1u64 << half) - 1;
        let (ah, al) = (a >> half, a & mask);
        let (bh, bl) = (b >> half, b & mask);
        let ll = self.recurse(al, bl, half);
        let lh = self.recurse(al, bh, half);
        let hl = self.recurse(ah, bl, half);
        let hh = self.recurse(ah, bh, half);
        ll + ((lh + hl) << half) + (hh << width)
    }
}

impl Multiplier for Kulkarni {
    fn width(&self) -> u32 {
        self.width
    }

    fn multiply(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a >> self.width == 0 && b >> self.width == 0);
        self.recurse(a, b, self.width)
    }

    fn name(&self) -> &str {
        "Kulkarni"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn two_by_two_truth_table() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let want = if a == 3 && b == 3 { 7 } else { a * b };
                assert_eq!(approx_2x2(a, b), want);
            }
        }
    }

    #[test]
    fn exhaustive_8bit_never_overestimates() {
        let m = Kulkarni::new(8).expect("power of two");
        for a in 0..256u64 {
            for b in 0..256u64 {
                let p = m.multiply(a, b);
                assert!(p <= a * b, "({a}, {b}): {p} > {}", a * b);
            }
        }
    }

    #[test]
    fn error_free_when_no_3x3_subpattern() {
        let m = Kulkarni::new(16).expect("power of two");
        // Operands with no pair of adjacent '11' dibits aligned: e.g. all
        // dibits in {0, 1, 2}.
        for (a, b) in [(0x5555u64, 0x9999u64), (0x1248, 0x2481), (0xAAAA, 0x5555)] {
            assert_eq!(m.multiply(a, b), a * b, "({a:#x}, {b:#x})");
        }
    }

    #[test]
    fn published_error_signature() {
        // Kulkarni et al. report mean error ~1.4 % and strictly negative
        // errors for the recursive composition on random inputs.
        let m = Kulkarni::new(16).expect("power of two");
        let (mut sum, mut lo, mut n) = (0.0f64, 0.0f64, 0u64);
        for a in (1..65_536u64).step_by(127) {
            for b in (1..65_536u64).step_by(131) {
                let e = m.relative_error(a, b).expect("nonzero");
                assert!(e <= 0.0, "({a}, {b}): positive error {e}");
                sum += e.abs();
                lo = lo.min(e);
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!(mean > 0.005 && mean < 0.04, "mean {mean}");
        assert!(lo > -0.30, "min {lo}");
    }

    #[test]
    fn rejects_non_power_of_two_widths() {
        assert!(Kulkarni::new(12).is_err());
        assert!(Kulkarni::new(33).is_err());
        assert!(Kulkarni::new(16).is_ok());
    }
}
