//! Approximate adders used by the ALM derivatives of Liu et al.
//! (TCAS-I 2018, reference \[9\] of the paper).
//!
//! These adders split an addition into an exact upper part and an
//! approximate lower part of `m` bits:
//!
//! * **LOA** (lower-part OR adder): the lower sum bits are `a | b`; the
//!   carry into the exact part is `a[m−1] & b[m−1]`.
//! * **SOA** (set-one adder): the lower sum bits are hardwired to 1 and no
//!   carry enters the exact part — the cheapest option, trading a positive
//!   error drift for the removed logic.
//! * **MAA**: Liu et al. build this from approximate mirror adder cells
//!   (a transistor-level simplification). Behaviourally the published AMA
//!   cell truth tables act like OR-dominated carry suppression, so this
//!   model uses the LOA behaviour for MAA — a documented reconstruction
//!   that reproduces ALM-MAA's published signature (bias pinned near
//!   cALM's −3.85 %, max error creeping up only at large `m`; Table I).

/// Which lower-part approximation an [`approx_add`] call uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LowerPart {
    /// Exact addition (no approximation) — for reference/testing.
    Exact,
    /// Lower-part OR adder: `low = a | b`, carry-in `a[m−1] & b[m−1]`.
    Or,
    /// Set-one adder: `low = 1…1`, no carry into the exact part.
    SetOne,
    /// Truncating adder: `low = 0…0`, no carry — the cheapest possible
    /// lower part, with a strictly negative error drift.
    Truncate,
}

/// Adds two unsigned values whose lower `m` bits are computed with the
/// selected approximate scheme; bits at and above `m` are added exactly
/// (including the scheme's carry-in).
///
/// ```
/// use realm_baselines::adders::{approx_add, LowerPart};
///
/// // Exact reference.
/// assert_eq!(approx_add(0b1011, 0b0110, 2, LowerPart::Exact), 0b1011 + 0b0110);
/// // SOA forces the two low bits to 1 and drops their carry.
/// let soa = approx_add(0b1011, 0b0110, 2, LowerPart::SetOne);
/// assert_eq!(soa, (0b10 + 0b01) << 2 | 0b11);
/// ```
pub fn approx_add(a: u64, b: u64, m: u32, scheme: LowerPart) -> u64 {
    if m == 0 || matches!(scheme, LowerPart::Exact) {
        return a + b;
    }
    debug_assert!(m < 64, "lower-part width must be < 64");
    let mask = (1u64 << m) - 1;
    let (a_low, b_low) = (a & mask, b & mask);
    let (a_hi, b_hi) = (a >> m, b >> m);
    match scheme {
        LowerPart::Exact => unreachable!("handled above"),
        LowerPart::Or => {
            let msb = 1u64 << (m - 1);
            let cin = u64::from(a_low & b_low & msb != 0);
            ((a_hi + b_hi + cin) << m) | (a_low | b_low)
        }
        LowerPart::SetOne => ((a_hi + b_hi) << m) | mask,
        LowerPart::Truncate => (a_hi + b_hi) << m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_m_is_exact_for_all_schemes() {
        for scheme in [
            LowerPart::Exact,
            LowerPart::Or,
            LowerPart::SetOne,
            LowerPart::Truncate,
        ] {
            assert_eq!(approx_add(12345, 67890, 0, scheme), 12345 + 67890);
        }
    }

    #[test]
    fn truncate_never_overestimates_and_drops_at_most_a_block() {
        let m = 4;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let approx = approx_add(a, b, m, LowerPart::Truncate);
                let exact = a + b;
                assert!(approx <= exact, "a={a} b={b}");
                assert!(exact - approx < (2 << m), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn or_adder_bounds() {
        // LOA's absolute error is bounded: it can under- or over-estimate
        // the low part but never by more than 2^m.
        let m = 4;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let approx = approx_add(a, b, m, LowerPart::Or) as i64;
                let exact = (a + b) as i64;
                assert!(
                    (approx - exact).abs() < (1 << m),
                    "a={a} b={b} approx={approx} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn or_adder_exact_when_operands_share_no_low_bits() {
        // If a_low & b_low == 0 then a_low | b_low == a_low + b_low and no
        // carry is lost — LOA is exact.
        assert_eq!(
            approx_add(0b1010_0101, 0b0101_1010, 8, LowerPart::Or),
            0b1010_0101 + 0b0101_1010
        );
    }

    #[test]
    fn soa_is_within_one_lsb_block() {
        let m = 3;
        for a in 0..64u64 {
            for b in 0..64u64 {
                let approx = approx_add(a, b, m, LowerPart::SetOne) as i64;
                let exact = (a + b) as i64;
                // SOA replaces the low block by its maximum and drops one
                // potential carry: error in (−2^m, +2^m).
                assert!((approx - exact).abs() < (1 << m), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn upper_bits_always_exact() {
        for scheme in [LowerPart::Or, LowerPart::SetOne] {
            let v = approx_add(0xFF00, 0x0100, 4, scheme);
            assert_eq!(v >> 4, 0xFF0u64 + 0x010);
        }
    }
}
