//! Hand-rolled property tests for the QoS controller (the workspace
//! carries no property-testing dependency; the loops draw their cases
//! from `SplitMix64` so every failure is reproducible from the case
//! index).

use realm_core::rng::SplitMix64;
use realm_metrics::ErrorSla;
use realm_qos::{Action, Controller, ControllerConfig, Observation, QosEntry, QosError, QosTable};

const CASES: u64 = 300;

/// A random but plausible characterized table: costs ascending,
/// accuracy loosely correlated with cost (cheaper designs err more),
/// plus occasional inversions so pruning is exercised.
fn random_table(rng: &mut SplitMix64) -> QosTable {
    let designs = 3 + rng.below(10) as usize;
    let mut entries = Vec::new();
    let mut cost = 0.15 + rng.next_f64() * 0.1;
    for i in 0..designs {
        cost += 0.02 + rng.next_f64() * 0.12;
        let mean = (1.0 / cost) * (0.004 + rng.next_f64() * 0.012);
        entries.push(QosEntry {
            design: format!("realm:m={},t={i}", 4 << (i % 3)),
            mean_error: mean,
            nmed: mean * (0.2 + rng.next_f64() * 0.2),
            peak_error: mean * (3.0 + rng.next_f64() * 3.0),
            area_um2: cost * 1898.1,
            power_uw: cost * 821.9,
            cost,
        });
    }
    entries.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    QosTable {
        samples: 1 << 10,
        seed: 1,
        cycles: 16,
        fingerprint: 0,
        entries,
    }
}

fn random_sla(rng: &mut SplitMix64) -> ErrorSla {
    let mut parts = Vec::new();
    if rng.chance(0.8) {
        parts.push(format!("mean:{:?}", 0.003 + rng.next_f64() * 0.08));
    }
    if rng.chance(0.4) {
        parts.push(format!("nmed:{:?}", 0.001 + rng.next_f64() * 0.03));
    }
    if rng.chance(0.4) {
        parts.push(format!("peak:{:?}", 0.01 + rng.next_f64() * 0.4));
    }
    if parts.is_empty() {
        parts.push("mean:0.05".to_string());
    }
    ErrorSla::parse(&parts.join(",")).expect("generated SLA text must parse")
}

/// Tightens one random component of an SLA (or constrains a previously
/// unconstrained one).
fn tighten(rng: &mut SplitMix64, sla: &ErrorSla) -> ErrorSla {
    let factor = 0.3 + rng.next_f64() * 0.6;
    let mut parts = Vec::new();
    let mut push = |key: &str, bound: Option<f64>, tighten_this: bool| match bound {
        Some(b) => {
            let b = if tighten_this { b * factor } else { b };
            parts.push(format!("{key}:{b:?}"));
        }
        None if tighten_this => parts.push(format!("{key}:{:?}", 0.02 * factor)),
        None => {}
    };
    let which = rng.below(3);
    push("mean", sla.mean, which == 0);
    push("nmed", sla.nmed, which == 1);
    push("peak", sla.peak, which == 2);
    ErrorSla::parse(&parts.join(",")).expect("tightened SLA text must parse")
}

/// Tightening any SLA component never selects a cheaper configuration:
/// the satisfying set can only shrink, so the cheapest survivor can
/// only cost the same or more.
#[test]
fn selection_cost_is_monotone_under_sla_tightening() {
    let mut rng = SplitMix64::new(0x5EED_50DA);
    for case in 0..CASES {
        let table = random_table(&mut rng);
        let sla = random_sla(&mut rng);
        let tighter = tighten(&mut rng, &sla);
        let base = Controller::select(&table, &sla);
        let strict = Controller::select(&table, &tighter);
        match (base, strict) {
            (Ok(b), Ok(s)) => assert!(
                s.cost >= b.cost,
                "case {case}: tightening {sla} -> {tighter} got cheaper \
                 ({} {} -> {} {})",
                b.design,
                b.cost,
                s.design,
                s.cost
            ),
            (Err(QosError::NoFeasibleConfig(_)), Ok(s)) => panic!(
                "case {case}: {sla} infeasible but tighter {tighter} selected {}",
                s.design
            ),
            _ => {}
        }
    }
}

/// The ladder is sorted by ascending cost with strictly improving mean
/// error, starts at the static selection, and every selected entry
/// satisfies the SLA it was selected under.
#[test]
fn ladder_is_sound() {
    let mut rng = SplitMix64::new(0xB0A7_10AD);
    let mut built = 0u32;
    for case in 0..CASES {
        let table = random_table(&mut rng);
        let sla = random_sla(&mut rng);
        let Ok(controller) = Controller::new(&table, sla, ControllerConfig::default()) else {
            assert!(
                matches!(
                    Controller::select(&table, &sla),
                    Err(QosError::NoFeasibleConfig(_))
                ),
                "case {case}: Controller::new failed but select succeeded"
            );
            continue;
        };
        built += 1;
        let ladder = controller.ladder();
        let static_pick = Controller::select(&table, &sla).expect("feasible");
        assert_eq!(ladder[0].design, static_pick.design, "case {case}");
        for pair in ladder.windows(2) {
            assert!(pair[0].cost <= pair[1].cost, "case {case}: cost order");
            assert!(
                pair[1].mean_error < pair[0].mean_error,
                "case {case}: escalation must strictly improve accuracy"
            );
        }
        for rung in ladder {
            assert!(
                sla.satisfied_by(rung.mean_error, rung.nmed, rung.peak_error),
                "case {case}: rung {} does not satisfy {sla}",
                rung.design
            );
        }
    }
    assert!(built > CASES as u32 / 4, "too few feasible cases: {built}");
}

/// Driving the controller with random observations never moves it off
/// the ladder, never relaxes below the static selection, and only ever
/// steps one rung at a time.
#[test]
fn observe_walks_the_ladder_one_rung_at_a_time() {
    let mut rng = SplitMix64::new(0x0B5E_11AD);
    for case in 0..CASES {
        let table = random_table(&mut rng);
        let sla = random_sla(&mut rng);
        let Ok(mut controller) = Controller::new(&table, sla, ControllerConfig::default()) else {
            continue;
        };
        let depth = controller.ladder().len();
        for _ in 0..40 {
            let before = controller.rung();
            let obs = Observation::new(rng.next_f64() * 0.1)
                .with_peak_error(rng.next_f64() * 0.5)
                .with_fallback_rate(if rng.chance(0.2) {
                    rng.next_f64() * 0.3
                } else {
                    0.0
                });
            let decision = controller.observe(&obs);
            let after = controller.rung();
            assert!(after < depth, "case {case}: rung out of range");
            match decision.action {
                Action::Hold => assert_eq!(before, after, "case {case}"),
                Action::Escalate => assert_eq!(after, before + 1, "case {case}"),
                Action::Relax => {
                    assert_eq!(after + 1, before, "case {case}");
                    assert!(after + 1 >= 1, "case {case}: below static selection");
                }
            }
            assert_eq!(
                controller.current().design,
                decision.to,
                "case {case}: decision.to must match the active rung"
            );
        }
        assert_eq!(
            controller.switches(),
            controller.escalations() + controller.relaxations(),
            "case {case}: switch accounting"
        );
    }
}
