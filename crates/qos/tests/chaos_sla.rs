//! End-to-end chaos validation: the guarded, controller-driven loop
//! must hold the SLA under fault injection — bit-identically at every
//! worker-thread count — while the static uncontrolled configuration
//! demonstrably violates it.

use realm_metrics::{ErrorSla, Threads};
use realm_obs::{Collector, MemoryCollector, NullCollector};
use realm_qos::{chaos, ChaosConfig, QosTable, TableConfig};

fn test_table() -> QosTable {
    let cfg = TableConfig {
        samples: 1 << 11,
        seed: 0xEA51_1AB5,
        cycles: 16,
        threads: Threads::Auto,
    };
    QosTable::characterize(&cfg).expect("characterization must succeed")
}

fn test_campaign(threads: Threads) -> ChaosConfig {
    ChaosConfig {
        threads,
        window_samples: 1 << 11,
        probe_samples: 1 << 10,
        chunk: 256,
        ..ChaosConfig::smoke(ErrorSla::parse("mean:0.02").expect("valid SLA"))
    }
}

#[test]
fn chaos_attainment_meets_target_and_static_violates() {
    let table = test_table();
    let collector = MemoryCollector::new();
    let outcome = chaos::run(&table, &test_campaign(Threads::Fixed(2)), &collector)
        .expect("campaign must run");

    // The adaptive loop holds the SLA in at least 99% of rounds (with
    // this seed: all of them), while the static uncontrolled oracle
    // configuration violates it in every fault phase.
    assert!(
        outcome.attainment >= 0.99,
        "attainment {} below target:\n{}",
        outcome.attainment,
        outcome.to_json()
    );
    assert!(
        outcome.static_attainment < outcome.attainment,
        "static baseline must violate where the controller does not \
         (static {}, adaptive {})",
        outcome.static_attainment,
        outcome.attainment
    );
    let faulty_rounds: Vec<_> = outcome
        .rounds
        .iter()
        .filter(|r| r.fault.is_some())
        .collect();
    assert!(!faulty_rounds.is_empty());
    assert!(
        faulty_rounds.iter().any(|r| !r.static_met),
        "at least one fault phase must break the static baseline"
    );
    assert!(
        outcome.mean_delivered_error <= outcome.target_mean,
        "mean delivered error {} above target {}",
        outcome.mean_delivered_error,
        outcome.target_mean
    );

    // Adaptivity is allowed to cost something, but bounded: within
    // 1.5x of the clairvoyant static selection.
    assert!(
        outcome.cost_ratio <= 1.5,
        "cost ratio {} exceeds 1.5x oracle-static",
        outcome.cost_ratio
    );

    // The controller actually worked for its keep: it escalated under
    // faults and relaxed back during recovery.
    assert!(outcome.escalations > 0, "no escalations recorded");
    assert!(outcome.relaxations > 0, "no relaxations recorded");
    assert_eq!(outcome.switches, outcome.escalations + outcome.relaxations);

    // The loop narrated its moves: every switch surfaced as an event.
    let events = collector.events();
    let switches = events
        .iter()
        .filter(|e| e.kind() == "config_switch")
        .count() as u64;
    let escalations = events.iter().filter(|e| e.kind() == "escalation").count() as u64;
    assert_eq!(
        switches, outcome.switches,
        "one config_switch event per switch"
    );
    assert!(
        escalations >= outcome.escalations,
        "escalation events missing"
    );
}

#[test]
fn chaos_outcome_is_bit_identical_across_thread_counts() {
    let table = test_table();
    let reference =
        chaos::run(&table, &test_campaign(Threads::Fixed(1)), &NullCollector).expect("run");
    for workers in [2, 8] {
        let outcome = chaos::run(
            &table,
            &test_campaign(Threads::Fixed(workers)),
            &NullCollector,
        )
        .expect("run");
        assert_eq!(
            outcome, reference,
            "{workers}-thread campaign diverged from the sequential one"
        );
    }
    let _ = NullCollector.enabled();
}
