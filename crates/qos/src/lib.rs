//! # realm-qos
//!
//! Runtime error-budget QoS for the REALM stack: turn the paper's
//! design-time accuracy knobs (segment count `M`, truncation `t`) into
//! a *run-time* control loop that delivers a per-tenant error SLA at
//! the lowest hardware cost — and keeps delivering it when the
//! datapath is faulting.
//!
//! Three layers, composed from machinery the workspace already has:
//!
//! 1. **Characterization tables** ([`table`]): a one-off pass measures
//!    every design in the zoo (REALM `(M, t)` grid plus the baselines)
//!    for mean relative error, NMED and peak error (`realm-metrics`)
//!    and area/power (`realm-synth`'s calibrated proxy), and persists
//!    the result as a versioned, checksummed `qos_tables.json` whose
//!    loader rejects tampered bytes and stale fingerprints.
//! 2. **The controller** ([`controller`]): given an
//!    [`ErrorSla`](realm_metrics::ErrorSla), selects the cheapest
//!    configuration whose *characterized* error satisfies every bound,
//!    then re-evaluates online from delivered-error observations and
//!    `Guarded::fallback_rate` — escalating up a precomputed accuracy
//!    ladder on breach, relaxing back only after a hysteresis-scaled
//!    healthy streak (cooldown), so it degrades gracefully instead of
//!    flapping.
//! 3. **Chaos validation** ([`chaos`]): drives the closed loop under
//!    `realm-fault` injection (stuck-at and transient faults at all
//!    four datapath sites) and scores delivered error against the SLA,
//!    against a static uncontrolled baseline, and against the
//!    oracle-static cost — the numbers behind `BENCH_qos.json`.
//!
//! The crate deliberately sits *below* `realm-serve`: the server binds
//! per-tenant controllers to jobs, but nothing here knows about HTTP,
//! queues or tenants — only tables, budgets and observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod controller;
pub mod table;

pub use chaos::{ChaosConfig, ChaosOutcome, RoundRecord};
pub use controller::{Action, Controller, ControllerConfig, Decision, Observation};
pub use table::{QosEntry, QosTable, TableConfig, TABLE_SCHEMA};

use std::fmt;

/// Errors from table characterization, persistence and controller
/// construction.
#[derive(Debug)]
pub enum QosError {
    /// Reading or writing a table file failed.
    Io(String),
    /// The table document is not valid JSON / not table-shaped.
    Parse(String),
    /// The document's checksum does not match its bytes (tampering or
    /// torn write).
    Checksum {
        /// Checksum recorded in the document.
        claimed: u64,
        /// Checksum of the document's actual bytes.
        computed: u64,
    },
    /// The table was characterized under a different configuration
    /// (sample budget, seed, zoo) than the loader expects.
    StaleFingerprint {
        /// Fingerprint the loader expected.
        expected: u64,
        /// Fingerprint recorded in the document.
        found: u64,
    },
    /// The document's schema tag is not one this crate understands.
    Unsupported(String),
    /// A zoo design failed to build or characterize.
    Design(String),
    /// No table entry satisfies the requested SLA.
    NoFeasibleConfig(String),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::Io(detail) => write!(f, "table I/O failed: {detail}"),
            QosError::Parse(detail) => write!(f, "invalid table document: {detail}"),
            QosError::Checksum { claimed, computed } => write!(
                f,
                "table checksum mismatch: document claims {claimed:016x}, bytes hash to {computed:016x}"
            ),
            QosError::StaleFingerprint { expected, found } => write!(
                f,
                "stale table fingerprint: expected {expected:016x}, found {found:016x} \
                 (re-run characterization)"
            ),
            QosError::Unsupported(schema) => write!(f, "unsupported table schema '{schema}'"),
            QosError::Design(detail) => write!(f, "zoo design failed: {detail}"),
            QosError::NoFeasibleConfig(sla) => {
                write!(f, "no characterized configuration satisfies SLA '{sla}'")
            }
        }
    }
}

impl std::error::Error for QosError {}
