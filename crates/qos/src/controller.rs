//! The SLA controller: pick the cheapest configuration that meets an
//! error budget, then keep it honest online.
//!
//! ## Static selection
//!
//! [`Controller::select`] answers the design-time question: given a
//! characterized [`QosTable`](crate::QosTable) and an
//! [`ErrorSla`](realm_metrics::ErrorSla), which entry is the cheapest
//! whose *characterized* mean / NMED / peak error satisfies every
//! constrained bound? The answer is monotone by construction —
//! tightening any SLA component can only shrink the satisfying set, so
//! the selected cost never decreases.
//!
//! ## Online control
//!
//! Characterized error assumes a healthy datapath. At run time the
//! controller walks an **accuracy ladder** — the satisfying entries
//! sorted by cost and pruned so each rung is strictly more accurate
//! than the one below — driven by [`Observation`]s of *delivered*
//! error and `Guarded::fallback_rate`:
//!
//! * **breach** (any observed bound above its SLA limit, or the
//!   fallback rate above [`ControllerConfig::fallback_threshold`]) →
//!   escalate one rung immediately;
//! * **healthy** (every observed bound under `hysteresis ×` its limit
//!   and the fallback rate under half the threshold) for
//!   [`ControllerConfig::cooldown`] consecutive windows → relax one
//!   rung, but never below the static selection;
//! * anything in between holds and resets the healthy streak.
//!
//! The asymmetry (instant escalation, damped relaxation) is the
//! hysteresis that keeps the controller from flapping on noise.

use realm_metrics::ErrorSla;
use realm_obs::MetricsSummary;

use crate::table::{QosEntry, QosTable};
use crate::QosError;

/// Tuning knobs for the online control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// A window only counts toward the relaxation streak when every
    /// observed bound is below `hysteresis ×` its SLA limit
    /// (`0 < hysteresis ≤ 1`; smaller = more conservative).
    pub hysteresis: f64,
    /// `Guarded::fallback_rate` above this is a breach even when the
    /// delivered error still meets the SLA — a rising fallback rate
    /// means the guard is doing the multiplier's job.
    pub fallback_threshold: f64,
    /// Consecutive healthy windows required before relaxing one rung.
    pub cooldown: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            hysteresis: 0.7,
            fallback_threshold: 0.05,
            cooldown: 3,
        }
    }
}

/// One feedback window: delivered error plus the guard's signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Delivered mean |relative error| over the window.
    pub mean_error: f64,
    /// Delivered peak |relative error| over the window, when measured.
    pub peak_error: Option<f64>,
    /// `Guarded::fallback_rate` over the window (0 when unguarded).
    pub fallback_rate: f64,
}

impl Observation {
    /// An observation of delivered mean error only.
    pub fn new(mean_error: f64) -> Self {
        Observation {
            mean_error,
            peak_error: None,
            fallback_rate: 0.0,
        }
    }

    /// Adds a delivered peak-error measurement.
    pub fn with_peak_error(mut self, peak_error: f64) -> Self {
        self.peak_error = Some(peak_error);
        self
    }

    /// Adds the guard's fallback rate.
    pub fn with_fallback_rate(mut self, fallback_rate: f64) -> Self {
        self.fallback_rate = fallback_rate;
        self
    }

    /// Builds an observation from a metrics snapshot, reading the
    /// `guarded_fallback_rate:<instance>` gauge that
    /// `Guarded::publish_metrics` maintains (0 when the instance has
    /// not published yet).
    pub fn from_metrics(summary: &MetricsSummary, instance: &str, mean_error: f64) -> Self {
        let gauge = format!("guarded_fallback_rate:{instance}");
        Observation::new(mean_error)
            .with_fallback_rate(summary.gauges.get(gauge.as_str()).copied().unwrap_or(0.0))
    }
}

/// What the controller did with a feedback window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the active configuration.
    Hold,
    /// Switch one rung up the accuracy ladder.
    Escalate,
    /// Switch one rung down after a full healthy streak.
    Relax,
}

/// The controller's verdict for one window — everything a caller needs
/// to apply the switch and narrate it (`Event::ConfigSwitch` /
/// `Event::Escalation`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// What happened.
    pub action: Action,
    /// Design active before the window.
    pub from: String,
    /// Design active after the window (equals `from` on [`Action::Hold`]).
    pub to: String,
    /// Human-readable cause (`"mean 0.041 > sla 0.03"`, `"healthy
    /// streak 3/3"`, …).
    pub reason: String,
    /// Whether the window breached the SLA (set on escalations and on
    /// holds at the top of the ladder).
    pub breached: bool,
}

/// An SLA-driven configuration controller over a characterized table.
#[derive(Debug, Clone)]
pub struct Controller {
    sla: ErrorSla,
    cfg: ControllerConfig,
    ladder: Vec<QosEntry>,
    rung: usize,
    healthy_streak: u32,
    switches: u64,
    escalations: u64,
    relaxations: u64,
}

impl Controller {
    /// Static selection: the cheapest characterized entry satisfying
    /// every constrained SLA bound. Monotone: tightening any bound
    /// never returns a cheaper entry.
    pub fn select<'t>(table: &'t QosTable, sla: &ErrorSla) -> Result<&'t QosEntry, QosError> {
        table
            .entries
            .iter()
            .find(|e| sla.satisfied_by(e.mean_error, e.nmed, e.peak_error))
            .ok_or_else(|| QosError::NoFeasibleConfig(sla.text()))
    }

    /// Builds a controller whose ladder starts at the static selection.
    ///
    /// The ladder keeps every satisfying entry, cost-ascending, pruned
    /// so each rung's characterized mean error strictly improves on
    /// the rung below — escalation always buys accuracy, never just
    /// cost.
    pub fn new(table: &QosTable, sla: ErrorSla, cfg: ControllerConfig) -> Result<Self, QosError> {
        let mut ladder: Vec<QosEntry> = Vec::new();
        for entry in &table.entries {
            if !sla.satisfied_by(entry.mean_error, entry.nmed, entry.peak_error) {
                continue;
            }
            let improves = ladder
                .last()
                .is_none_or(|prev| entry.mean_error < prev.mean_error);
            if improves {
                ladder.push(entry.clone());
            }
        }
        if ladder.is_empty() {
            return Err(QosError::NoFeasibleConfig(sla.text()));
        }
        Ok(Controller {
            sla,
            cfg,
            ladder,
            rung: 0,
            healthy_streak: 0,
            switches: 0,
            escalations: 0,
            relaxations: 0,
        })
    }

    /// The accuracy ladder, rung 0 (static selection) first.
    pub fn ladder(&self) -> &[QosEntry] {
        &self.ladder
    }

    /// The active entry.
    pub fn current(&self) -> &QosEntry {
        &self.ladder[self.rung]
    }

    /// The active rung index (0 = static selection).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// The entry a clairvoyant static selector would run forever — the
    /// cost baseline the adaptive controller is scored against.
    pub fn oracle_static(&self) -> &QosEntry {
        &self.ladder[0]
    }

    /// The SLA this controller enforces.
    pub fn sla(&self) -> &ErrorSla {
        &self.sla
    }

    /// Config switches performed (escalations + relaxations).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Escalations performed.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Relaxations performed.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// Why the window breached, or `None` if every constrained bound
    /// held.
    fn breach_reason(&self, obs: &Observation) -> Option<String> {
        if let Some(limit) = self.sla.mean {
            if obs.mean_error > limit {
                return Some(format!("mean {:.4} > sla {limit:.4}", obs.mean_error));
            }
        }
        if let (Some(limit), Some(peak)) = (self.sla.peak, obs.peak_error) {
            if peak > limit {
                return Some(format!("peak {peak:.4} > sla {limit:.4}"));
            }
        }
        if obs.fallback_rate > self.cfg.fallback_threshold {
            return Some(format!(
                "fallback rate {:.4} > threshold {:.4}",
                obs.fallback_rate, self.cfg.fallback_threshold
            ));
        }
        None
    }

    /// Whether the window was healthy enough to count toward the
    /// relaxation streak.
    fn healthy(&self, obs: &Observation) -> bool {
        let under =
            |value: f64, limit: Option<f64>| limit.is_none_or(|l| value <= l * self.cfg.hysteresis);
        under(obs.mean_error, self.sla.mean)
            && obs.peak_error.is_none_or(|p| under(p, self.sla.peak))
            && obs.fallback_rate <= self.cfg.fallback_threshold / 2.0
    }

    /// Feeds one feedback window and returns the verdict. The caller
    /// owns applying the switch (building the new multiplier) and
    /// emitting the corresponding events.
    pub fn observe(&mut self, obs: &Observation) -> Decision {
        let from = self.current().design.clone();
        if let Some(reason) = self.breach_reason(obs) {
            self.healthy_streak = 0;
            if self.rung + 1 < self.ladder.len() {
                self.rung += 1;
                self.switches += 1;
                self.escalations += 1;
                return Decision {
                    action: Action::Escalate,
                    to: self.current().design.clone(),
                    from,
                    reason,
                    breached: true,
                };
            }
            return Decision {
                action: Action::Hold,
                to: from.clone(),
                from,
                reason: format!("{reason}, already at top of ladder"),
                breached: true,
            };
        }
        if self.healthy(obs) {
            self.healthy_streak = self.healthy_streak.saturating_add(1);
            // Once the cooldown is paid, every further healthy window
            // relaxes another rung (the streak is retained) — the glide
            // back down is damped at the start, not per step.
            if self.healthy_streak >= self.cfg.cooldown && self.rung > 0 {
                self.rung -= 1;
                self.switches += 1;
                self.relaxations += 1;
                return Decision {
                    action: Action::Relax,
                    to: self.current().design.clone(),
                    from,
                    reason: format!("healthy streak {}/{}", self.cfg.cooldown, self.cfg.cooldown),
                    breached: false,
                };
            }
        } else {
            self.healthy_streak = 0;
        }
        Decision {
            action: Action::Hold,
            to: from.clone(),
            from,
            reason: format!(
                "within sla (streak {}/{})",
                self.healthy_streak, self.cfg.cooldown
            ),
            breached: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(design: &str, mean: f64, cost: f64) -> QosEntry {
        QosEntry {
            design: design.to_string(),
            mean_error: mean,
            nmed: mean / 10.0,
            peak_error: mean * 4.0,
            area_um2: cost * 1898.1,
            power_uw: cost * 821.9,
            cost,
        }
    }

    fn table() -> QosTable {
        QosTable {
            samples: 1 << 10,
            seed: 1,
            cycles: 16,
            fingerprint: 0xABCD,
            entries: vec![
                entry("drum:k=4", 0.060, 0.20),
                entry("realm:m=4,t=6", 0.028, 0.30),
                entry("realm:m=8,t=3", 0.012, 0.45),
                entry("realm:m=16,t=0", 0.004, 0.70),
                entry("accurate", 0.00001, 1.0),
            ],
        }
    }

    #[test]
    fn select_is_cheapest_satisfying_and_monotone() {
        let t = table();
        let loose = ErrorSla::parse("mean:0.08").unwrap();
        let mid = ErrorSla::parse("mean:0.03").unwrap();
        let tight = ErrorSla::parse("mean:0.01").unwrap();
        assert_eq!(Controller::select(&t, &loose).unwrap().design, "drum:k=4");
        assert_eq!(
            Controller::select(&t, &mid).unwrap().design,
            "realm:m=4,t=6"
        );
        assert_eq!(
            Controller::select(&t, &tight).unwrap().design,
            "realm:m=16,t=0"
        );
        let impossible = ErrorSla::parse("mean:0.03,peak:0.00001").unwrap();
        assert!(matches!(
            Controller::select(&t, &impossible),
            Err(QosError::NoFeasibleConfig(_))
        ));
    }

    #[test]
    fn escalation_is_instant_and_relaxation_waits_for_cooldown() {
        let t = table();
        let sla = ErrorSla::parse("mean:0.03").unwrap();
        let mut c = Controller::new(&t, sla, ControllerConfig::default()).unwrap();
        assert_eq!(c.current().design, "realm:m=4,t=6");
        assert_eq!(c.ladder().len(), 4, "{:?}", c.ladder());

        // Breach → escalate immediately.
        let d = c.observe(&Observation::new(0.045));
        assert_eq!(d.action, Action::Escalate);
        assert_eq!(d.to, "realm:m=8,t=3");
        assert!(d.breached);

        // Two healthy windows are not enough to relax…
        for _ in 0..2 {
            let d = c.observe(&Observation::new(0.005));
            assert_eq!(d.action, Action::Hold);
        }
        // …the third is.
        let d = c.observe(&Observation::new(0.005));
        assert_eq!(d.action, Action::Relax);
        assert_eq!(d.to, "realm:m=4,t=6");
        assert_eq!(c.rung(), 0);
        assert_eq!(c.switches(), 2);
        assert_eq!(c.escalations(), 1);
        assert_eq!(c.relaxations(), 1);

        // Never relaxes below the static selection.
        for _ in 0..10 {
            let d = c.observe(&Observation::new(0.001));
            assert_eq!(d.action, Action::Hold, "{d:?}");
        }
    }

    #[test]
    fn fallback_rate_breaches_even_when_error_is_fine() {
        let t = table();
        let sla = ErrorSla::parse("mean:0.03").unwrap();
        let mut c = Controller::new(&t, sla, ControllerConfig::default()).unwrap();
        let d = c.observe(&Observation::new(0.001).with_fallback_rate(0.2));
        assert_eq!(d.action, Action::Escalate);
        assert!(d.reason.contains("fallback rate"));
    }

    #[test]
    fn in_between_windows_reset_the_healthy_streak() {
        let t = table();
        let sla = ErrorSla::parse("mean:0.03").unwrap();
        let mut c = Controller::new(&t, sla, ControllerConfig::default()).unwrap();
        c.observe(&Observation::new(0.045)); // escalate to rung 1
        c.observe(&Observation::new(0.005)); // healthy (≤ 0.7 × 0.03)
        c.observe(&Observation::new(0.025)); // within SLA but above hysteresis
        for _ in 0..2 {
            assert_eq!(c.observe(&Observation::new(0.005)).action, Action::Hold);
        }
        // Streak restarted after the in-between window: relax on the
        // third clean window, not earlier.
        assert_eq!(c.observe(&Observation::new(0.005)).action, Action::Relax);
    }

    #[test]
    fn top_of_ladder_breach_holds_and_reports() {
        let t = table();
        let sla = ErrorSla::parse("mean:0.03").unwrap();
        let mut c = Controller::new(&t, sla, ControllerConfig::default()).unwrap();
        for _ in 0..c.ladder().len() {
            c.observe(&Observation::new(9.0));
        }
        let d = c.observe(&Observation::new(9.0));
        assert_eq!(d.action, Action::Hold);
        assert!(d.breached);
        assert!(d.reason.contains("top of ladder"));
        assert_eq!(d.from, "accurate");
    }

    #[test]
    fn observation_reads_fallback_gauge_from_metrics() {
        let registry = realm_obs::Registry::new();
        registry.gauge("guarded_fallback_rate:tenant-a", 0.125);
        let summary = registry.snapshot();
        let obs = Observation::from_metrics(&summary, "tenant-a", 0.01);
        assert_eq!(obs.fallback_rate, 0.125);
        let missing = Observation::from_metrics(&summary, "tenant-b", 0.01);
        assert_eq!(missing.fallback_rate, 0.0);
    }
}
