//! Chaos validation: does the closed loop actually deliver the SLA
//! when the datapath is faulting?
//!
//! The campaign walks a phase schedule that cycles clean operation with
//! stuck-at and transient faults at all four REALM datapath sites
//! (characteristic, fraction, LUT factor, shift amount). Each round:
//!
//! 1. **probe** — a short sequential window runs the guarded, faulted
//!    multiplier at the controller's active rung, publishes the guard's
//!    gauges to a metrics [`Registry`], and feeds the delivered error
//!    back as an [`Observation`](crate::Observation); the controller is
//!    iterated until it holds (at most one full climb of the ladder);
//! 2. **measure** — a long window runs the settled configuration in
//!    parallel ([`map_chunks`]) and scores delivered error against the
//!    SLA. Chunk `i`'s operands come from `SplitMix64::stream` and the
//!    chunk owns a private faulty-multiplier instance, so the measured
//!    numbers are bit-identical for every worker-thread count;
//! 3. **baseline** — the same operand stream through the *static,
//!    unguarded* oracle configuration (the entry a clairvoyant static
//!    selector would pick), which is what an uncontrolled deployment
//!    would have shipped.
//!
//! The controller's ladder is the table's native REALM entries plus the
//! accurate multiplier as the top rung. Escalating to `accurate` models
//! routing traffic off the log datapath entirely — which is why it is
//! modeled as [`InterfaceLevel`]`<`[`Accurate`]`>`: the log-domain
//! fault sites simply don't exist there, so datapath faults cannot
//! touch it.
//!
//! The outcome ([`ChaosOutcome`]) is the substance of `BENCH_qos.json`:
//! SLA attainment for the adaptive loop and the static baseline, mean
//! delivered error vs target, config-switch counts, and the adaptive
//! cost relative to the oracle-static cost.

use realm_core::rng::SplitMix64;
use realm_core::{Accurate, Multiplier, Realm, RealmConfig};
use realm_fault::{
    Fault, FaultPlan, FaultSite, FaultTarget, FaultyMultiplier, Guarded, InterfaceLevel, Operand,
};
use realm_metrics::{ErrorSla, Threads};
use realm_obs::{json_string, Collector, Event, Registry};
use realm_par::{map_chunks, ChunkPlan};

use crate::controller::{Action, Controller, ControllerConfig, Observation};
use crate::table::{QosEntry, QosTable};
use crate::QosError;

/// Chaos campaign parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The error budget the controller must hold.
    pub sla: ErrorSla,
    /// Control-loop tuning.
    pub controller: ControllerConfig,
    /// Campaign seed (operand streams, transient-fault draws).
    pub seed: u64,
    /// Sequential samples per probe window.
    pub probe_samples: u64,
    /// Parallel samples per measured window.
    pub window_samples: u64,
    /// Chunk size for the measured window.
    pub chunk: u64,
    /// Worker threads for the measured window. Results are
    /// bit-identical for every value.
    pub threads: Threads,
    /// Rounds per unit of phase weight (fault phases have weight 1,
    /// clean/recovery phases weight 3).
    pub rounds_per_phase: u32,
}

/// The controller tuning the chaos campaign runs with: a fallback
/// threshold loose enough that octave faults the guard fully absorbs
/// (delivered error intact) don't force a climb, and a short cooldown
/// so recovery phases glide back down briskly.
fn chaos_controller() -> ControllerConfig {
    ControllerConfig {
        hysteresis: 0.7,
        fallback_threshold: 0.10,
        cooldown: 2,
    }
}

impl ChaosConfig {
    /// The full campaign behind `BENCH_qos.json`.
    pub fn paper(sla: ErrorSla) -> Self {
        ChaosConfig {
            sla,
            controller: chaos_controller(),
            seed: 0xC4A0_5EED,
            probe_samples: 4096,
            window_samples: 1 << 16,
            chunk: 4096,
            threads: Threads::Auto,
            rounds_per_phase: 2,
        }
    }

    /// A CI-sized campaign: same schedule, smaller windows.
    pub fn smoke(sla: ErrorSla) -> Self {
        ChaosConfig {
            window_samples: 1 << 13,
            probe_samples: 2048,
            chunk: 1024,
            rounds_per_phase: 1,
            ..ChaosConfig::paper(sla)
        }
    }
}

/// One schedule phase: a name, the fault active during it, and its
/// round-count weight.
#[derive(Debug, Clone, Copy)]
struct Phase {
    name: &'static str,
    fault: Option<Fault>,
    weight: u32,
}

/// The phase schedule: clean operation interleaved with one fault per
/// datapath site class — octave-displacing faults (characteristic,
/// shift amount) that the guard absorbs and the fallback-rate signal
/// escalates on, and within-octave faults (fraction, LUT factor) that
/// slip past the guard and only the delivered-error signal catches.
/// Every fault phase is followed by a recovery phase so the campaign
/// also scores the glide back down the ladder.
fn schedule() -> Vec<Phase> {
    let clean = |name| Phase {
        name,
        fault: None,
        weight: 3,
    };
    let faulty = |name, fault| Phase {
        name,
        fault: Some(fault),
        weight: 1,
    };
    vec![
        clean("clean"),
        faulty(
            "stuck_characteristic",
            Fault::stuck_at(
                FaultSite::Characteristic {
                    operand: Operand::A,
                    bit: 2,
                },
                true,
            ),
        ),
        clean("recover_characteristic"),
        faulty(
            "transient_fraction",
            Fault::transient(
                FaultSite::Fraction {
                    operand: Operand::B,
                    bit: 3,
                },
                0.5,
            ),
        ),
        clean("recover_fraction"),
        faulty(
            "stuck_lut_factor",
            Fault::stuck_at(FaultSite::LutFactor { bit: 3 }, true),
        ),
        clean("recover_lut_factor"),
        faulty(
            "transient_shift",
            Fault::transient(FaultSite::ShiftAmount { bit: 1 }, 0.2),
        ),
        clean("recover_shift"),
    ]
}

/// One measured round of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Schedule phase name.
    pub phase: String,
    /// Campaign tag of the active fault, if any.
    pub fault: Option<String>,
    /// Design the measured window ran (post-settle).
    pub design: String,
    /// Delivered mean |relative error| (guarded, adaptive).
    pub mean_error: f64,
    /// Delivered peak |relative error| (guarded, adaptive).
    pub peak_error: f64,
    /// Guard fallback rate over the measured window.
    pub fallback_rate: f64,
    /// Delivered mean |relative error| of the static unguarded oracle
    /// configuration on the same operands.
    pub static_mean_error: f64,
    /// Cost proxy of the design the window ran.
    pub cost: f64,
    /// Whether the adaptive window met the SLA.
    pub met: bool,
    /// Whether the static baseline met the SLA (mean bound only — peak
    /// is not tracked for the baseline).
    pub static_met: bool,
    /// Probe/observe iterations before the controller held.
    pub settle_steps: u32,
}

/// The campaign's verdict — everything `BENCH_qos.json` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The enforced SLA, in grammar text.
    pub sla: String,
    /// Campaign seed.
    pub seed: u64,
    /// Per-round records, schedule order.
    pub rounds: Vec<RoundRecord>,
    /// Fraction of rounds the adaptive loop met the SLA.
    pub attainment: f64,
    /// Fraction of rounds the static unguarded baseline met the SLA.
    pub static_attainment: f64,
    /// Mean delivered error across all adaptive windows.
    pub mean_delivered_error: f64,
    /// The SLA's mean-error target (0 when unconstrained).
    pub target_mean: f64,
    /// Config switches the controller performed.
    pub switches: u64,
    /// Escalations among those switches.
    pub escalations: u64,
    /// Relaxations among those switches.
    pub relaxations: u64,
    /// Mean cost proxy across adaptive windows.
    pub mean_cost: f64,
    /// Cost proxy of the oracle-static configuration.
    pub oracle_cost: f64,
    /// `mean_cost / oracle_cost` — the price of adaptivity.
    pub cost_ratio: f64,
}

/// Builds the width-16 REALM behind a `realm:m=…,t=…` table entry.
fn realm_from_text(text: &str) -> Result<Realm, QosError> {
    let invalid = || QosError::Design(format!("'{text}' is not a realm:m=…,t=… design"));
    let args = text.strip_prefix("realm:").ok_or_else(invalid)?;
    let (mut m, mut t) = (None, None);
    for part in args.split(',') {
        let (key, value) = part.split_once('=').ok_or_else(invalid)?;
        let value: u32 = value.parse().map_err(|_| invalid())?;
        match key {
            "m" => m = Some(value),
            "t" => t = Some(value),
            _ => return Err(invalid()),
        }
    }
    let (m, t) = (m.ok_or_else(invalid)?, t.ok_or_else(invalid)?);
    Realm::new(RealmConfig::new(16, m, t, 6)).map_err(|e| QosError::Design(format!("{text}: {e}")))
}

/// A faultable incarnation of a ladder rung.
#[derive(Debug, Clone)]
enum ChaosTarget {
    /// A native REALM datapath — every log-domain site is live.
    Realm(Realm),
    /// The accurate multiplier behind the interface-level fault model:
    /// datapath sites don't exist there, so escalating to this rung
    /// models leaving the log datapath entirely.
    Exact(InterfaceLevel<Accurate>),
}

impl ChaosTarget {
    fn build(text: &str) -> Result<Self, QosError> {
        if text == "accurate" {
            Ok(ChaosTarget::Exact(InterfaceLevel::new(Accurate::new(16))))
        } else {
            Ok(ChaosTarget::Realm(realm_from_text(text)?))
        }
    }
}

/// The accuracy ladder the chaos campaign can actually run under
/// injection: native REALM designs plus the accurate top rung.
fn chaos_ladder(table: &QosTable) -> QosTable {
    QosTable {
        entries: table
            .entries
            .iter()
            .filter(|e| e.design.starts_with("realm:") || e.design == "accurate")
            .cloned()
            .collect(),
        ..table.clone()
    }
}

/// Per-window accumulator: delivered-error sums plus guard counters.
#[derive(Debug, Clone, Copy, Default)]
struct WindowSums {
    abs_err: f64,
    peak: f64,
    samples: u64,
    static_abs_err: f64,
    static_samples: u64,
    ops: u64,
    fallbacks: u64,
}

/// |relative error| of `approx` against `a·b`, or `None` when the
/// exact product is zero (same convention as `realm-metrics`).
fn rel_error(a: u64, b: u64, approx: u64) -> Option<f64> {
    let exact = (a as u128) * (b as u128);
    if exact == 0 {
        return None;
    }
    let diff = (approx as u128).abs_diff(exact);
    Some(diff as f64 / exact as f64)
}

const OPERAND_MAX: u64 = (1 << 16) - 1;

/// Mixes the round/window/chunk coordinates into a private RNG stream
/// index so no two windows share operand or fault randomness.
fn stream_index(round: u64, window: u64, chunk: u64) -> u64 {
    (round << 32) ^ (window << 20) ^ chunk
}

/// Runs one measured window: `samples` operand pairs through the
/// guarded adaptive design and the static unguarded baseline, in
/// deterministic chunks. Both multipliers see the same operands and
/// the same per-operation fault draws.
fn measure_window<M: FaultTarget + Clone>(
    cfg: &ChaosConfig,
    round: u64,
    fault: Option<Fault>,
    active: &M,
    oracle: &Realm,
) -> WindowSums {
    let plan = fault.map(FaultPlan::single).unwrap_or_default();
    let plan_ref = &plan;
    let chunk_size = cfg.chunk.max(1);
    let chunks = ChunkPlan::new(cfg.window_samples, chunk_size);
    let partials = map_chunks(chunks, cfg.threads, move |chunk| {
        let stream = stream_index(round, 1, chunk.index);
        let mut rng = SplitMix64::stream(cfg.seed, stream);
        let fault_seed = cfg.seed ^ stream.rotate_left(17);
        let adaptive = Guarded::new(FaultyMultiplier::new(
            active.clone(),
            plan_ref.clone(),
            fault_seed,
        ));
        let baseline = FaultyMultiplier::new(oracle.clone(), plan_ref.clone(), fault_seed);
        let mut sums = WindowSums::default();
        for _ in 0..chunk.len {
            let a = rng.range_inclusive(0, OPERAND_MAX);
            let b = rng.range_inclusive(0, OPERAND_MAX);
            if let Some(err) = rel_error(a, b, adaptive.multiply(a, b)) {
                sums.abs_err += err;
                sums.peak = sums.peak.max(err);
                sums.samples += 1;
            }
            if let Some(err) = rel_error(a, b, baseline.multiply(a, b)) {
                sums.static_abs_err += err;
                sums.static_samples += 1;
            }
        }
        sums.ops = adaptive.operations();
        sums.fallbacks = adaptive.fallbacks();
        sums
    });
    // Fold in chunk order: bit-identical for every thread count.
    let mut total = WindowSums::default();
    for p in partials {
        total.abs_err += p.abs_err;
        total.peak = total.peak.max(p.peak);
        total.samples += p.samples;
        total.static_abs_err += p.static_abs_err;
        total.static_samples += p.static_samples;
        total.ops += p.ops;
        total.fallbacks += p.fallbacks;
    }
    total
}

/// Runs one sequential probe window and returns the observation the
/// controller sees (reading the fallback gauge back through a metrics
/// registry, the same path `realm-serve` uses).
fn probe_window<M: FaultTarget + Clone>(
    cfg: &ChaosConfig,
    round: u64,
    step: u64,
    fault: Option<Fault>,
    design: &M,
    registry: &Registry,
    instance: &str,
) -> Observation {
    let plan = fault.map(FaultPlan::single).unwrap_or_default();
    let stream = stream_index(round, 2 + step, 0);
    let mut rng = SplitMix64::stream(cfg.seed, stream);
    let guarded = Guarded::new(FaultyMultiplier::new(
        design.clone(),
        plan,
        cfg.seed ^ stream.rotate_left(17),
    ));
    let (mut abs_err, mut peak, mut samples) = (0.0f64, 0.0f64, 0u64);
    for _ in 0..cfg.probe_samples.max(1) {
        let a = rng.range_inclusive(0, OPERAND_MAX);
        let b = rng.range_inclusive(0, OPERAND_MAX);
        if let Some(err) = rel_error(a, b, guarded.multiply(a, b)) {
            abs_err += err;
            peak = peak.max(err);
            samples += 1;
        }
    }
    guarded.publish_metrics(registry, instance);
    let mean = if samples == 0 {
        0.0
    } else {
        abs_err / samples as f64
    };
    Observation::from_metrics(&registry.snapshot(), instance, mean).with_peak_error(peak)
}

/// Whether a delivered (mean, peak) pair meets the SLA's constrained
/// bounds. NMED is a characterization-time constraint — it shapes the
/// ladder, but is not measurable from a single delivered window.
fn delivered_meets(sla: &ErrorSla, mean: f64, peak: f64) -> bool {
    sla.mean.is_none_or(|limit| mean <= limit) && sla.peak.is_none_or(|limit| peak <= limit)
}

/// Runs the chaos campaign. Config switches and escalations are
/// narrated to `collector` (pass
/// [`NullCollector`](realm_obs::NullCollector) to discard them).
pub fn run(
    table: &QosTable,
    cfg: &ChaosConfig,
    collector: &dyn Collector,
) -> Result<ChaosOutcome, QosError> {
    let ladder_table = chaos_ladder(table);
    if !ladder_table
        .entries
        .iter()
        .any(|e| e.design.starts_with("realm:"))
    {
        return Err(QosError::Design(
            "table has no realm:* entries to build a chaos ladder from".into(),
        ));
    }
    let mut controller = Controller::new(&ladder_table, cfg.sla, cfg.controller)?;
    let registry = Registry::new();
    let oracle: QosEntry = controller.oracle_static().clone();
    let oracle_realm = realm_from_text(&oracle.design)?;

    let mut rounds = Vec::new();
    let mut round_index = 0u64;
    for phase in schedule() {
        for _ in 0..phase.weight * cfg.rounds_per_phase.max(1) {
            let scope = format!("chaos:{}:{round_index}", phase.name);
            // Settle: probe and observe until the controller holds. A
            // full climb plus one post-cooldown relax-and-recover
            // bounds the loop.
            let mut settle_steps = 0u32;
            let step_budget = controller.ladder().len() as u64 + 2;
            for step in 0..=step_budget {
                settle_steps += 1;
                let active = ChaosTarget::build(&controller.current().design)?;
                let obs = match &active {
                    ChaosTarget::Realm(r) => {
                        probe_window(cfg, round_index, step, phase.fault, r, &registry, &scope)
                    }
                    ChaosTarget::Exact(x) => {
                        probe_window(cfg, round_index, step, phase.fault, x, &registry, &scope)
                    }
                };
                let decision = controller.observe(&obs);
                if decision.breached {
                    let event = Event::Escalation {
                        scope: scope.clone(),
                        config: decision.from.clone(),
                        observed_mean: obs.mean_error,
                        target_mean: cfg.sla.mean.unwrap_or(0.0),
                        fallback_rate: obs.fallback_rate,
                    };
                    registry.record(&event);
                    collector.record(&event);
                }
                if decision.action != Action::Hold {
                    let reason = match decision.action {
                        Action::Escalate => "escalate",
                        Action::Relax => "relax",
                        Action::Hold => unreachable!(),
                    };
                    let event = Event::ConfigSwitch {
                        scope: scope.clone(),
                        from: decision.from.clone(),
                        to: decision.to.clone(),
                        reason: format!("{reason}: {}", decision.reason),
                    };
                    registry.record(&event);
                    collector.record(&event);
                }
                if decision.action == Action::Hold {
                    break;
                }
            }
            // Measure the settled configuration.
            let entry = controller.current().clone();
            let active = ChaosTarget::build(&entry.design)?;
            let sums = match &active {
                ChaosTarget::Realm(r) => {
                    measure_window(cfg, round_index, phase.fault, r, &oracle_realm)
                }
                ChaosTarget::Exact(x) => {
                    measure_window(cfg, round_index, phase.fault, x, &oracle_realm)
                }
            };
            let mean = if sums.samples == 0 {
                0.0
            } else {
                sums.abs_err / sums.samples as f64
            };
            let static_mean = if sums.static_samples == 0 {
                0.0
            } else {
                sums.static_abs_err / sums.static_samples as f64
            };
            let fallback_rate = if sums.ops == 0 {
                0.0
            } else {
                sums.fallbacks as f64 / sums.ops as f64
            };
            rounds.push(RoundRecord {
                phase: phase.name.to_string(),
                fault: phase.fault.map(|f| f.campaign_tag()),
                design: entry.design.clone(),
                mean_error: mean,
                peak_error: sums.peak,
                fallback_rate,
                static_mean_error: static_mean,
                cost: entry.cost,
                met: delivered_meets(&cfg.sla, mean, sums.peak),
                static_met: cfg.sla.mean.is_none_or(|limit| static_mean <= limit),
                settle_steps,
            });
            round_index += 1;
        }
    }

    let n = rounds.len() as f64;
    let attainment = rounds.iter().filter(|r| r.met).count() as f64 / n;
    let static_attainment = rounds.iter().filter(|r| r.static_met).count() as f64 / n;
    let mean_delivered_error = rounds.iter().map(|r| r.mean_error).sum::<f64>() / n;
    let mean_cost = rounds.iter().map(|r| r.cost).sum::<f64>() / n;
    Ok(ChaosOutcome {
        sla: cfg.sla.text(),
        seed: cfg.seed,
        rounds,
        attainment,
        static_attainment,
        mean_delivered_error,
        target_mean: cfg.sla.mean.unwrap_or(0.0),
        switches: controller.switches(),
        escalations: controller.escalations(),
        relaxations: controller.relaxations(),
        mean_cost,
        oracle_cost: oracle.cost,
        cost_ratio: mean_cost / oracle.cost,
    })
}

impl ChaosOutcome {
    /// Serializes the outcome as the `BENCH_qos.json` document
    /// (schema `realm-qos/bench/v1`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"realm-qos/bench/v1\",\n\"sla\":{},\n\"seed\":{},\n\
             \"attainment\":{},\n\"static_attainment\":{},\n\
             \"mean_delivered_error\":{},\n\"target_mean\":{},\n\
             \"switches\":{},\n\"escalations\":{},\n\"relaxations\":{},\n\
             \"mean_cost\":{},\n\"oracle_cost\":{},\n\"cost_ratio\":{},\n\"rounds\":[",
            json_string(&self.sla),
            self.seed,
            num(self.attainment),
            num(self.static_attainment),
            num(self.mean_delivered_error),
            num(self.target_mean),
            self.switches,
            self.escalations,
            self.relaxations,
            num(self.mean_cost),
            num(self.oracle_cost),
            num(self.cost_ratio),
        );
        for (i, r) in self.rounds.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let fault = match &r.fault {
                Some(tag) => json_string(tag),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}{{\"phase\":{},\"fault\":{fault},\"design\":{},\
                 \"mean_error\":{},\"peak_error\":{},\"fallback_rate\":{},\
                 \"static_mean_error\":{},\"cost\":{},\"met\":{},\
                 \"static_met\":{},\"settle_steps\":{}}}",
                json_string(&r.phase),
                json_string(&r.design),
                num(r.mean_error),
                num(r.peak_error),
                num(r.fallback_rate),
                num(r.static_mean_error),
                num(r.cost),
                r.met,
                r.static_met,
                r.settle_steps,
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_obs::NullCollector;

    #[test]
    fn realm_text_round_trips_and_rejects_garbage() {
        let r = realm_from_text("realm:m=8,t=3").unwrap();
        assert_eq!(r.width(), 16);
        for bad in ["calm", "realm:m=8", "realm:m=8,t=x", "realm:m=8,t=3,z=1"] {
            assert!(realm_from_text(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn measured_windows_are_thread_invariant() {
        let cfg_base = ChaosConfig {
            window_samples: 1 << 12,
            chunk: 256,
            ..ChaosConfig::smoke(ErrorSla::parse("mean:0.04").unwrap())
        };
        let active = realm_from_text("realm:m=4,t=3").unwrap();
        let oracle = realm_from_text("realm:m=4,t=6").unwrap();
        let fault = Some(Fault::transient(
            FaultSite::Fraction {
                operand: Operand::B,
                bit: 3,
            },
            0.5,
        ));
        let reference = measure_window(
            &ChaosConfig {
                threads: Threads::Fixed(1),
                ..cfg_base.clone()
            },
            7,
            fault,
            &active,
            &oracle,
        );
        for workers in [2, 8] {
            let parallel = measure_window(
                &ChaosConfig {
                    threads: Threads::Fixed(workers),
                    ..cfg_base.clone()
                },
                7,
                fault,
                &active,
                &oracle,
            );
            assert_eq!(reference.abs_err.to_bits(), parallel.abs_err.to_bits());
            assert_eq!(reference.fallbacks, parallel.fallbacks);
            assert_eq!(
                reference.static_abs_err.to_bits(),
                parallel.static_abs_err.to_bits()
            );
        }
    }

    #[test]
    fn accurate_rung_is_immune_to_datapath_faults() {
        let cfg = ChaosConfig {
            window_samples: 1 << 10,
            chunk: 256,
            ..ChaosConfig::smoke(ErrorSla::parse("mean:0.02").unwrap())
        };
        let ChaosTarget::Exact(exact) = ChaosTarget::build("accurate").unwrap() else {
            panic!("accurate must build the interface-level target");
        };
        let oracle = realm_from_text("realm:m=4,t=6").unwrap();
        let fault = Some(Fault::stuck_at(FaultSite::LutFactor { bit: 3 }, true));
        let sums = measure_window(&cfg, 3, fault, &exact, &oracle);
        assert_eq!(sums.abs_err, 0.0, "datapath faults must not reach Accurate");
        assert_eq!(sums.fallbacks, 0);
        assert!(sums.static_abs_err > 0.0, "the REALM baseline must feel it");
    }

    #[test]
    fn outcome_json_is_parseable_and_complete() {
        let outcome = ChaosOutcome {
            sla: "mean:0.03".into(),
            seed: 9,
            rounds: vec![RoundRecord {
                phase: "clean".into(),
                fault: None,
                design: "realm:m=8,t=3".into(),
                mean_error: 0.011,
                peak_error: 0.09,
                fallback_rate: 0.0,
                static_mean_error: 0.012,
                cost: 0.4,
                met: true,
                static_met: true,
                settle_steps: 1,
            }],
            attainment: 1.0,
            static_attainment: 1.0,
            mean_delivered_error: 0.011,
            target_mean: 0.03,
            switches: 0,
            escalations: 0,
            relaxations: 0,
            mean_cost: 0.4,
            oracle_cost: 0.4,
            cost_ratio: 1.0,
        };
        let doc = realm_obs::Json::parse(&outcome.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(realm_obs::Json::as_str),
            Some("realm-qos/bench/v1")
        );
        let rounds = doc
            .get("rounds")
            .and_then(realm_obs::Json::as_array)
            .unwrap();
        assert_eq!(rounds.len(), 1);
        assert_eq!(
            rounds[0].get("design").and_then(realm_obs::Json::as_str),
            Some("realm:m=8,t=3")
        );
    }

    #[test]
    fn schedule_covers_all_four_sites_and_recovers_after_each() {
        let phases = schedule();
        let tags: Vec<String> = phases
            .iter()
            .filter_map(|p| p.fault.map(|f| f.campaign_tag()))
            .collect();
        for site in ["characteristic", "fraction", "lut", "shift"] {
            assert!(
                tags.iter().any(|t| t.contains(site)),
                "schedule misses site {site}: {tags:?}"
            );
        }
        // Every fault phase is followed by a clean phase.
        for pair in phases.windows(2) {
            if pair[0].fault.is_some() {
                assert!(
                    pair[1].fault.is_none(),
                    "fault phases must be followed by recovery"
                );
            }
        }
        let _ = NullCollector;
    }
}
