//! Characterized error/cost tables: the controller's menu.
//!
//! One characterization pass measures every design in the zoo —
//! accuracy with `realm-metrics` (mean relative error, NMED, peak
//! relative error) and hardware cost with `realm-synth`'s calibrated
//! area/power proxy — and persists the result as `qos_tables.json`:
//!
//! * **versioned** — the document carries [`TABLE_SCHEMA`]; unknown
//!   schemas are rejected, not guessed;
//! * **checksummed** — an FNV-1a digest of the document bytes rides in
//!   the last member, so tampering and torn writes fail the load;
//! * **fingerprinted** — a digest of the characterization inputs
//!   (schema, sample budget, seed, power-sim cycles, zoo) lets a loader
//!   reject tables characterized under different conditions than the
//!   caller expects ("stale fingerprints").
//!
//! Floats serialize as `{"value": …, "bits": "ieee754-hex"}` — the same
//! convention as the bench artifacts — so a load round-trips every
//! metric bit-exactly.

use realm_core::{Realm, RealmConfig};
use realm_harness::Fnv64;
use realm_metrics::{distance_metrics_threaded, parse_design, MonteCarlo, Threads};
use realm_obs::{atomic_write_str, json_string, Json};
use realm_synth::designs::{
    calm_netlist, drum_netlist, ilm_netlist, mbm_netlist, realm_netlist, scaletrim_netlist,
    wallace16,
};
use realm_synth::report::{PAPER_ACCURATE_AREA_UM2, PAPER_ACCURATE_POWER_UW};
use realm_synth::{Netlist, Reporter};
use std::path::Path;

use crate::QosError;

/// Schema tag of a table document this crate writes and loads.
pub const TABLE_SCHEMA: &str = "realm-qos/tables/v1";

/// Inputs of a characterization pass. The fingerprint binds a table to
/// these values, so a loader can insist on a table produced under the
/// exact conditions it expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Operand pairs per design for the error campaigns.
    pub samples: u64,
    /// RNG seed shared by error campaigns and the power stimulus.
    pub seed: u64,
    /// Power-simulation stimulus cycles per design.
    pub cycles: u32,
    /// Worker threads for the error campaigns (pure performance knob;
    /// not part of the fingerprint — results are thread-invariant).
    pub threads: Threads,
}

impl TableConfig {
    /// The full-fidelity pass (2²⁰ error samples, 1000 power cycles).
    pub fn paper() -> Self {
        TableConfig {
            samples: 1 << 20,
            seed: 0xEA51_1AB5,
            cycles: 1000,
            threads: Threads::Auto,
        }
    }

    /// A CI-friendly pass (2¹⁴ error samples, 128 power cycles) — same
    /// pipeline, small enough to regenerate on every run.
    pub fn smoke() -> Self {
        TableConfig {
            samples: 1 << 14,
            seed: 0xEA51_1AB5,
            cycles: 128,
            threads: Threads::Auto,
        }
    }

    /// The fingerprint a table characterized under this configuration
    /// carries: FNV-1a over schema, samples, seed, cycles and the zoo's
    /// design texts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(TABLE_SCHEMA.as_bytes());
        h.update(&self.samples.to_le_bytes());
        h.update(&self.seed.to_le_bytes());
        h.update(&self.cycles.to_le_bytes());
        for design in zoo() {
            h.update(design.text.as_bytes());
            h.update(b"\n");
        }
        h.finish()
    }
}

/// How a zoo member maps to a synthesizable netlist.
#[derive(Debug, Clone, Copy)]
enum ZooKind {
    Accurate,
    Realm { m: u32, t: u32 },
    Calm,
    Drum { k: u32 },
    Mbm { t: u32 },
    ScaleTrim { t: u32, c: bool },
    Ilm { i: u32 },
}

/// One characterizable design: its spec-grammar text plus its netlist
/// recipe.
#[derive(Debug, Clone)]
struct ZooDesign {
    text: String,
    kind: ZooKind,
}

impl ZooDesign {
    fn netlist(&self) -> Result<Netlist, QosError> {
        Ok(match self.kind {
            ZooKind::Accurate => wallace16(),
            ZooKind::Realm { m, t } => realm_netlist(&realm16(m, t)?),
            ZooKind::Calm => calm_netlist(16),
            ZooKind::Drum { k } => drum_netlist(16, k),
            ZooKind::Mbm { t } => mbm_netlist(16, t),
            ZooKind::ScaleTrim { t, c } => scaletrim_netlist(16, t, c),
            ZooKind::Ilm { i } => ilm_netlist(16, i),
        })
    }
}

/// Builds a width-16 REALM, mapping config errors to [`QosError`].
fn realm16(m: u32, t: u32) -> Result<Realm, QosError> {
    Realm::new(RealmConfig::new(16, m, t, 6))
        .map_err(|e| QosError::Design(format!("realm m={m} t={t}: {e}")))
}

/// The design zoo the characterization pass walks: the REALM `(M, t)`
/// grid (invalid combinations are skipped) plus the log-family
/// baselines and the accurate anchor. Order is the table order and part
/// of the fingerprint.
fn zoo() -> Vec<ZooDesign> {
    let mut designs = vec![ZooDesign {
        text: "accurate".into(),
        kind: ZooKind::Accurate,
    }];
    for m in [4u32, 8, 16] {
        for t in [0u32, 3, 6, 9] {
            if Realm::new(RealmConfig::new(16, m, t, 6)).is_ok() {
                designs.push(ZooDesign {
                    text: format!("realm:m={m},t={t}"),
                    kind: ZooKind::Realm { m, t },
                });
            }
        }
    }
    designs.push(ZooDesign {
        text: "calm".into(),
        kind: ZooKind::Calm,
    });
    for k in [4u32, 6] {
        designs.push(ZooDesign {
            text: format!("drum:k={k}"),
            kind: ZooKind::Drum { k },
        });
    }
    for t in [0u32, 4] {
        designs.push(ZooDesign {
            text: format!("mbm:t={t}"),
            kind: ZooKind::Mbm { t },
        });
    }
    // Post-paper comparators, appended last so the earlier table order
    // (and any external notes keyed on it) survives the extension.
    for t in [4u32, 6] {
        designs.push(ZooDesign {
            text: format!("scaletrim:t={t},c=1"),
            kind: ZooKind::ScaleTrim { t, c: true },
        });
    }
    for i in [1u32, 2] {
        designs.push(ZooDesign {
            text: format!("ilm:i={i}"),
            kind: ZooKind::Ilm { i },
        });
    }
    designs
}

/// The design texts the characterization pass covers, in table order.
pub fn zoo_designs() -> Vec<String> {
    zoo().into_iter().map(|d| d.text).collect()
}

/// One characterized design: the controller's unit of choice.
#[derive(Debug, Clone, PartialEq)]
pub struct QosEntry {
    /// The design, in the `realm-metrics` spec grammar.
    pub design: String,
    /// Mean |relative error| (MRED, fraction).
    pub mean_error: f64,
    /// Normalized mean error distance.
    pub nmed: f64,
    /// Peak |relative error| (fraction).
    pub peak_error: f64,
    /// Calibrated combinational area (µm²).
    pub area_um2: f64,
    /// Calibrated dynamic power (µW).
    pub power_uw: f64,
    /// Scalar cost proxy: the mean of area and power relative to the
    /// accurate multiplier (accurate ≈ 1.0, cheaper designs < 1).
    pub cost: f64,
}

/// A characterized, fingerprinted error/cost table.
#[derive(Debug, Clone, PartialEq)]
pub struct QosTable {
    /// Error-campaign operand pairs per design.
    pub samples: u64,
    /// Characterization seed.
    pub seed: u64,
    /// Power-stimulus cycles.
    pub cycles: u32,
    /// Digest of the characterization inputs (see
    /// [`TableConfig::fingerprint`]).
    pub fingerprint: u64,
    /// Entries, sorted by ascending cost (ties broken by design text).
    pub entries: Vec<QosEntry>,
}

fn sort_entries(entries: &mut [QosEntry]) {
    entries.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then_with(|| a.design.cmp(&b.design))
    });
}

impl QosTable {
    /// Runs the characterization pass: two error campaigns (relative
    /// error + error distance) and one calibrated synthesis report per
    /// zoo design. Deterministic for a given config — the error
    /// campaigns are thread-invariant and the power stimulus is seeded.
    pub fn characterize(cfg: &TableConfig) -> Result<QosTable, QosError> {
        let reporter = Reporter::paper_setup(cfg.cycles, cfg.seed);
        let mut entries = Vec::new();
        for zd in zoo() {
            let design = parse_design(&zd.text)
                .map_err(|e| QosError::Design(format!("{}: {e}", zd.text)))?;
            let errors = MonteCarlo::new(cfg.samples, cfg.seed)
                .with_threads(cfg.threads)
                .characterize(design.as_ref());
            let distance =
                distance_metrics_threaded(design.as_ref(), cfg.samples, cfg.seed, cfg.threads);
            let report = reporter.report(&zd.netlist()?);
            let cost = 0.5
                * (report.area_um2 / PAPER_ACCURATE_AREA_UM2
                    + report.power_uw / PAPER_ACCURATE_POWER_UW);
            entries.push(QosEntry {
                design: zd.text,
                mean_error: errors.mean_error,
                nmed: distance.nmed,
                peak_error: errors.peak_error(),
                area_um2: report.area_um2,
                power_uw: report.power_uw,
                cost,
            });
        }
        sort_entries(&mut entries);
        Ok(QosTable {
            samples: cfg.samples,
            seed: cfg.seed,
            cycles: cfg.cycles,
            fingerprint: cfg.fingerprint(),
            entries,
        })
    }

    /// The entry for a design text, if characterized.
    pub fn entry(&self, design: &str) -> Option<&QosEntry> {
        self.entries.iter().find(|e| e.design == design)
    }

    /// Serializes the table (schema [`TABLE_SCHEMA`]). The final
    /// member is an FNV-1a checksum of every byte before it, so the
    /// loader can verify integrity without reparsing.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{},\n\"samples\":{},\n\"seed\":{},\n\"cycles\":{},\n\
             \"fingerprint\":\"{:016x}\",\n\"entries\":[",
            json_string(TABLE_SCHEMA),
            self.samples,
            self.seed,
            self.cycles,
            self.fingerprint,
        );
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}{{\"design\":{},\"mean_error\":{},\"nmed\":{},\"peak_error\":{},\
                 \"area_um2\":{},\"power_uw\":{},\"cost\":{}}}",
                json_string(&e.design),
                json_f64(e.mean_error),
                json_f64(e.nmed),
                json_f64(e.peak_error),
                json_f64(e.area_um2),
                json_f64(e.power_uw),
                json_f64(e.cost),
            );
        }
        out.push_str("\n]");
        let checksum = Fnv64::hash(out.as_bytes());
        let _ = write!(out, ",\n\"checksum\":\"{checksum:016x}\"}}\n");
        out
    }

    /// Parses and verifies a table document: checksum first (byte
    /// integrity), then schema, then shape.
    pub fn from_json(text: &str) -> Result<QosTable, QosError> {
        let marker = ",\n\"checksum\":\"";
        let idx = text
            .rfind(marker)
            .ok_or_else(|| QosError::Parse("missing checksum member".into()))?;
        let computed = Fnv64::hash(&text.as_bytes()[..idx]);
        let doc = Json::parse(text.trim_end()).map_err(|e| QosError::Parse(e.to_string()))?;
        let claimed = hex_u64(&doc, "checksum")?;
        if claimed != computed {
            return Err(QosError::Checksum { claimed, computed });
        }
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| QosError::Parse("missing schema".into()))?;
        if schema != TABLE_SCHEMA {
            return Err(QosError::Unsupported(schema.to_string()));
        }
        let field = |key: &str| -> Result<u64, QosError> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| QosError::Parse(format!("missing or non-integer '{key}'")))
        };
        let mut entries = Vec::new();
        let items = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| QosError::Parse("missing entries array".into()))?;
        for item in items {
            let design = item
                .get("design")
                .and_then(Json::as_str)
                .ok_or_else(|| QosError::Parse("entry missing design".into()))?
                .to_string();
            let f = |key: &str| -> Result<f64, QosError> {
                let bits = item
                    .get(key)
                    .and_then(|v| v.get("bits"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        QosError::Parse(format!("entry '{design}' missing float '{key}'"))
                    })?;
                u64::from_str_radix(bits, 16)
                    .map(f64::from_bits)
                    .map_err(|_| QosError::Parse(format!("entry '{design}': bad bits for '{key}'")))
            };
            entries.push(QosEntry {
                mean_error: f("mean_error")?,
                nmed: f("nmed")?,
                peak_error: f("peak_error")?,
                area_um2: f("area_um2")?,
                power_uw: f("power_uw")?,
                cost: f("cost")?,
                design,
            });
        }
        if entries.is_empty() {
            return Err(QosError::Parse("table has no entries".into()));
        }
        sort_entries(&mut entries);
        Ok(QosTable {
            samples: field("samples")?,
            seed: field("seed")?,
            cycles: u32::try_from(field("cycles")?)
                .map_err(|_| QosError::Parse("cycles does not fit in 32 bits".into()))?,
            fingerprint: hex_u64(&doc, "fingerprint")?,
            entries,
        })
    }

    /// Writes the table crash-safely (atomic rename).
    pub fn save(&self, path: &Path) -> Result<(), QosError> {
        atomic_write_str(path, &self.to_json()).map_err(|e| QosError::Io(e.to_string()))
    }

    /// Loads and verifies a table file. With `expected`, additionally
    /// rejects tables whose fingerprint is stale — characterized under
    /// different inputs than the caller requires.
    pub fn load(path: &Path, expected: Option<u64>) -> Result<QosTable, QosError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| QosError::Io(format!("{}: {e}", path.display())))?;
        let table = QosTable::from_json(&text)?;
        if let Some(expected) = expected {
            if table.fingerprint != expected {
                return Err(QosError::StaleFingerprint {
                    expected,
                    found: table.fingerprint,
                });
            }
        }
        Ok(table)
    }
}

/// A float as `{"value": shortest-round-trip, "bits": hex}` (the bench
/// artifact convention; `bits` is authoritative on load).
fn json_f64(x: f64) -> String {
    format!("{{\"value\":{x:?},\"bits\":\"{:016x}\"}}", x.to_bits())
}

fn hex_u64(doc: &Json, key: &str) -> Result<u64, QosError> {
    let text = doc
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| QosError::Parse(format!("missing '{key}'")))?;
    u64::from_str_radix(text, 16).map_err(|_| QosError::Parse(format!("'{key}' is not hex")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TableConfig {
        TableConfig {
            samples: 1 << 10,
            seed: 7,
            cycles: 16,
            threads: Threads::Fixed(2),
        }
    }

    #[test]
    fn characterize_round_trips_bit_exactly() {
        let cfg = tiny_config();
        let table = QosTable::characterize(&cfg).unwrap();
        assert!(
            table.entries.len() >= 8,
            "zoo too small: {}",
            table.entries.len()
        );
        // Sorted by cost; the accurate anchor is the most expensive of
        // the zoo and every approximate design is cheaper.
        let accurate = table.entry("accurate").unwrap();
        assert!((accurate.cost - 1.0).abs() < 0.05, "{}", accurate.cost);
        assert!(table.entries[0].cost < accurate.cost);
        for pair in table.entries.windows(2) {
            assert!(pair[0].cost <= pair[1].cost, "entries must sort by cost");
        }
        // REALM16/t=0 must beat cALM on mean error (the paper's point).
        let realm = table.entry("realm:m=16,t=0").unwrap();
        let calm = table.entry("calm").unwrap();
        assert!(realm.mean_error < calm.mean_error);
        // The post-paper comparators join the characterized zoo, and
        // scaleTRIM's cross term beats plain Mitchell on mean error.
        let scaletrim = table.entry("scaletrim:t=6,c=1").unwrap();
        let ilm = table.entry("ilm:i=2").unwrap();
        assert!(scaletrim.mean_error < calm.mean_error);
        assert!(ilm.mean_error < calm.mean_error);

        let text = table.to_json();
        let back = QosTable::from_json(&text).unwrap();
        assert_eq!(back, table, "load must round-trip bit-exactly");
        assert_eq!(back.fingerprint, cfg.fingerprint());
    }

    #[test]
    fn tampered_and_stale_tables_are_rejected() {
        let dir = std::env::temp_dir().join(format!("qos-table-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = tiny_config();
        let table = QosTable::characterize(&cfg).unwrap();
        let path = dir.join("qos_tables.json");
        table.save(&path).unwrap();
        assert_eq!(
            QosTable::load(&path, Some(cfg.fingerprint())).unwrap(),
            table
        );

        // A loader expecting a different configuration refuses the file.
        let other = TableConfig {
            samples: 1 << 11,
            ..cfg
        };
        assert!(matches!(
            QosTable::load(&path, Some(other.fingerprint())),
            Err(QosError::StaleFingerprint { .. })
        ));

        // Flip one byte inside an entry: checksum catches it.
        let mut bytes = std::fs::read_to_string(&path).unwrap();
        let at = bytes.find("\"cost\"").unwrap();
        bytes.replace_range(at..at + 6, "\"c0st\"");
        assert!(matches!(
            QosTable::from_json(&bytes),
            Err(QosError::Checksum { .. })
        ));

        // Unknown schema: rejected after checksum passes.
        let alien = table
            .to_json()
            .replace("realm-qos/tables/v1", "realm-qos/tables/v9");
        // (schema is inside the checksummed region, so re-sign it)
        let err = QosTable::from_json(&alien).unwrap_err();
        assert!(
            matches!(err, QosError::Checksum { .. } | QosError::Unsupported(_)),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
