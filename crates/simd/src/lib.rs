//! # realm-simd
//!
//! Wide `multiply_batch` kernels for the characterization hot path: every
//! campaign family, all 13 experiment binaries, the `realm-par` chunk
//! workers, `realm-serve` jobs and the DNN substrate ultimately spend
//! their time in the monomorphic batch kernels of `Accurate`, `REALM`,
//! `cALM` and `DRUM`. Their datapaths — leading-one detect, fraction
//! extract, M×M LUT gather, shift/add reconstruction — are branch-free
//! per lane, so this crate expresses each of them four lanes at a time
//! with AVX2 intrinsics and picks the widest safe implementation once
//! per process.
//!
//! ## Kernel tiers
//!
//! | [`Tier`] | lanes | where |
//! |---|---|---|
//! | `Scalar` | 1 | everywhere (the always-correct fallback) |
//! | `Avx2`   | 4 × u64 | x86-64 with AVX2, detected at run time |
//!
//! The scalar tier is the reference: it is the exact per-lane arithmetic
//! the `realm-core`/`realm-baselines` designs executed before this crate
//! existed, hoisted into [`kernel`] so both tiers share one body of
//! truth. The AVX2 tier must be — and is exhaustively tested to be —
//! **bit-identical** to the scalar tier for every in-range operand pair,
//! including the remainder lanes of batches whose length is not a
//! multiple of the vector width. Approximate multipliers tolerate error
//! by design, but *which* error is part of the reproduced paper's
//! contract, so acceleration is never allowed to change a single bit.
//!
//! ## Dispatch rules
//!
//! [`active_tier`] is resolved once per process, in this order:
//!
//! 1. If the `REALM_FORCE_SCALAR` environment variable is set to
//!    anything other than `0`/`false`/`off`/empty, the scalar tier is
//!    forced — the debugging and CI-differential override (the bench
//!    binaries expose it as `--force-scalar`).
//! 2. On x86-64, AVX2 is probed with `is_x86_feature_detected!`.
//! 3. Otherwise the scalar tier runs.
//!
//! The chosen tier is reported through the `realm-obs` metrics registry
//! (gauge `kernel_tier`) and recorded in `BENCH_throughput.json`, so
//! every artifact names the ISA tier that produced it. Benches and
//! differential tests can also pin a tier explicitly per call — every
//! kernel's `run` takes the tier as an argument precisely so both tiers
//! can be exercised inside one process.
//!
//! ## Portability notes
//!
//! * **NEON**: the same pipeline maps to 2 × u64 NEON lanes
//!   (`vclzq_u64` replaces the exponent-extraction trick and the LUT
//!   gather becomes `vqtbl` on the small `M ≤ 16` tables), but aarch64
//!   is not wired up yet; ARM hosts transparently take the scalar tier
//!   through the same dispatch path.
//! * **AVX-512** would double the lane count and provide native
//!   `vplzcntq`; deliberately out of scope while the hosted CI runners
//!   only guarantee AVX2.
//!
//! ## Safety
//!
//! This is the only crate in the workspace that contains `unsafe` code,
//! and all of it is confined to the `avx2` module: raw-pointer
//! loads/stores of operand blocks and the bounds-guaranteed LUT gather.
//! Kernel parameters are validated at construction (`new` returns
//! `Option`), so a kernel that exists cannot index its LUT out of
//! bounds.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::OnceLock;

pub mod kernel;

#[allow(unsafe_code)]
mod avx2;

pub use kernel::{AccurateKernel, CalmKernel, DrumKernel, IlmKernel, RealmKernel, ScaleTrimKernel};

/// The environment variable that forces the scalar tier
/// (`REALM_FORCE_SCALAR=1`), for debugging and CI differential runs.
pub const FORCE_SCALAR_ENV: &str = "REALM_FORCE_SCALAR";

/// One ISA tier of the batch-kernel layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Per-lane scalar arithmetic — the always-correct reference tier.
    Scalar,
    /// 4 × u64 lanes via AVX2 intrinsics (x86-64, runtime-detected).
    Avx2,
}

impl Tier {
    /// Stable lower-case name, as recorded in `BENCH_throughput.json`
    /// and campaign artifacts (`"scalar"`, `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
        }
    }

    /// Numeric code for the `kernel_tier` metrics gauge (gauges are
    /// `f64`-valued): 0 = scalar, 1 = AVX2.
    pub fn index(self) -> u8 {
        match self {
            Tier::Scalar => 0,
            Tier::Avx2 => 1,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether [`FORCE_SCALAR_ENV`] requests the scalar tier. Set-but-falsy
/// values (`0`, `false`, `off`, empty) leave dispatch alone, so CI can
/// pass the variable unconditionally and flip only its value.
pub fn force_scalar_requested() -> bool {
    match std::env::var(FORCE_SCALAR_ENV) {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

/// Whether the AVX2 tier can run on this machine (compile target plus
/// runtime CPUID probe). Independent of the scalar override.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves the dispatch rules right now, ignoring the process-wide
/// cache: scalar override first, then feature detection. Prefer
/// [`active_tier`] outside tests — kernels must not flip tiers midway
/// through a campaign.
pub fn detect_tier() -> Tier {
    if force_scalar_requested() {
        return Tier::Scalar;
    }
    if avx2_available() {
        Tier::Avx2
    } else {
        Tier::Scalar
    }
}

/// The tier every `multiply_batch` runs on, selected once per process
/// (first call wins; later changes to [`FORCE_SCALAR_ENV`] are
/// deliberately ignored so a campaign never mixes tiers).
pub fn active_tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(Tier::Scalar.name(), "scalar");
        assert_eq!(Tier::Avx2.name(), "avx2");
        assert_eq!(Tier::Scalar.index(), 0);
        assert_eq!(Tier::Avx2.index(), 1);
        assert_eq!(Tier::Avx2.to_string(), "avx2");
    }

    #[test]
    fn active_tier_is_sticky() {
        assert_eq!(active_tier(), active_tier());
    }

    #[test]
    fn detection_is_consistent_with_availability() {
        if !avx2_available() {
            assert_eq!(detect_tier(), Tier::Scalar);
        } else if !force_scalar_requested() {
            assert_eq!(detect_tier(), Tier::Avx2);
        }
    }
}
