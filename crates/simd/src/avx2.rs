//! AVX2 bodies of the four batch kernels: 4 × u64 lanes per iteration,
//! remainder lanes through the kernels' scalar `lane` functions so every
//! batch length is handled and the tail is bit-identical by shared code.
//!
//! Lane recipe (shared by the log-based kernels):
//!
//! * **Leading-one detect** — no 64-bit `lzcnt` exists in AVX2, so each
//!   operand is turned into the double `2^52 + v` (exponent-field OR,
//!   exact for `v < 2^52`; all in-range operands are `< 2^32`), `2^52`
//!   is subtracted in floating point, and the biased exponent read back
//!   is `floor(log2 v) + 1023`.
//! * **Barrel shifts** — per-lane variable shifts are `vpsllvq`/
//!   `vpsrlvq`, which conveniently produce 0 for any count ≥ 64; the
//!   select-by-sign final scaling computes both shift directions and
//!   blends on the sign of the exponent difference.
//! * **M×M LUT gather** — segment indices are concatenated to one
//!   row-major offset and the quantized factor codes are fetched with
//!   `vpgatherqd`; kernel construction guarantees every index is in
//!   bounds, zero operands included (they are re-pointed at 1 and the
//!   lane result is masked to 0 afterwards, mirroring the scalar
//!   short-circuit).
//! * **Saturation** — products stay below `2^63` for every supported
//!   width, so signed 64-bit compares implement the unsigned clamp.
//!
//! On non-x86-64 targets the module degrades to stubs that report "not
//! handled", sending every batch to the scalar tier.

#[cfg(target_arch = "x86_64")]
mod imp {
    use crate::kernel::{AccurateKernel, CalmKernel, DrumKernel, RealmKernel};
    use core::arch::x86_64::*;

    const LANES: usize = 4;

    /// `(u64, u64)` is `repr(Rust)`: the in-memory order of the two
    /// halves is unspecified, so resolve at compile time which half of
    /// each 16-byte pair is `.0` and swap the unpacked vectors if the
    /// compiler flipped them.
    const A_FIRST: bool = core::mem::offset_of!((u64, u64), 0) == 0;

    #[inline]
    #[target_feature(enable = "avx2")]
    fn splat(x: u64) -> __m256i {
        _mm256_set1_epi64x(x as i64)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn count(x: u32) -> __m128i {
        _mm_cvtsi64_si128(x as i64)
    }

    /// Loads 4 operand pairs as `(a_lanes, b_lanes)`, both in the
    /// permuted order `[0, 2, 1, 3]` that [`store_lanes`] undoes.
    ///
    /// # Safety
    ///
    /// `p` must be valid for reading 4 consecutive pairs (64 bytes).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_pairs(p: *const (u64, u64)) -> (__m256i, __m256i) {
        // SAFETY: caller guarantees 64 readable bytes; unaligned loads.
        let (v0, v1) = unsafe {
            (
                _mm256_loadu_si256(p as *const __m256i),
                _mm256_loadu_si256(p.add(2) as *const __m256i),
            )
        };
        let first = _mm256_unpacklo_epi64(v0, v1);
        let second = _mm256_unpackhi_epi64(v0, v1);
        if A_FIRST {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Stores 4 product lanes produced in the `[0, 2, 1, 3]` order of
    /// [`load_pairs`] back in batch order.
    ///
    /// # Safety
    ///
    /// `out` must be valid for writing 4 `u64` (32 bytes).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_lanes(out: *mut u64, permuted: __m256i) {
        let ordered = _mm256_permute4x64_epi64::<0b11_01_10_00>(permuted);
        // SAFETY: caller guarantees 32 writable bytes; unaligned store.
        unsafe { _mm256_storeu_si256(out as *mut __m256i, ordered) };
    }

    /// `floor(log2 v)` per lane, exact for `1 ≤ v < 2^52`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn floor_log2(v: __m256i) -> __m256i {
        const MAGIC: u64 = 0x4330_0000_0000_0000; // 2^52 as f64 bits
        let wide = _mm256_or_si256(v, splat(MAGIC)); // == 2^52 + v
        let norm = _mm256_sub_pd(_mm256_castsi256_pd(wide), _mm256_castsi256_pd(splat(MAGIC)));
        _mm256_sub_epi64(
            _mm256_srli_epi64::<52>(_mm256_castpd_si256(norm)),
            splat(1023),
        )
    }

    /// Zero-operand handling: returns `(zero_lane_mask, a_or_1, b_or_1)`
    /// — lanes with a zero operand are re-pointed at 1 so the log
    /// pipeline stays in range, and the caller masks their result to 0.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn guard_zeros(a: __m256i, b: __m256i) -> (__m256i, __m256i, __m256i) {
        let zero = _mm256_setzero_si256();
        let one = splat(1);
        let za = _mm256_cmpeq_epi64(a, zero);
        let zb = _mm256_cmpeq_epi64(b, zero);
        (
            _mm256_or_si256(za, zb),
            _mm256_or_si256(a, _mm256_and_si256(za, one)),
            _mm256_or_si256(b, _mm256_and_si256(zb, one)),
        )
    }

    /// Final barrel shift + unsigned clamp: `mant · 2^(exp − f)`,
    /// floored, saturated at `maxp`. All values are `< 2^63`, so the
    /// signed compares are exact.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn scale_and_clamp(mant: __m256i, exp: __m256i, fv: __m256i, maxp: __m256i) -> __m256i {
        let zero = _mm256_setzero_si256();
        let shl = _mm256_sub_epi64(exp, fv);
        let shr = _mm256_sub_epi64(fv, exp);
        let val = _mm256_blendv_epi8(
            _mm256_sllv_epi64(mant, shl),
            _mm256_srlv_epi64(mant, shr),
            _mm256_cmpgt_epi64(zero, shl),
        );
        _mm256_blendv_epi8(val, maxp, _mm256_cmpgt_epi64(val, maxp))
    }

    #[target_feature(enable = "avx2")]
    fn accurate_body(k: &AccurateKernel, pairs: &[(u64, u64)], out: &mut [u64]) {
        let n = pairs.len() - pairs.len() % LANES;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 ≤ n ≤ len for both slices.
            let (a, b) = unsafe { load_pairs(pairs.as_ptr().add(i)) };
            let p = _mm256_mul_epu32(a, b); // 32×32→64 per lane; N ≤ 32
                                            // SAFETY: as above.
            unsafe { store_lanes(out.as_mut_ptr().add(i), p) };
            i += LANES;
        }
        for (slot, &(a, b)) in out[n..].iter_mut().zip(&pairs[n..]) {
            *slot = k.lane(a, b);
        }
    }

    #[target_feature(enable = "avx2")]
    fn calm_body(k: &CalmKernel, pairs: &[(u64, u64)], out: &mut [u64]) {
        let f = k.fraction_bits();
        let one = splat(1);
        let fv = splat(f as u64);
        let implied = splat(1u64 << f);
        let maxp = splat(k.max_product());
        let f_cnt = count(f);
        let n = pairs.len() - pairs.len() % LANES;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 ≤ n ≤ len for both slices.
            let (a, b) = unsafe { load_pairs(pairs.as_ptr().add(i)) };
            let (zmask, a, b) = guard_zeros(a, b);
            let ka = floor_log2(a);
            let kb = floor_log2(b);
            // fa = (a − 2^ka) << (f − ka): clear the leading one, then
            // left-align the mantissa under the binary point.
            let fa = _mm256_sllv_epi64(
                _mm256_xor_si256(a, _mm256_sllv_epi64(one, ka)),
                _mm256_sub_epi64(fv, ka),
            );
            let fb = _mm256_sllv_epi64(
                _mm256_xor_si256(b, _mm256_sllv_epi64(one, kb)),
                _mm256_sub_epi64(fv, kb),
            );
            let fsum = _mm256_add_epi64(fa, fb);
            let carry = _mm256_cmpeq_epi64(_mm256_srl_epi64(fsum, f_cnt), one);
            let ksum = _mm256_add_epi64(ka, kb);
            let mant = _mm256_blendv_epi8(_mm256_add_epi64(implied, fsum), fsum, carry);
            let exp = _mm256_blendv_epi8(ksum, _mm256_add_epi64(ksum, one), carry);
            let val = scale_and_clamp(mant, exp, fv, maxp);
            // SAFETY: as above.
            unsafe { store_lanes(out.as_mut_ptr().add(i), _mm256_andnot_si256(zmask, val)) };
            i += LANES;
        }
        for (slot, &(a, b)) in out[n..].iter_mut().zip(&pairs[n..]) {
            *slot = k.lane(a, b);
        }
    }

    #[target_feature(enable = "avx2")]
    fn drum_body(k: &DrumKernel, pairs: &[(u64, u64)], out: &mut [u64]) {
        let one = splat(1);
        let frag = splat(k.fragment() as u64);
        let frag_m1 = splat((k.fragment() - 1) as u64);
        let n = pairs.len() - pairs.len() % LANES;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 ≤ n ≤ len for both slices.
            let (a, b) = unsafe { load_pairs(pairs.as_ptr().add(i)) };
            let (zmask, a, b) = guard_zeros(a, b);
            let pa = floor_log2(a);
            let pb = floor_log2(b);
            // shift = p − k + 1; fragment = ((v >> shift) | 1) << shift.
            // Lanes with p < k get a negative (huge unsigned) count and
            // produce garbage, but are blended back to the exact value.
            let sha = _mm256_sub_epi64(pa, frag_m1);
            let shb = _mm256_sub_epi64(pb, frag_m1);
            let fa = _mm256_sllv_epi64(_mm256_or_si256(_mm256_srlv_epi64(a, sha), one), sha);
            let fb = _mm256_sllv_epi64(_mm256_or_si256(_mm256_srlv_epi64(b, shb), one), shb);
            let av = _mm256_blendv_epi8(fa, a, _mm256_cmpgt_epi64(frag, pa));
            let bv = _mm256_blendv_epi8(fb, b, _mm256_cmpgt_epi64(frag, pb));
            let prod = _mm256_mul_epu32(av, bv); // fragments are < 2^32
                                                 // SAFETY: as above.
            unsafe { store_lanes(out.as_mut_ptr().add(i), _mm256_andnot_si256(zmask, prod)) };
            i += LANES;
        }
        for (slot, &(a, b)) in out[n..].iter_mut().zip(&pairs[n..]) {
            *slot = k.lane(a, b);
        }
    }

    #[target_feature(enable = "avx2")]
    fn realm_body(k: &RealmKernel, pairs: &[(u64, u64)], out: &mut [u64]) {
        let (f, q) = (k.fraction_bits(), k.precision());
        let one = splat(1);
        let mask = splat(k.mask());
        let full_fv = splat(k.full_fraction_bits() as u64);
        let fv = splat(f as u64);
        let implied = splat(1u64 << f);
        let maxp = splat(k.max_product());
        let t_cnt = count(k.truncation());
        let f_cnt = count(f);
        let idx_cnt = count(k.idx_shift());
        let row_cnt = count(k.index_bits());
        // The correction aligns the q-bit code under the f fraction
        // bits; the direction is uniform per kernel.
        let corr_left = f >= q;
        let corr_cnt = count(if corr_left { f - q } else { q - f });
        let codes = k.codes().as_ptr() as *const i32;
        let n = pairs.len() - pairs.len() % LANES;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 ≤ n ≤ len for both slices.
            let (a, b) = unsafe { load_pairs(pairs.as_ptr().add(i)) };
            let a = _mm256_and_si256(a, mask);
            let b = _mm256_and_si256(b, mask);
            let (zmask, a, b) = guard_zeros(a, b);
            let ka = floor_log2(a);
            let kb = floor_log2(b);
            // fa = (((a − 2^ka) << (full_f − ka)) >> t) | 1 — encode,
            // truncate, force the surviving LSB.
            let fa = _mm256_or_si256(
                _mm256_srl_epi64(
                    _mm256_sllv_epi64(
                        _mm256_xor_si256(a, _mm256_sllv_epi64(one, ka)),
                        _mm256_sub_epi64(full_fv, ka),
                    ),
                    t_cnt,
                ),
                one,
            );
            let fb = _mm256_or_si256(
                _mm256_srl_epi64(
                    _mm256_sllv_epi64(
                        _mm256_xor_si256(b, _mm256_sllv_epi64(one, kb)),
                        _mm256_sub_epi64(full_fv, kb),
                    ),
                    t_cnt,
                ),
                one,
            );
            // Row-major LUT offset (i << log2 M) | j, then vpgatherqd.
            // Kernel construction bounds every index below M², and the
            // zero-guard keeps even dead lanes in range.
            let idx = _mm256_or_si256(
                _mm256_sll_epi64(_mm256_srl_epi64(fa, idx_cnt), row_cnt),
                _mm256_srl_epi64(fb, idx_cnt),
            );
            // SAFETY: every lane of `idx` is < codes.len() (see above);
            // the gather reads 4 in-bounds u32 values.
            let s = _mm256_cvtepu32_epi64(unsafe { _mm256_i64gather_epi32::<4>(codes, idx) });
            let corr = if corr_left {
                _mm256_sll_epi64(s, corr_cnt)
            } else {
                _mm256_srl_epi64(s, corr_cnt)
            };
            let fsum = _mm256_add_epi64(fa, fb);
            let carry = _mm256_cmpeq_epi64(_mm256_srl_epi64(fsum, f_cnt), one);
            // On fraction carry the correction is halved (the s/2 mux).
            let corr_eff = _mm256_blendv_epi8(corr, _mm256_srli_epi64::<1>(corr), carry);
            let base = _mm256_add_epi64(fsum, corr_eff);
            let ksum = _mm256_add_epi64(ka, kb);
            let mant = _mm256_blendv_epi8(_mm256_add_epi64(implied, base), base, carry);
            let exp = _mm256_blendv_epi8(ksum, _mm256_add_epi64(ksum, one), carry);
            let val = scale_and_clamp(mant, exp, fv, maxp);
            // SAFETY: as above.
            unsafe { store_lanes(out.as_mut_ptr().add(i), _mm256_andnot_si256(zmask, val)) };
            i += LANES;
        }
        for (slot, &(a, b)) in out[n..].iter_mut().zip(&pairs[n..]) {
            *slot = k.lane(a, b);
        }
    }

    /// Runs the AVX2 body when the CPU supports it; `false` sends the
    /// batch to the scalar tier.
    macro_rules! dispatch {
        ($name:ident, $body:ident, $kernel:ty) => {
            pub(crate) fn $name(k: &$kernel, pairs: &[(u64, u64)], out: &mut [u64]) -> bool {
                if !crate::avx2_available() {
                    return false;
                }
                // SAFETY: AVX2 presence was verified at run time on the
                // line above; the body has no other preconditions.
                unsafe { $body(k, pairs, out) };
                true
            }
        };
    }

    dispatch!(run_accurate, accurate_body, AccurateKernel);
    dispatch!(run_calm, calm_body, CalmKernel);
    dispatch!(run_drum, drum_body, DrumKernel);
    dispatch!(run_realm, realm_body, RealmKernel<'_>);
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    //! Non-x86-64 stub: no wide tier exists (see the NEON note in the
    //! crate docs), so every batch reports "not handled" and runs on
    //! the scalar tier.
    use crate::kernel::{AccurateKernel, CalmKernel, DrumKernel, RealmKernel};

    pub(crate) fn run_accurate(_: &AccurateKernel, _: &[(u64, u64)], _: &mut [u64]) -> bool {
        false
    }
    pub(crate) fn run_calm(_: &CalmKernel, _: &[(u64, u64)], _: &mut [u64]) -> bool {
        false
    }
    pub(crate) fn run_drum(_: &DrumKernel, _: &[(u64, u64)], _: &mut [u64]) -> bool {
        false
    }
    pub(crate) fn run_realm(_: &RealmKernel<'_>, _: &[(u64, u64)], _: &mut [u64]) -> bool {
        false
    }
}

pub(crate) use imp::{run_accurate, run_calm, run_drum, run_realm};
