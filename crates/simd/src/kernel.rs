//! The four accelerated batch kernels, each as a small parameter block
//! with one scalar `lane` function (the reference arithmetic, hoisted
//! verbatim from the designs' monomorphic loops) and one `run` entry
//! that executes a whole batch on a chosen [`Tier`].
//!
//! Construction validates every parameter (`new` returns `Option`), so
//! an existing kernel can never shift by more than its operand width or
//! gather outside its LUT. `run` is total over both tiers: asking for
//! [`Tier::Avx2`] on a machine without AVX2 silently degrades to the
//! scalar loop rather than faulting, which keeps explicit-tier callers
//! (benches, differential tests) portable.

use crate::{avx2, Tier};

/// Panics unless `pairs` and `out` have equal length — the same
/// contract, with the same message, as `multiply_batch` everywhere else
/// in the workspace.
fn check_lanes(pairs: &[(u64, u64)], out: &mut [u64]) {
    assert_eq!(
        pairs.len(),
        out.len(),
        "multiply_batch needs one output slot per operand pair"
    );
}

/// Exact `N ≤ 32`-bit reference multiplier kernel (`a * b` per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccurateKernel {
    width: u32,
}

impl AccurateKernel {
    /// Kernel for `width`-bit operands; `None` outside `1..=32` (wider
    /// products would overflow the 64-bit product lanes).
    pub fn new(width: u32) -> Option<Self> {
        (1..=32)
            .contains(&width)
            .then_some(AccurateKernel { width })
    }

    /// One scalar lane — bit-identical to `Accurate::multiply`.
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        debug_assert!(
            a >> self.width == 0,
            "operand a exceeds {} bits",
            self.width
        );
        debug_assert!(
            b >> self.width == 0,
            "operand b exceeds {} bits",
            self.width
        );
        a * b
    }

    /// Multiplies every pair on the requested tier.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        if tier == Tier::Avx2 && avx2::run_accurate(self, pairs, out) {
            return;
        }
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

/// Mitchell's classical log multiplier (cALM) kernel: encode both
/// operands, add the logs, take the antilog — no correction term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalmKernel {
    /// Fraction bits `N − 1`.
    fraction_bits: u32,
    /// Saturation ceiling `2^(2N) − 1`.
    max_product: u64,
}

impl CalmKernel {
    /// Kernel for `width`-bit operands; `None` outside `4..=31` (width
    /// 32 needs the u128 wide path the designs keep as fallback).
    pub fn new(width: u32) -> Option<Self> {
        (4..=31).contains(&width).then(|| CalmKernel {
            fraction_bits: width - 1,
            max_product: (1u64 << (2 * width)) - 1,
        })
    }

    /// One scalar lane — bit-identical to the narrow monomorphic loop
    /// of `realm_baselines::Calm::multiply_batch`.
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 {
            return 0;
        }
        let f = self.fraction_bits;
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let fa = (a - (1u64 << ka)) << (f - ka);
        let fb = (b - (1u64 << kb)) << (f - kb);
        let fsum = fa + fb;
        let k_sum = ka + kb;
        let (mantissa, exponent) = if fsum >> f == 0 {
            ((1u64 << f) + fsum, k_sum)
        } else {
            (fsum, k_sum + 1)
        };
        let shift = exponent as i32 - f as i32;
        let value = if shift >= 0 {
            mantissa << shift
        } else {
            mantissa >> -shift
        };
        value.min(self.max_product)
    }

    /// Fraction bits `N − 1`.
    pub fn fraction_bits(&self) -> u32 {
        self.fraction_bits
    }

    /// Saturation ceiling `2^(2N) − 1`.
    pub fn max_product(&self) -> u64 {
        self.max_product
    }

    /// Multiplies every pair on the requested tier.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        if tier == Tier::Avx2 && avx2::run_calm(self, pairs, out) {
            return;
        }
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

/// DRUM kernel: `k`-bit leading fragment with forced LSB per operand,
/// exact product of the fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrumKernel {
    fragment: u32,
}

impl DrumKernel {
    /// Kernel for `width`-bit operands with fragment `k`; `None`
    /// outside the design's own envelope (`4 ≤ width ≤ 32`,
    /// `3 ≤ k ≤ width`).
    pub fn new(width: u32, fragment: u32) -> Option<Self> {
        ((4..=32).contains(&width) && (3..=width).contains(&fragment))
            .then_some(DrumKernel { fragment })
    }

    /// One scalar lane — bit-identical to the monomorphic loop of
    /// `realm_baselines::Drum::multiply_batch`.
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 {
            return 0;
        }
        let k = self.fragment;
        let pa = 63 - a.leading_zeros();
        let a = if pa < k {
            a
        } else {
            let shift = pa - k + 1;
            ((a >> shift) | 1) << shift
        };
        let pb = 63 - b.leading_zeros();
        let b = if pb < k {
            b
        } else {
            let shift = pb - k + 1;
            ((b >> shift) | 1) << shift
        };
        a * b
    }

    /// The fragment width `k`.
    pub fn fragment(&self) -> u32 {
        self.fragment
    }

    /// Multiplies every pair on the requested tier.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        if tier == Tier::Avx2 && avx2::run_drum(self, pairs, out) {
            return;
        }
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

/// REALM kernel: Mitchell's pipeline plus the truncate-and-set-LSB
/// conditioning and the M×M quantized error-reduction LUT.
///
/// Borrows the LUT code slice from the owning `Realm`, so building one
/// per `multiply_batch` call is free of allocation and table copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealmKernel<'a> {
    /// Operand mask `2^N − 1` (REALM is total over u64: out-of-range
    /// operands are masked to the hardware's input-port width).
    mask: u64,
    /// Fraction LSBs dropped (`t`).
    truncation: u32,
    /// Pre-truncation fraction bits `N − 1`.
    full_f: u32,
    /// Surviving fraction bits `N − 1 − t`.
    f: u32,
    /// LUT fractional precision `q`.
    precision: u32,
    /// `log2 M` — segment-index bits per axis.
    index_bits: u32,
    /// Fraction bits below the segment index (`f − log2 M`).
    idx_shift: u32,
    /// Saturation ceiling `2^(2N) − 1`.
    max_product: u64,
    /// The quantized `M × M` factor codes, row-major.
    codes: &'a [u32],
}

impl<'a> RealmKernel<'a> {
    /// Kernel over a validated parameter set; `None` when any invariant
    /// the vector body relies on does not hold (width outside `4..=31`
    /// — width 32 keeps the designs' u128 wide path — non-power-of-two
    /// segment count, a LUT of the wrong size, or a truncation that
    /// leaves fewer fraction bits than the segment index needs).
    pub fn new(
        width: u32,
        segments: u32,
        truncation: u32,
        precision: u32,
        codes: &'a [u32],
    ) -> Option<Self> {
        if !(4..=31).contains(&width) || !(2..=256).contains(&segments) {
            return None;
        }
        if !segments.is_power_of_two() || precision == 0 {
            return None;
        }
        if codes.len() != (segments as usize).pow(2) {
            return None;
        }
        let index_bits = segments.trailing_zeros();
        let full_f = width - 1;
        if truncation >= full_f {
            return None;
        }
        let f = full_f - truncation;
        if f < index_bits {
            return None;
        }
        Some(RealmKernel {
            mask: (1u64 << width) - 1,
            truncation,
            full_f,
            f,
            precision,
            index_bits,
            idx_shift: f - index_bits,
            max_product: (1u64 << (2 * width)) - 1,
            codes,
        })
    }

    /// One scalar lane — bit-identical to the narrow monomorphic loop
    /// of `realm_core::Realm::multiply_batch` (and therefore to the
    /// scalar `multiply` datapath, which the core test suite proves
    /// exhaustively).
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & self.mask, b & self.mask);
        if a == 0 || b == 0 {
            return 0; // zero-operand special case
        }
        let (t, full_f, f, q) = (self.truncation, self.full_f, self.f, self.precision);
        // LOD + barrel shift, then truncate-and-set-LSB.
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let fa = (((a - (1u64 << ka)) << (full_f - ka)) >> t) | 1;
        let fb = (((b - (1u64 << kb)) << (full_f - kb)) >> t) | 1;
        // LUT mux on the concatenated fraction MSBs.
        let idx = (((fa >> self.idx_shift) << self.index_bits) | (fb >> self.idx_shift)) as usize;
        let s = self.codes[idx] as u64;
        // Log add, carry-halved correction inject, final barrel shift.
        let fsum = fa + fb;
        let carry = fsum >> f;
        let corr_f = if f >= q { s << (f - q) } else { s >> (q - f) };
        let corr_eff = if carry == 1 { corr_f >> 1 } else { corr_f };
        let k_sum = ka + kb;
        let (mantissa, exponent) = if carry == 0 {
            ((1u64 << f) + fsum + corr_eff, k_sum)
        } else {
            (fsum + corr_eff, k_sum + 1)
        };
        let shift = exponent as i32 - f as i32;
        let value = if shift >= 0 {
            mantissa << shift
        } else {
            mantissa >> -shift
        };
        value.min(self.max_product)
    }

    /// Operand mask `2^N − 1`.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Surviving fraction bits `N − 1 − t`.
    pub fn fraction_bits(&self) -> u32 {
        self.f
    }

    /// Fraction LSBs dropped (`t`).
    pub fn truncation(&self) -> u32 {
        self.truncation
    }

    /// LUT fractional precision `q`.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// `log2 M`.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Fraction bits below the segment index.
    pub fn idx_shift(&self) -> u32 {
        self.idx_shift
    }

    /// Saturation ceiling `2^(2N) − 1`.
    pub fn max_product(&self) -> u64 {
        self.max_product
    }

    /// Pre-truncation fraction bits `N − 1`.
    pub fn full_fraction_bits(&self) -> u32 {
        self.full_f
    }

    /// The quantized factor codes, row-major `M × M`.
    pub fn codes(&self) -> &'a [u32] {
        self.codes
    }

    /// Multiplies every pair on the requested tier.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        if tier == Tier::Avx2 && avx2::run_realm(self, pairs, out) {
            return;
        }
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

/// scaleTRIM kernel: leading-one decomposition, truncated `t × t`
/// cross-term product, optional linearized compensation.
///
/// No AVX2 specialization exists yet — [`run`](Self::run) executes the
/// scalar lanes on every tier (the tier argument is accepted so callers
/// stay uniform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleTrimKernel {
    /// Fraction bits `N − 1`.
    fraction_bits: u32,
    /// Cross-term bits kept per operand.
    truncation: u32,
    /// Whether the compensation constant is added.
    compensate: bool,
    /// Saturation ceiling `2^(2N) − 1`.
    max_product: u64,
}

impl ScaleTrimKernel {
    /// Kernel for `width`-bit operands; `None` outside `4..=31` (width
    /// 32 up needs the u128 path the design keeps as fallback) or for
    /// `t` outside `2..=min(8, width − 1)`.
    pub fn new(width: u32, truncation: u32, compensate: bool) -> Option<Self> {
        ((4..=31).contains(&width) && (2..=8).contains(&truncation) && truncation < width).then(
            || ScaleTrimKernel {
                fraction_bits: width - 1,
                truncation,
                compensate,
                max_product: (1u64 << (2 * width)) - 1,
            },
        )
    }

    /// One scalar lane — bit-identical to
    /// `realm_baselines::ScaleTrim::multiply`.
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 {
            return 0;
        }
        let f = self.fraction_bits;
        let t = self.truncation;
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let fx = (a - (1u64 << ka)) << (f - ka);
        let fy = (b - (1u64 << kb)) << (f - kb);
        let xa = fx >> (f - t);
        let ya = fy >> (f - t);
        let pp = xa * ya;
        let corr = if self.compensate {
            (pp << 2) + ((xa + ya) << 1) + 1
        } else {
            pp << 2
        };
        let corr_bits = 2 * t + 2;
        let corr_f = if f >= corr_bits {
            corr << (f - corr_bits)
        } else {
            corr >> (corr_bits - f)
        };
        // mantissa < 4·2^f and the up-shift is at most width − 1, so the
        // widest lane value is < 2^62 at width 31: u64 is enough.
        let mantissa = (1u64 << f) + fx + fy + corr_f;
        let shift = (ka + kb) as i32 - f as i32;
        let value = if shift >= 0 {
            mantissa << shift
        } else {
            mantissa >> -shift
        };
        value.min(self.max_product)
    }

    /// Multiplies every pair; every tier runs the scalar lanes.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, _tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

/// Iterative log multiplier (ILM) kernel: leading-one decomposition of
/// both operands, one or two refinement iterations over the residues.
///
/// No AVX2 specialization exists yet — [`run`](Self::run) executes the
/// scalar lanes on every tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlmKernel {
    iterations: u32,
}

impl IlmKernel {
    /// Kernel for `width`-bit operands; `None` outside `4..=32` (the
    /// approximation is bounded by the exact product, which fits u64 at
    /// width 32) or iterations outside `1..=2`.
    pub fn new(width: u32, iterations: u32) -> Option<Self> {
        ((4..=32).contains(&width) && (1..=2).contains(&iterations))
            .then_some(IlmKernel { iterations })
    }

    /// One scalar lane — bit-identical to
    /// `realm_baselines::Ilm::multiply`.
    #[inline]
    pub fn lane(&self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 {
            return 0;
        }
        let ka = 63 - a.leading_zeros();
        let kb = 63 - b.leading_zeros();
        let res_a = a ^ (1u64 << ka);
        let res_b = b ^ (1u64 << kb);
        let mut p = (a << kb) + (res_b << ka);
        if self.iterations == 2 && res_a != 0 && res_b != 0 {
            let ka2 = 63 - res_a.leading_zeros();
            let kb2 = 63 - res_b.leading_zeros();
            let res2_b = res_b ^ (1u64 << kb2);
            p += (res_a << kb2) + (res2_b << ka2);
        }
        p
    }

    /// Number of basic-block iterations (1 or 2).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Multiplies every pair; every tier runs the scalar lanes.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    pub fn run(&self, _tier: Tier, pairs: &[(u64, u64)], out: &mut [u64]) {
        check_lanes(pairs, out);
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = self.lane(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(AccurateKernel::new(0).is_none());
        assert!(AccurateKernel::new(33).is_none());
        assert!(AccurateKernel::new(16).is_some());
        assert!(CalmKernel::new(32).is_none(), "width 32 is the u128 path");
        assert!(CalmKernel::new(16).is_some());
        assert!(DrumKernel::new(16, 2).is_none());
        assert!(DrumKernel::new(16, 17).is_none());
        assert!(DrumKernel::new(16, 6).is_some());
        assert!(
            ScaleTrimKernel::new(32, 4, true).is_none(),
            "width 32 is the u128 path"
        );
        assert!(ScaleTrimKernel::new(16, 1, true).is_none());
        assert!(ScaleTrimKernel::new(16, 9, false).is_none());
        assert!(ScaleTrimKernel::new(4, 4, true).is_none(), "t > N - 1");
        assert!(ScaleTrimKernel::new(16, 6, false).is_some());
        assert!(IlmKernel::new(33, 2).is_none());
        assert!(IlmKernel::new(16, 0).is_none());
        assert!(IlmKernel::new(16, 3).is_none());
        assert!(IlmKernel::new(32, 2).is_some());
        let codes = vec![0u32; 16];
        assert!(RealmKernel::new(16, 4, 0, 6, &codes).is_some());
        assert!(RealmKernel::new(32, 4, 0, 6, &codes).is_none());
        assert!(RealmKernel::new(16, 3, 0, 6, &codes).is_none());
        assert!(RealmKernel::new(16, 4, 0, 6, &codes[..15]).is_none());
        assert!(RealmKernel::new(16, 4, 15, 6, &codes).is_none());
        // t = 12 leaves f = 3 ≥ log2(4) = 2 — legal for M = 4.
        assert!(RealmKernel::new(16, 4, 12, 6, &codes).is_some());
        // …but not for M = 16 (needs 4 index bits).
        let codes16 = vec![0u32; 256];
        assert!(RealmKernel::new(16, 16, 12, 6, &codes16).is_none());
    }

    #[test]
    fn tiers_agree_on_random_streams() {
        // Self-consistency: whatever tier actually runs must match the
        // scalar lane on a pseudo-random stream with a ragged tail.
        // (The cross-checks against the real designs live in the
        // realm-core / realm-baselines differential suites.)
        let codes: Vec<u32> = (0..64u32).map(|i| (i * 7) % 61).collect();
        let realm = RealmKernel::new(16, 8, 2, 6, &codes).unwrap();
        let calm = CalmKernel::new(16).unwrap();
        let drum = DrumKernel::new(16, 6).unwrap();
        let acc = AccurateKernel::new(16).unwrap();
        let strim = ScaleTrimKernel::new(16, 4, true).unwrap();
        let ilm = IlmKernel::new(16, 2).unwrap();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let pairs: Vec<(u64, u64)> = (0..1021)
            .map(|_| {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1442695040888963407);
                ((x >> 17) & 0xFFFF, (x >> 41) & 0xFFFF)
            })
            .collect();
        let mut simd = vec![0u64; pairs.len()];
        let mut scalar = vec![0u64; pairs.len()];
        for tier in [Tier::Scalar, Tier::Avx2] {
            realm.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = realm.lane(a, b);
            }
            assert_eq!(simd, scalar, "REALM kernel, tier {tier}");
            calm.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = calm.lane(a, b);
            }
            assert_eq!(simd, scalar, "cALM kernel, tier {tier}");
            drum.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = drum.lane(a, b);
            }
            assert_eq!(simd, scalar, "DRUM kernel, tier {tier}");
            acc.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = acc.lane(a, b);
            }
            assert_eq!(simd, scalar, "Accurate kernel, tier {tier}");
            strim.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = strim.lane(a, b);
            }
            assert_eq!(simd, scalar, "scaleTRIM kernel, tier {tier}");
            ilm.run(tier, &pairs, &mut simd);
            for (s, &(a, b)) in scalar.iter_mut().zip(&pairs) {
                *s = ilm.lane(a, b);
            }
            assert_eq!(simd, scalar, "ILM kernel, tier {tier}");
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per operand pair")]
    fn run_rejects_length_mismatch() {
        let k = AccurateKernel::new(16).unwrap();
        let mut out = [0u64; 2];
        k.run(Tier::Scalar, &[(1, 2), (3, 4), (5, 6)], &mut out);
    }
}
