//! Load generator for the campaign service: drives hundreds of
//! concurrent clients against a realm-serve instance and writes a
//! `BENCH_serve.json` with latency percentiles, throughput and the
//! observed shed rate.
//!
//! ```text
//! # self-contained: starts an in-process server, floods it, reports
//! cargo run --release -p realm-serve --bin serve-load -- --clients 256
//!
//! # or against an already-running server
//! cargo run --release -p realm-serve --bin serve-load -- \
//!     --addr 127.0.0.1:8787 --clients 256 --jobs-per-client 4
//! ```
//!
//! Clients deliberately outnumber the queue capacity so the run
//! exercises the 429 load-shed path: a shed submission backs off and
//! retries, and both the shed count and the retry-until-accepted
//! latency show up in the report.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use realm_harness::atomic_write_str;
use realm_serve::client::{extract_u64_field, http_request, wait_terminal};
use realm_serve::{ServeConfig, Server};

fn die(context: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("serve-load: {context}: {detail}");
    std::process::exit(1)
}

#[derive(Clone)]
struct LoadOptions {
    addr: Option<SocketAddr>,
    clients: usize,
    jobs_per_client: usize,
    samples: u64,
    tenants: usize,
    queue_cap: usize,
    workers: usize,
    out: String,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: None,
            clients: 256,
            jobs_per_client: 2,
            samples: 1024,
            tenants: 8,
            queue_cap: 128,
            workers: 4,
            out: "BENCH_serve.json".into(),
        }
    }
}

#[derive(Default)]
struct Tally {
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    not_completed: AtomicU64,
    transport_errors: AtomicU64,
}

const DESIGNS: &[&str] = &["realm:m=16,t=0", "accurate", "drum:k=6", "mbm:t=2"];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One client's work: submit `jobs_per_client` jobs (retrying shed
/// submissions with backoff) and poll each to a terminal state.
/// Returns (submit_micros, e2e_micros) per job.
fn client(idx: usize, opts: &LoadOptions, addr: SocketAddr, tally: &Tally) -> Vec<(u64, u64)> {
    let tenant = format!("tenant-{}", idx % opts.tenants.max(1));
    let mut latencies = Vec::with_capacity(opts.jobs_per_client);
    for j in 0..opts.jobs_per_client {
        let design = DESIGNS[(idx + j) % DESIGNS.len()];
        let body = format!(
            "{{\"tenant\":\"{tenant}\",\"design\":\"{design}\",\"samples\":{},\
             \"seed\":{},\"priority\":{}}}",
            opts.samples,
            idx * opts.jobs_per_client + j,
            j % 3
        );
        let t0 = Instant::now();
        let mut id = None;
        for attempt in 0..600 {
            match http_request(addr, "POST", "/jobs", Some(&body)) {
                Ok((202, reply)) => {
                    tally.accepted.fetch_add(1, Ordering::Relaxed);
                    id = extract_u64_field(&reply, "id");
                    break;
                }
                Ok((429, _)) => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(20 + (attempt % 7) * 5));
                }
                Ok((status, reply)) => die(
                    "unexpected submit response",
                    format_args!("{status}: {reply}"),
                ),
                Err(_) => {
                    tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let Some(id) = id else {
            tally.not_completed.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let submit_us = t0.elapsed().as_micros() as u64;
        match wait_terminal(addr, id, Duration::from_secs(300)) {
            Ok(state) if state == "completed" => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                latencies.push((submit_us, t0.elapsed().as_micros() as u64));
            }
            Ok(_) | Err(_) => {
                tally.not_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    latencies
}

fn main() {
    let mut opts = LoadOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => die(name, "missing value"),
        };
        match flag.as_str() {
            "--addr" => {
                let text = value("--addr");
                opts.addr = Some(
                    text.parse()
                        .unwrap_or_else(|e| die("--addr", format_args!("'{text}': {e}"))),
                );
            }
            "--clients" => opts.clients = parse(value("--clients")),
            "--jobs-per-client" => opts.jobs_per_client = parse(value("--jobs-per-client")),
            "--samples" => opts.samples = parse(value("--samples")) as u64,
            "--tenants" => opts.tenants = parse(value("--tenants")),
            "--queue-cap" => opts.queue_cap = parse(value("--queue-cap")),
            "--workers" => opts.workers = parse(value("--workers")),
            "--out" => opts.out = value("--out"),
            other => die(other, "unknown flag"),
        }
    }

    // Self-contained mode: start an in-process server sized so the
    // client flood actually sheds.
    let mut own_server = None;
    let addr = match opts.addr {
        Some(addr) => addr,
        None => {
            let dir = std::env::temp_dir().join(format!("realm-serve-load-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let server = Server::start(ServeConfig {
                dir,
                workers: opts.workers,
                queue_capacity: opts.queue_cap,
                http_threads: 8,
                ..ServeConfig::default()
            })
            .unwrap_or_else(|e| die("in-process server", e));
            let addr = server.addr();
            own_server = Some(server);
            addr
        }
    };

    let total_jobs = opts.clients * opts.jobs_per_client;
    eprintln!(
        "serve-load: {} clients x {} jobs ({} total, {} samples each) -> {addr}",
        opts.clients, opts.jobs_per_client, total_jobs, opts.samples
    );

    let tally = Arc::new(Tally::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|idx| {
            let opts = opts.clone();
            let tally = tally.clone();
            std::thread::spawn(move || client(idx, &opts, addr, &tally))
        })
        .collect();
    let mut submit_us = Vec::with_capacity(total_jobs);
    let mut e2e_us = Vec::with_capacity(total_jobs);
    for handle in handles {
        if let Ok(latencies) = handle.join() {
            for (submit, e2e) in latencies {
                submit_us.push(submit);
                e2e_us.push(e2e);
            }
        }
    }
    let elapsed = t0.elapsed();
    submit_us.sort_unstable();
    e2e_us.sort_unstable();

    let accepted = tally.accepted.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let completed = tally.completed.load(Ordering::Relaxed);
    let attempts = accepted + shed;
    let shed_rate = if attempts == 0 {
        0.0
    } else {
        shed as f64 / attempts as f64
    };
    let throughput = completed as f64 / elapsed.as_secs_f64();

    let report = format!(
        "{{\n  \"schema\": \"realm-serve/bench/v1\",\n  \"clients\": {},\n  \
         \"jobs_per_client\": {},\n  \"samples_per_job\": {},\n  \"tenants\": {},\n  \
         \"elapsed_s\": {:.3},\n  \"accepted\": {accepted},\n  \"shed\": {shed},\n  \
         \"shed_rate\": {shed_rate:.4},\n  \"completed\": {completed},\n  \
         \"not_completed\": {},\n  \"transport_errors\": {},\n  \
         \"throughput_jobs_per_s\": {throughput:.2},\n  \
         \"submit_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n  \
         \"e2e_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}\n}}\n",
        opts.clients,
        opts.jobs_per_client,
        opts.samples,
        opts.tenants,
        elapsed.as_secs_f64(),
        tally.not_completed.load(Ordering::Relaxed),
        tally.transport_errors.load(Ordering::Relaxed),
        percentile(&submit_us, 0.50),
        percentile(&submit_us, 0.95),
        percentile(&submit_us, 0.99),
        percentile(&e2e_us, 0.50),
        percentile(&e2e_us, 0.95),
        percentile(&e2e_us, 0.99),
    );
    print!("{report}");
    if let Err(e) = atomic_write_str(std::path::Path::new(&opts.out), &report) {
        die("writing report", e);
    }
    eprintln!("serve-load: wrote {}", opts.out);

    if let Some(server) = own_server {
        if completed < total_jobs as u64 {
            eprintln!(
                "serve-load: {} of {total_jobs} jobs did not complete",
                total_jobs as u64 - completed
            );
        }
        if let Err(e) = server.shutdown() {
            die("server shutdown", e);
        }
    }
    // A load test that completed nothing is a failure, not a report.
    if completed == 0 {
        die("no jobs completed", "see counters above");
    }
}

fn parse(v: String) -> usize {
    match v.parse() {
        Ok(n) => n,
        Err(_) => die(
            "numeric flag",
            format_args!("'{v}' is not an unsigned integer"),
        ),
    }
}
