//! The campaign service daemon.
//!
//! ```text
//! cargo run --release -p realm-serve --bin realm-serve -- \
//!     --dir /var/lib/realm-serve --addr 127.0.0.1:8787 --workers 4
//! ```
//!
//! Binds the job API, recovers any jobs interrupted by a previous
//! crash, and serves until SIGTERM/SIGINT — which drains gracefully:
//! running jobs checkpoint at their next chunk boundary, new
//! submissions get 503, metrics are flushed to
//! `<dir>/metrics_summary.json`, and a subsequent start resumes the
//! interrupted jobs bit-identically.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use realm_harness::CancelToken;
use realm_serve::{ServeConfig, Server};

fn die(context: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("realm-serve: {context}: {detail}");
    std::process::exit(1)
}

fn usage() -> ! {
    eprintln!(
        "usage: realm-serve [--addr HOST:PORT] [--dir DIR] [--workers N] \
         [--queue-cap N] [--job-threads N] [--chunk-retries N] \
         [--http-threads N] [--trace]\n\n\
         --addr HOST:PORT  bind address (default 127.0.0.1:0; the chosen\n\
         \u{20}                 address is written to <dir>/serve.addr)\n\
         --dir DIR         service directory: ledgers, job journals, traces\n\
         --workers N       concurrent jobs (default 4)\n\
         --queue-cap N     admission queue capacity; beyond it, 429 (default 64)\n\
         --job-threads N   chunk threads per job, 0 = auto (default 1)\n\
         --chunk-retries N chunk retry budget inside each run (default 2)\n\
         --http-threads N  HTTP acceptor threads (default 4)\n\
         --trace           write per-job JSONL traces under <dir>/traces/\n\n\
         SIGTERM or Ctrl-C drains gracefully: running jobs checkpoint,\n\
         queued jobs persist, and the next start resumes them."
    );
    std::process::exit(2)
}

fn main() {
    let mut config = ServeConfig {
        // Wire the drain token to SIGTERM/SIGINT before anything runs.
        cancel: CancelToken::term_signals(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => die(name, "missing value"),
        };
        let parse = |name: &str, v: String| -> usize {
            match v.parse() {
                Ok(n) => n,
                Err(_) => die(name, format_args!("'{v}' is not an unsigned integer")),
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--dir" => config.dir = value("--dir").into(),
            "--workers" => config.workers = parse("--workers", value("--workers")),
            "--queue-cap" => config.queue_capacity = parse("--queue-cap", value("--queue-cap")),
            "--job-threads" => config.job_threads = parse("--job-threads", value("--job-threads")),
            "--chunk-retries" => {
                config.chunk_retries = parse("--chunk-retries", value("--chunk-retries")) as u32;
            }
            "--http-threads" => {
                config.http_threads = parse("--http-threads", value("--http-threads"));
            }
            "--trace" => config.trace_jobs = true,
            "--help" | "-h" => usage(),
            other => die(other, "unknown flag (try --help)"),
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => die("startup failed", e),
    };
    println!("realm-serve listening on {}", server.addr());

    while !server.drain_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("realm-serve: drain requested; checkpointing running jobs");
    if let Err(e) = server.shutdown() {
        die("shutdown flush failed", e);
    }
    eprintln!("realm-serve: drained cleanly");
}
