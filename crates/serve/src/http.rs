//! Just enough HTTP/1.1 to serve the job API over `std::net` — request
//! parsing with hard limits (hostile clients get a 4xx, never a panic
//! or an unbounded buffer), and response writing with explicit
//! `Content-Length` and `Connection: close` (one request per
//! connection keeps the threading model trivial and drain-friendly).

use std::io::{self, Read, Write};

/// Maximum bytes of request head (request line + headers) accepted.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body accepted (job specs are a few hundred bytes).
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are not used by this API
    /// and are kept attached).
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed — each maps to one status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers → 400.
    Malformed(&'static str),
    /// Declared body larger than [`MAX_BODY`] → 413.
    BodyTooLarge,
    /// The peer closed or timed out before a full request arrived.
    Io(io::ErrorKind),
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    // Read until the blank line ending the head, with a hard cap.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(ParseError::Io(io::ErrorKind::UnexpectedEof)),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(ParseError::Malformed("request head too large"));
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| ParseError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ParseError::Malformed("bad request line"));
    };

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(ParseError::Io(io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// One response to write back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length` and
    /// `Connection: close` are always emitted).
    pub headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error response with a uniform `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":{}}}\n", realm_obs::json_string(message)),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// The conventional reason phrase for the status codes this API
    /// emits.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response onto `stream` (errors are returned so the
    /// caller can drop the connection; a half-written response is the
    /// peer's problem at that point).
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{\"a\": 1}\n");
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let raw = b"GET /healthz HTTP/1.1\n\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn hostile_requests_are_bounded_errors() {
        let huge_head = vec![b'A'; MAX_HEAD + 10];
        assert!(matches!(
            read_request(&mut &huge_head[..]),
            Err(ParseError::Malformed(_)) | Err(ParseError::Io(_))
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        )
        .into_bytes();
        assert_eq!(
            read_request(&mut &huge_body[..]),
            Err(ParseError::BodyTooLarge)
        );
        let bad_len = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(matches!(
            read_request(&mut &bad_len[..]),
            Err(ParseError::Malformed(_))
        ));
        let truncated = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(
            read_request(&mut &truncated[..]),
            Err(ParseError::Io(_))
        ));
    }

    #[test]
    fn response_writes_status_line_headers_and_body() {
        let mut out = Vec::new();
        Response::json(202, "{\"id\":1}")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("content-length: 8\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"id\":1}"), "{text}");
    }

    #[test]
    fn error_shape_is_uniform() {
        let r = Response::error(429, "queue full");
        assert_eq!(r.status, 429);
        assert_eq!(r.body, b"{\"error\":\"queue full\"}\n");
    }
}
