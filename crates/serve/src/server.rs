//! The campaign service: HTTP front door, admission, a fixed worker
//! pool running jobs under per-job [`Supervisor`]s, retry/backoff,
//! crash recovery from the ledgers, and graceful drain.
//!
//! # Threading model
//!
//! * `http_threads` acceptor threads share one non-blocking listener;
//!   each serves one connection at a time (`Connection: close`).
//! * `workers` worker threads block on the [`AdmissionQueue`] and run
//!   one job at a time; each job gets its own supervisor (and may use
//!   `job_threads` chunk threads of its own).
//! * Shutdown: the cancel token stops running supervisors at their next
//!   chunk boundary (checkpointed), the queue closes (workers drain
//!   out, admission 503s), then the acceptors stop and the metrics
//!   summary is flushed.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use realm_harness::{atomic_write_str, discover, Backoff, CancelToken, StopCause, Supervisor};
use realm_metrics::{ErrorSla, ErrorSummary};
use realm_obs::{json_string, Collector, Event, Fanout, JsonlSink, Registry};
use realm_par::Threads;
use realm_qos::{Action, Controller, ControllerConfig, Observation, QosTable, TableConfig};

use crate::http::{read_request, ParseError, Request, Response};
use crate::job::{result_json, Job, JobId, JobRequest, JobState, Terminal};
use crate::json::{object, Json};
use crate::ledger::Ledgers;
use crate::queue::{AdmissionQueue, AdmitError, AdmitResult};

/// Server configuration (every knob has a serviceable default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the chosen address is
    /// written to `<dir>/serve.addr`).
    pub addr: String,
    /// Service directory: ledgers, per-job campaign journals
    /// (`jobs/`), per-job traces (`traces/`), `serve.addr`,
    /// `metrics_summary.json`.
    pub dir: PathBuf,
    /// Worker threads (concurrent jobs).
    pub workers: usize,
    /// Admission queue capacity — beyond this, submissions shed (429).
    pub queue_capacity: usize,
    /// Chunk threads per job supervisor (0 = auto).
    pub job_threads: usize,
    /// Chunk-level retry budget inside each supervisor run.
    pub chunk_retries: u32,
    /// Job-level retry backoff (base, cap); jitter is seeded per job.
    pub backoff_base: Duration,
    /// Cap for the job-level retry backoff.
    pub backoff_max: Duration,
    /// Whether to write a per-job JSONL trace under `<dir>/traces/`.
    pub trace_jobs: bool,
    /// HTTP acceptor threads.
    pub http_threads: usize,
    /// The shutdown/drain token (the binary passes a SIGTERM-wired
    /// token; tests cancel it directly).
    pub cancel: CancelToken,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            dir: std::env::temp_dir().join("realm-serve"),
            workers: 4,
            queue_capacity: 64,
            job_threads: 1,
            chunk_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            trace_jobs: false,
            http_threads: 4,
            cancel: CancelToken::new(),
        }
    }
}

/// What the API reports about one job.
#[derive(Debug, Clone)]
struct JobView {
    tenant: String,
    design: String,
    state: JobState,
    detail: String,
    attempts: u32,
    recovered: bool,
    result: Option<String>,
}

impl JobView {
    fn to_json(&self, id: JobId) -> String {
        object(&[
            ("id", id.to_string()),
            ("tenant", json_string(&self.tenant)),
            ("design", json_string(&self.design)),
            ("state", json_string(self.state.as_str())),
            ("detail", json_string(&self.detail)),
            ("attempts", self.attempts.to_string()),
            ("recovered", self.recovered.to_string()),
        ])
    }
}

struct State {
    config: ServeConfig,
    queue: AdmissionQueue,
    ledgers: Ledgers,
    registry: Arc<Registry>,
    jobs: Mutex<BTreeMap<JobId, JobView>>,
    next_id: AtomicU64,
    running: AtomicU64,
    draining: AtomicBool,
    accepting: AtomicBool,
    qos: Mutex<QosRuntime>,
}

/// Per-tenant error-budget bookkeeping: the characterized table (lazy,
/// persisted as `<dir>/qos_tables.json`) plus one SLA controller per
/// tenant.
#[derive(Default)]
struct QosRuntime {
    table: Option<QosTable>,
    controllers: BTreeMap<String, TenantQos>,
}

struct TenantQos {
    sla: String,
    controller: Controller,
}

/// The characterization the server runs when no (valid) table file is
/// on disk: small enough to regenerate inside one admission call, big
/// enough to rank the zoo.
fn qos_table_config() -> TableConfig {
    TableConfig {
        samples: 1 << 12,
        seed: 0xEA51_1AB5,
        cycles: 32,
        threads: Threads::Auto,
    }
}

impl State {
    fn view(&self, id: JobId) -> Option<JobView> {
        self.jobs.lock().ok()?.get(&id).cloned()
    }

    fn update(&self, id: JobId, f: impl FnOnce(&mut JobView)) {
        if let Ok(mut jobs) = self.jobs.lock() {
            if let Some(view) = jobs.get_mut(&id) {
                f(view);
            }
        }
    }

    fn refresh_gauges(&self) {
        self.registry
            .gauge("queue_depth", self.queue.depth() as f64);
        self.registry
            .gauge("jobs_running", self.running.load(Ordering::Relaxed) as f64);
        self.registry.gauge(
            "draining",
            if self.draining.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            },
        );
    }

    /// Binds a design for an `"auto"` submission: the tenant's
    /// controller picks the cheapest characterized configuration
    /// satisfying the SLA. The first SLA job pays for the table —
    /// loaded from `qos_tables.json` when its fingerprint matches,
    /// characterized (and saved) otherwise.
    fn qos_bind(&self, tenant: &str, sla: ErrorSla) -> Result<String, (u16, String)> {
        let mut qos = self
            .qos
            .lock()
            .map_err(|_| (500u16, "qos state poisoned".to_string()))?;
        if qos.table.is_none() {
            let cfg = qos_table_config();
            let path = self.config.dir.join("qos_tables.json");
            let table = match QosTable::load(&path, Some(cfg.fingerprint())) {
                Ok(table) => table,
                Err(_) => {
                    let table = QosTable::characterize(&cfg)
                        .map_err(|e| (500u16, format!("qos characterization failed: {e}")))?;
                    let _ = table.save(&path);
                    table
                }
            };
            qos.table = Some(table);
        }
        let table = qos
            .table
            .clone()
            .ok_or_else(|| (500u16, "qos table unavailable".to_string()))?;
        let sla_text = sla.text();
        let stale = qos
            .controllers
            .get(tenant)
            .is_none_or(|tc| tc.sla != sla_text);
        if stale {
            let controller = Controller::new(&table, sla, ControllerConfig::default())
                .map_err(|e| (400u16, e.to_string()))?;
            qos.controllers.insert(
                tenant.to_string(),
                TenantQos {
                    sla: sla_text,
                    controller,
                },
            );
        }
        let tc = qos
            .controllers
            .get(tenant)
            .ok_or_else(|| (500u16, "qos controller unavailable".to_string()))?;
        self.registry
            .gauge(&format!("qos_rung:{tenant}"), tc.controller.rung() as f64);
        Ok(tc.controller.current().design.clone())
    }

    /// Feeds a completed SLA job's delivered error back to the tenant's
    /// controller (error drift escalates the binding for the tenant's
    /// *next* job) and narrates any switch through the registry.
    fn qos_observe(&self, tenant: &str, design: &str, summary: &ErrorSummary) {
        let Ok(mut qos) = self.qos.lock() else { return };
        let Some(tc) = qos.controllers.get_mut(tenant) else {
            return;
        };
        // Only the controller-bound configuration is feedback for the
        // controller; explicitly-pinned designs are scored but not fed.
        if tc.controller.current().design != design {
            return;
        }
        let obs = Observation::new(summary.mean_error).with_peak_error(summary.peak_error());
        let target_mean = tc.controller.sla().mean.unwrap_or(0.0);
        let decision = tc.controller.observe(&obs);
        if decision.breached {
            self.registry.record(&Event::Escalation {
                scope: tenant.to_string(),
                config: decision.from.clone(),
                observed_mean: obs.mean_error,
                target_mean,
                fallback_rate: obs.fallback_rate,
            });
        }
        if decision.action != Action::Hold {
            self.registry.record(&Event::ConfigSwitch {
                scope: tenant.to_string(),
                from: decision.from.clone(),
                to: decision.to.clone(),
                reason: decision.reason.clone(),
            });
        }
        self.registry
            .gauge(&format!("qos_rung:{tenant}"), tc.controller.rung() as f64);
    }

    /// Best-effort removal of a finished job's campaign journal.
    fn remove_job_journal(&self, job: &Job) {
        let scope = job.scope();
        if let Ok(id) = job.request.spec.campaign_id(Some(&scope)) {
            let path = self.config.dir.join("jobs").join(id.journal_file_name());
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A running server (see the [module docs](self)).
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Recovers state from `config.dir`, binds the listener, and starts
    /// the worker and acceptor threads.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let dir = config.dir.clone();
        std::fs::create_dir_all(dir.join("jobs"))?;
        if config.trace_jobs {
            std::fs::create_dir_all(dir.join("traces"))?;
        }
        let (ledgers, recovered) = Ledgers::open(&dir).map_err(io::Error::other)?;

        let registry = Arc::new(Registry::new());
        let queue = AdmissionQueue::new(config.queue_capacity);
        let state = Arc::new(State {
            queue,
            ledgers,
            registry,
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(recovered.next_id),
            running: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            qos: Mutex::new(QosRuntime::default()),
            config,
        });

        // Replay terminal jobs so /jobs/<id> and /result survive
        // restarts, and sweep their leftover campaign journals (a crash
        // between record_done and journal removal leaves one behind).
        if let Ok(mut jobs) = state.jobs.lock() {
            for (job, terminal) in &recovered.terminal {
                jobs.insert(
                    job.id,
                    JobView {
                        tenant: job.request.tenant.clone(),
                        design: job.request.spec.design.clone(),
                        state: terminal.state,
                        detail: terminal.detail.clone(),
                        attempts: 0,
                        recovered: true,
                        result: terminal.result.clone(),
                    },
                );
            }
            for job in &recovered.incomplete {
                jobs.insert(
                    job.id,
                    JobView {
                        tenant: job.request.tenant.clone(),
                        design: job.request.spec.design.clone(),
                        state: JobState::Queued,
                        detail: "recovered after restart".into(),
                        attempts: 0,
                        recovered: true,
                        result: None,
                    },
                );
            }
        }
        for (job, terminal) in &recovered.terminal {
            // Dead-lettered jobs keep their journal for post-mortem.
            if terminal.state != JobState::DeadLetter {
                state.remove_job_journal(job);
            }
        }
        state.registry.gauge(
            "job_journals_on_disk",
            discover(&dir.join("jobs"))
                .map(|infos| infos.len())
                .unwrap_or(0) as f64,
        );
        state
            .registry
            .incr("jobs_recovered_total", recovered.incomplete.len() as u64);
        state
            .registry
            .incr("ledger_skipped_total", recovered.skipped);
        for job in recovered.incomplete {
            state.queue.requeue(job);
        }

        let listener = TcpListener::bind(&state.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        atomic_write_str(&dir.join("serve.addr"), &format!("{addr}\n"))?;

        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let state = state.clone();
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let acceptors = (0..state.config.http_threads.max(1))
            .map(|_| {
                let state = state.clone();
                let listener = listener.try_clone();
                std::thread::spawn(move || {
                    if let Ok(listener) = listener {
                        accept_loop(&state, &listener);
                    }
                })
            })
            .collect();

        Ok(Server {
            state,
            addr,
            workers,
            acceptors,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry (shared with every job supervisor).
    pub fn registry(&self) -> Arc<Registry> {
        self.state.registry.clone()
    }

    /// Begins a graceful drain: running jobs stop at their next chunk
    /// boundary (checkpointed), queued jobs stay in the ledger for the
    /// next start, new submissions get 503. The HTTP listener keeps
    /// answering reads so clients can observe the drain.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.config.cancel.cancel();
        self.state.queue.close();
        self.state.refresh_gauges();
    }

    /// Drains, joins every thread, and flushes the metrics summary.
    pub fn shutdown(self) -> io::Result<()> {
        self.drain();
        for worker in self.workers {
            let _ = worker.join();
        }
        self.state.accepting.store(false, Ordering::SeqCst);
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        self.state.refresh_gauges();
        atomic_write_str(
            &self.state.config.dir.join("metrics_summary.json"),
            &self.state.registry.snapshot().to_json(),
        )
    }

    /// Whether the drain token has tripped (SIGTERM or [`drain`](Self::drain)).
    pub fn drain_requested(&self) -> bool {
        self.state.config.cancel.is_cancelled()
    }
}

fn worker_loop(state: &Arc<State>) {
    while let Some(job) = state.queue.pop() {
        state.running.fetch_add(1, Ordering::Relaxed);
        run_job(state, job);
        state.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs one job attempt end to end and routes the outcome: complete,
/// retry with backoff, dead-letter, terminal failure, or "shutdown —
/// leave for the next start".
fn run_job(state: &Arc<State>, mut job: Job) {
    state.update(job.id, |view| {
        view.state = JobState::Running;
        view.attempts = job.attempts + 1;
    });
    state.refresh_gauges();

    let config = &state.config;
    let mut supervisor = Supervisor::new()
        .with_threads(Threads::from_count(config.job_threads))
        .with_retries(config.chunk_retries)
        .with_retry_backoff(
            Backoff::new(Duration::from_millis(1), Duration::from_millis(20)).with_seed(job.id),
        )
        .with_cancel(config.cancel.clone())
        .checkpoint_to(config.dir.join("jobs"))
        .resume(true)
        .with_injected_panics(&job.request.inject_panic, job.request.persistent_panic);
    if let Some(ms) = job.request.deadline_ms {
        supervisor = supervisor.with_deadline(Duration::from_millis(ms));
    }
    let sink = if config.trace_jobs {
        // One stream per attempt: seq restarts at 0 in each file, and a
        // retry never clobbers the trace of the attempt it replaces.
        Some(Arc::new(JsonlSink::new(config.dir.join("traces").join(
            format!("job-{}-attempt-{}.jsonl", job.id, job.attempts + 1),
        ))))
    } else {
        None
    };
    let mut fanout = Fanout::new().with(state.registry.clone());
    if let Some(sink) = &sink {
        fanout = fanout.with(sink.clone());
    }
    supervisor = supervisor.with_collector(fanout.shared());

    let scope = job.scope();
    let outcome = job.request.spec.run_supervised(Some(&scope), &supervisor);
    if let Some(sink) = &sink {
        let _ = sink.finish();
    }

    let failure = match outcome {
        Ok(run) => {
            if run.report.stopped == Some(StopCause::Cancelled) {
                // Drain: the job's completed chunks are journaled; the
                // accepted ledger still holds it; the next start
                // re-queues and resumes it bit-identically.
                state.update(job.id, |view| {
                    view.state = JobState::Queued;
                    view.detail = "draining; will resume on next start".into();
                });
                return;
            }
            if run.report.stopped == Some(StopCause::Deadline) {
                // Deadlines are promises to the client, not retryable.
                finish(
                    state,
                    &job,
                    Terminal {
                        state: JobState::Failed,
                        detail: format!(
                            "deadline exceeded with {} of {} chunks pending",
                            run.report.pending_chunks(),
                            run.report.total_chunks
                        ),
                        result: None,
                    },
                );
                return;
            }
            match (&run.value, run.report.is_complete()) {
                (Some(summary), true) => {
                    if let Some(sla) = job.request.spec.error_sla {
                        // NMED is a population metric the per-job summary
                        // does not carry; score the components the run
                        // actually measured.
                        let met = sla.mean.is_none_or(|limit| summary.mean_error <= limit)
                            && sla.peak.is_none_or(|limit| summary.peak_error() <= limit);
                        state.registry.incr(
                            if met {
                                "sla_jobs_met_total"
                            } else {
                                "sla_jobs_violated_total"
                            },
                            1,
                        );
                        state.qos_observe(&job.request.tenant, &job.request.spec.design, summary);
                    }
                    finish(
                        state,
                        &job,
                        Terminal {
                            state: JobState::Completed,
                            detail: String::new(),
                            result: Some(result_json(&job.request.spec, summary)),
                        },
                    );
                    return;
                }
                _ => {
                    let quarantined: Vec<String> = run
                        .report
                        .quarantined
                        .iter()
                        .map(|q| q.to_string())
                        .collect();
                    format!("incomplete run: {}", quarantined.join("; "))
                }
            }
        }
        Err(e) => format!("execution error: {e}"),
    };

    // Failure path: retry with backoff until the budget runs out.
    job.attempts += 1;
    if job.attempts <= job.request.max_retries {
        let backoff = Backoff::new(config.backoff_base, config.backoff_max).with_seed(job.id);
        let delay = backoff.delay(job.attempts);
        state.registry.incr("jobs_retried_total", 1);
        state.update(job.id, |view| {
            view.state = JobState::Queued;
            view.attempts = job.attempts;
            view.detail = format!(
                "attempt {} failed ({failure}); retrying in {delay:?}",
                job.attempts
            );
        });
        state.queue.requeue_after(job, delay);
    } else {
        finish(
            state,
            &job,
            Terminal {
                state: JobState::DeadLetter,
                detail: format!(
                    "retries exhausted after {} attempts: {failure}",
                    job.attempts
                ),
                result: None,
            },
        );
    }
    state.refresh_gauges();
}

/// Records a terminal transition: done ledger first (durability), then
/// the in-memory view, then journal cleanup and metrics.
fn finish(state: &Arc<State>, job: &Job, terminal: Terminal) {
    if let Err(e) = state.ledgers.record_done(job.id, &terminal) {
        // The outcome could not be made durable; leave the job
        // incomplete so the next start re-runs it (bit-identical).
        state.update(job.id, |view| {
            view.state = JobState::Queued;
            view.detail = format!("done-ledger write failed: {e}");
        });
        return;
    }
    let metric = match terminal.state {
        JobState::Completed => "jobs_completed_total",
        JobState::Failed => "jobs_failed_total",
        _ => "jobs_dead_letter_total",
    };
    state.registry.incr(metric, 1);
    if terminal.state != JobState::DeadLetter {
        state.remove_job_journal(job);
    }
    state.update(job.id, |view| {
        view.state = terminal.state;
        view.detail = terminal.detail.clone();
        view.result = terminal.result.clone();
    });
    state.refresh_gauges();
}

fn accept_loop(state: &Arc<State>, listener: &TcpListener) {
    while state.accepting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(state, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(state: &Arc<State>, mut stream: TcpStream) {
    // Bound how long a slow or hostile client can hold this thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok(request) => route(state, &request),
        Err(ParseError::BodyTooLarge) => Response::error(413, "request body too large"),
        Err(ParseError::Malformed(detail)) => Response::error(400, detail),
        Err(ParseError::Io(_)) => return, // peer went away; nothing to say
    };
    let _ = response.write_to(&mut stream);
}

/// Routes one request (pure: no I/O besides state access).
fn route(state: &Arc<State>, request: &Request) -> Response {
    state.registry.incr("requests_total", 1);
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => submit(state, &request.body),
        ("GET", "/jobs") => list_jobs(state),
        ("GET", "/healthz") => {
            state.refresh_gauges();
            let draining = state.draining.load(Ordering::SeqCst);
            Response::json(
                if draining { 503 } else { 200 },
                object(&[
                    (
                        "status",
                        json_string(if draining { "draining" } else { "ok" }),
                    ),
                    ("draining", draining.to_string()),
                    ("queue_depth", state.queue.depth().to_string()),
                    (
                        "jobs_running",
                        state.running.load(Ordering::Relaxed).to_string(),
                    ),
                ]) + "\n",
            )
        }
        ("GET", "/metrics") => {
            state.refresh_gauges();
            Response::json(200, state.registry.snapshot().to_json())
        }
        ("GET", _) if path.starts_with("/jobs/") => job_detail(state, path),
        ("POST" | "GET", _) => Response::error(404, "no such resource"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn submit(state: &Arc<State>, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let mut request = match JobRequest::from_json(&doc) {
        Ok(request) => request,
        Err(detail) => return Response::error(400, &detail),
    };
    if request.spec.design == "auto" {
        // Resolve the binding at admission so the ledger records the
        // concrete design: recovery replays the identical spec.
        let Some(sla) = request.spec.error_sla else {
            return Response::error(400, "design 'auto' requires an 'error_sla'");
        };
        match state.qos_bind(&request.tenant, sla) {
            Ok(design) => request.spec.design = design,
            Err((status, detail)) => {
                return Response::error(status, &format!("cannot bind design for SLA: {detail}"))
            }
        }
    }
    let job = Job {
        id: state.next_id.fetch_add(1, Ordering::SeqCst),
        request,
        attempts: 0,
        recovered: false,
    };
    let id = job.id;
    let view = JobView {
        tenant: job.request.tenant.clone(),
        design: job.request.spec.design.clone(),
        state: JobState::Queued,
        detail: String::new(),
        attempts: 0,
        recovered: false,
        result: None,
    };
    // Journal-before-ack: the ledger append (fsync) runs inside the
    // admission decision, so a 202 implies the job survives a crash.
    let admitted = state
        .queue
        .admit(job, |job| state.ledgers.record_accepted(job));
    match admitted {
        Ok(()) => {
            if let Ok(mut jobs) = state.jobs.lock() {
                jobs.insert(id, view);
            }
            state.registry.incr("jobs_accepted_total", 1);
            state.refresh_gauges();
            Response::json(
                202,
                object(&[
                    ("id", id.to_string()),
                    ("state", json_string("queued")),
                    ("location", json_string(&format!("/jobs/{id}"))),
                ]) + "\n",
            )
            .with_header("location", format!("/jobs/{id}"))
        }
        Err(AdmitResult::Rejected(AdmitError::Full)) => {
            state.registry.incr("jobs_shed_total", 1);
            Response::error(429, "queue full; retry later").with_header("retry-after", "1")
        }
        Err(AdmitResult::Rejected(AdmitError::Draining)) => {
            Response::error(503, "server is draining")
        }
        Err(AdmitResult::CommitFailed(e)) => {
            Response::error(500, &format!("could not journal the job: {e}"))
        }
    }
}

fn list_jobs(state: &Arc<State>) -> Response {
    let rendered = match state.jobs.lock() {
        Ok(jobs) => jobs
            .iter()
            .map(|(id, view)| view.to_json(*id))
            .collect::<Vec<_>>()
            .join(","),
        Err(_) => String::new(),
    };
    Response::json(
        200,
        format!(
            "{{\"jobs\":[{rendered}],\"queue_depth\":{}}}\n",
            state.queue.depth()
        ),
    )
}

fn job_detail(state: &Arc<State>, path: &str) -> Response {
    let rest = &path["/jobs/".len()..];
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<JobId>() else {
        return Response::error(400, "job ids are unsigned integers");
    };
    let Some(view) = state.view(id) else {
        return Response::error(404, "no such job");
    };
    match tail {
        None => Response::json(200, view.to_json(id) + "\n"),
        Some("result") => match (&view.result, view.state) {
            (Some(result), JobState::Completed) => Response::json(200, result.clone() + "\n"),
            (_, state) if state.is_terminal() => Response::error(
                409,
                &format!("job is {state} and has no result: {}", view.detail),
            ),
            _ => Response::error(409, &format!("job is {}; result not ready", view.state)),
        },
        Some(_) => Response::error(404, "no such resource"),
    }
}
