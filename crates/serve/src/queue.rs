//! Admission control and scheduling: a bounded multi-tenant queue with
//! explicit load-shedding, per-tenant fair share, in-tenant priority,
//! and a delay lane for retry backoff.
//!
//! # Policy
//!
//! * **Bounded**: at most `capacity` jobs queued across all tenants.
//!   Over capacity, admission fails fast ([`AdmitError::Full`] → 429) —
//!   the server sheds load explicitly instead of growing memory.
//! * **Fair share**: tenants take turns (round-robin over tenants with
//!   queued work), so one tenant submitting 1000 jobs cannot starve a
//!   tenant submitting 1. Priority orders jobs *within* a tenant only.
//! * **Delay lane**: retried jobs re-enter through a timer heap
//!   (backoff), bypassing the capacity check — they were already
//!   admitted once, and shedding them would turn a transient fault
//!   into data loss.
//! * **Draining**: once closed, admission fails
//!   ([`AdmitError::Draining`] → 503) and blocked `pop`s return `None`
//!   so workers can exit. Queued jobs are simply dropped from memory —
//!   the accepted ledger still holds them, and the next startup
//!   re-queues them.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::job::Job;

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity — shed (429; retry later).
    Full,
    /// The server is draining — rejected (503; find another replica).
    Draining,
}

/// A delayed (backoff) entry, ordered soonest-due-first in the heap.
struct Delayed {
    due: Instant,
    job: Job,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so the soonest due is on top.
        other.due.cmp(&self.due)
    }
}

#[derive(Default)]
struct Inner {
    /// Per-tenant FIFO (priority-ordered insertion).
    tenants: BTreeMap<String, VecDeque<Job>>,
    /// Round-robin order over tenants that currently have queued work.
    turns: VecDeque<String>,
    /// Jobs across all tenant queues (not counting the delay lane).
    queued: usize,
    /// Backoff lane.
    delayed: BinaryHeap<Delayed>,
    /// Closed for business (drain or shutdown).
    draining: bool,
}

impl Inner {
    /// Enqueues into the tenant's lane, keeping higher priority first
    /// and FIFO order among equal priorities.
    fn enqueue(&mut self, job: Job) {
        let tenant = job.request.tenant.clone();
        let lane = self.tenants.entry(tenant.clone()).or_default();
        let at = lane
            .iter()
            .position(|queued| queued.request.priority < job.request.priority)
            .unwrap_or(lane.len());
        lane.insert(at, job);
        self.queued += 1;
        if !self.turns.contains(&tenant) {
            self.turns.push_back(tenant);
        }
    }

    /// Moves every due delayed job into its tenant lane; returns how
    /// long until the next one is due (if any remain).
    fn promote_due(&mut self, now: Instant) -> Option<Duration> {
        while let Some(head) = self.delayed.peek() {
            if head.due > now {
                return Some(head.due - now);
            }
            if let Some(entry) = self.delayed.pop() {
                self.enqueue(entry.job);
            }
        }
        None
    }

    /// Takes the next job honoring the round-robin turn order.
    fn take_next(&mut self) -> Option<Job> {
        let tenant = self.turns.pop_front()?;
        let Some(lane) = self.tenants.get_mut(&tenant) else {
            return self.take_next();
        };
        let job = lane.pop_front();
        if lane.is_empty() {
            self.tenants.remove(&tenant);
        } else {
            self.turns.push_back(tenant);
        }
        match job {
            Some(job) => {
                self.queued -= 1;
                Some(job)
            }
            None => self.take_next(),
        }
    }
}

/// The shared queue (see the [module docs](self) for policy).
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` jobs at once.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission with the capacity/drain check and a durability hook:
    /// `commit` runs **inside** the admission decision (capacity
    /// already reserved, queue lock held) so the caller can journal the
    /// job before any worker can observe it. If `commit` fails the
    /// slot is released and nothing is queued.
    pub fn admit<E>(
        &self,
        job: Job,
        commit: impl FnOnce(&Job) -> Result<(), E>,
    ) -> Result<(), AdmitResult<E>> {
        let Ok(mut inner) = self.inner.lock() else {
            return Err(AdmitResult::Rejected(AdmitError::Draining));
        };
        if inner.draining {
            return Err(AdmitResult::Rejected(AdmitError::Draining));
        }
        if inner.queued + inner.delayed.len() >= self.capacity {
            return Err(AdmitResult::Rejected(AdmitError::Full));
        }
        if let Err(e) = commit(&job) {
            return Err(AdmitResult::CommitFailed(e));
        }
        inner.enqueue(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Re-queues an already-admitted job (recovery), bypassing the
    /// capacity check — recovered jobs must never be shed.
    pub fn requeue(&self, job: Job) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.enqueue(job);
        }
        self.available.notify_one();
    }

    /// Re-queues an already-admitted job after `delay` (retry backoff).
    pub fn requeue_after(&self, job: Job, delay: Duration) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.delayed.push(Delayed {
                due: Instant::now() + delay,
                job,
            });
        }
        // Wake a waiter so its timeout accounts for the new timer.
        self.available.notify_one();
    }

    /// Blocks until a job is available (or the queue is draining).
    /// `None` means "no more work, ever" — the worker should exit.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().ok()?;
        loop {
            if inner.draining {
                return None;
            }
            let next_due = inner.promote_due(Instant::now());
            if let Some(job) = inner.take_next() {
                return Some(job);
            }
            // Sleep until something is pushed, the next delayed job is
            // due, or (bounded) the drain flag needs a look.
            let wait = next_due
                .unwrap_or(Duration::from_millis(200))
                .min(Duration::from_millis(200));
            let (guard, _) = self.available.wait_timeout(inner, wait).ok()?;
            inner = guard;
        }
    }

    /// Closes the queue: admission fails, blocked and future `pop`s
    /// return `None`. Queued jobs are dropped from memory (the ledger
    /// keeps them; see the [module docs](self)).
    pub fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.draining = true;
            inner.tenants.clear();
            inner.turns.clear();
            inner.delayed.clear();
            inner.queued = 0;
        }
        self.available.notify_all();
    }

    /// Jobs currently queued (including the delay lane).
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .map(|inner| inner.queued + inner.delayed.len())
            .unwrap_or(0)
    }

    /// Tenants with queued work right now.
    pub fn tenants(&self) -> usize {
        self.inner
            .lock()
            .map(|inner| inner.tenants.len())
            .unwrap_or(0)
    }
}

/// The two ways [`AdmissionQueue::admit`] can fail.
#[derive(Debug)]
pub enum AdmitResult<E> {
    /// Shed or draining (the policy said no).
    Rejected(AdmitError),
    /// The durability hook failed (the policy said yes, the disk said
    /// no); nothing was queued.
    CommitFailed(E),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;
    use realm_metrics::{CampaignSpec, FamilySpec};

    fn job(id: u64, tenant: &str, priority: i64) -> Job {
        Job {
            id,
            request: JobRequest {
                tenant: tenant.into(),
                priority,
                deadline_ms: None,
                max_retries: 2,
                spec: CampaignSpec {
                    design: "accurate".into(),
                    family: FamilySpec::MonteCarlo { samples: 16 },
                    seed: 0,
                    chunk: None,
                    error_sla: None,
                },
                inject_panic: Vec::new(),
                persistent_panic: false,
            },
            attempts: 0,
            recovered: false,
        }
    }

    fn admit(q: &AdmissionQueue, j: Job) -> Result<(), AdmitResult<()>> {
        q.admit(j, |_| Ok(()))
    }

    #[test]
    fn fair_share_round_robins_across_tenants() {
        let q = AdmissionQueue::new(16);
        // Tenant "big" floods; tenant "small" submits one job later.
        for id in 0..5 {
            admit(&q, job(id, "big", 0)).unwrap();
        }
        admit(&q, job(100, "small", 0)).unwrap();
        let order: Vec<u64> = (0..6).map(|_| q.pop().unwrap().id).collect();
        // "small" gets its turn on the second pop, not after the flood.
        assert_eq!(order, [0, 100, 1, 2, 3, 4], "{order:?}");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn priority_orders_within_a_tenant_only() {
        let q = AdmissionQueue::new(16);
        admit(&q, job(1, "t", 0)).unwrap();
        admit(&q, job(2, "t", 9)).unwrap();
        admit(&q, job(3, "t", 9)).unwrap(); // FIFO among equals
        admit(&q, job(4, "t", -1)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, [2, 3, 1, 4]);
    }

    #[test]
    fn capacity_sheds_explicitly() {
        let q = AdmissionQueue::new(2);
        admit(&q, job(0, "a", 0)).unwrap();
        admit(&q, job(1, "b", 0)).unwrap();
        match admit(&q, job(2, "c", 0)) {
            Err(AdmitResult::Rejected(AdmitError::Full)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        q.pop().unwrap();
        admit(&q, job(3, "c", 0)).unwrap();
    }

    #[test]
    fn failed_commit_releases_the_slot() {
        let q = AdmissionQueue::new(1);
        match q.admit(job(0, "a", 0), |_| Err("disk full")) {
            Err(AdmitResult::CommitFailed("disk full")) => {}
            other => panic!("expected CommitFailed, got {other:?}"),
        }
        assert_eq!(q.depth(), 0);
        admit(&q, job(1, "a", 0)).unwrap();
    }

    #[test]
    fn draining_rejects_admission_and_releases_poppers() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(waiter.join().unwrap().is_none(), "popper must be released");
        match admit(&q, job(0, "a", 0)) {
            Err(AdmitResult::Rejected(AdmitError::Draining)) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn delayed_jobs_surface_only_when_due() {
        let q = AdmissionQueue::new(4);
        q.requeue_after(job(7, "t", 0), Duration::from_millis(60));
        assert_eq!(q.depth(), 1, "delay lane counts toward depth");
        let t0 = Instant::now();
        let popped = q.pop().unwrap();
        assert_eq!(popped.id, 7);
        assert!(
            t0.elapsed() >= Duration::from_millis(50),
            "must not surface before due ({:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn requeue_bypasses_capacity() {
        let q = AdmissionQueue::new(1);
        admit(&q, job(0, "a", 0)).unwrap();
        q.requeue(job(1, "a", 0)); // recovery must never shed
        assert_eq!(q.depth(), 2);
    }
}
