//! The job API's JSON reader — now hosted at the bottom of the
//! workspace as [`realm_obs::json`] so `realm-qos` table loading and
//! the service share one parser. This module re-exports it under the
//! historical `realm_serve::json` path.

pub use realm_obs::json::{object, Json, JsonError};
