//! `realm-serve`: a fault-tolerant multi-tenant campaign service over
//! the REALM characterization engine.
//!
//! Clients POST campaign specs (design text, family, sample budget,
//! deadline, priority) to an HTTP/JSON API; the server runs them on the
//! existing [`realm_harness::Supervisor`] stack with:
//!
//! * **admission control** — a bounded queue with explicit 429
//!   load-shed and per-tenant fair-share scheduling ([`queue`]);
//! * **retry with backoff** — failing jobs re-queue with exponential
//!   backoff and deterministic jitter until a per-job retry budget is
//!   exhausted, then dead-letter ([`server`]);
//! * **crash recovery** — jobs are journaled before acknowledgement
//!   ([`ledger`]); a restart after SIGKILL re-queues incomplete jobs
//!   and resumes them bit-identically from their campaign journals;
//! * **graceful shutdown** — SIGTERM drains running jobs to a
//!   checkpoint boundary, rejects new work, and flushes metrics.
//!
//! The crate is `std`-only: HTTP is a deliberately small HTTP/1.1
//! subset ([`http`]) over blocking `std::net`, one connection per
//! request.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod ledger;
pub mod queue;
pub mod server;

pub use client::{http_request, wait_terminal};
pub use job::{result_json, Job, JobId, JobRequest, JobState, Terminal};
pub use ledger::{Ledgers, Recovered};
pub use queue::{AdmissionQueue, AdmitError, AdmitResult};
pub use server::{ServeConfig, Server};
