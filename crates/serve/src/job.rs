//! Job model: the submission document, the job lifecycle state machine,
//! and the canonical (byte-stable) serializations the ledgers and the
//! API share.
//!
//! # Lifecycle
//!
//! ```text
//!            submit                    worker
//! (client) ─────────▶ QUEUED ────────────────────▶ RUNNING
//!                       ▲                             │
//!                       │ retry (backoff, budget)     ├─ complete ──▶ COMPLETED
//!                       └─────────────────────────────┤
//!                                                     ├─ deadline ──▶ FAILED
//!                                                     └─ retries
//!                                                        exhausted ─▶ DEAD_LETTER
//! ```
//!
//! A SIGTERM/SIGKILL while RUNNING is *not* a state: the job's chunks
//! are journaled, the accepted ledger still holds the job, and the next
//! startup re-queues it — resuming bit-identically from the checkpoint.

use std::fmt;

use realm_metrics::{CampaignSpec, ErrorSla, ErrorSummary, FamilySpec};
use realm_obs::json_string;

use crate::json::{object, Json};

/// Server-assigned job identifier (dense, monotonic, reused as the
/// ledger record index).
pub type JobId = u64;

/// Hard cap on tenant-name length (admission rejects longer).
pub const MAX_TENANT: usize = 64;

/// A validated job submission — everything the client controls.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The tenant the job is accounted (and fair-shared) under.
    pub tenant: String,
    /// Scheduling priority *within* the tenant's queue (higher runs
    /// first; the scheduler never trades fairness across tenants for
    /// priority).
    pub priority: i64,
    /// Per-execution wall-clock budget. A job over its deadline fails
    /// terminally (deadlines are promises to the client, not retryable
    /// conditions).
    pub deadline_ms: Option<u64>,
    /// Job-level retry budget: how many times a failing execution is
    /// re-queued (with backoff) before the job is dead-lettered.
    pub max_retries: u32,
    /// The campaign to run.
    pub spec: CampaignSpec,
    /// Chaos hook: chunk indices that panic (mirrors the bench
    /// drivers' `--inject-panic`; exercises quarantine/retry end to
    /// end).
    pub inject_panic: Vec<u64>,
    /// Whether injected panics persist across chunk retries (true
    /// drives the job through quarantine → job retry → dead letter).
    pub persistent_panic: bool,
}

impl JobRequest {
    /// Parses and validates a submission document. The error string is
    /// returned verbatim to the client with a 400.
    pub fn from_json(doc: &Json) -> Result<JobRequest, String> {
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_string();
        if tenant.is_empty() || tenant.len() > MAX_TENANT {
            return Err(format!("tenant must be 1..={MAX_TENANT} bytes"));
        }
        let error_sla = match doc.get("error_sla").and_then(Json::as_str) {
            None => None,
            Some(text) => Some(ErrorSla::parse(text).map_err(|e| e.to_string())?),
        };
        // With an SLA, the design may be omitted (or explicitly
        // "auto"): the QoS controller binds one at schedule time.
        let design = match doc.get("design").and_then(Json::as_str) {
            Some(d) => d.to_string(),
            None if error_sla.is_some() => "auto".to_string(),
            None => return Err("missing required field 'design'".into()),
        };
        let family_name = doc
            .get("family")
            .and_then(Json::as_str)
            .unwrap_or("montecarlo");
        let family = match family_name {
            "montecarlo" => FamilySpec::MonteCarlo {
                samples: doc
                    .get("samples")
                    .and_then(Json::as_u64)
                    .ok_or("montecarlo jobs need an unsigned 'samples'")?,
            },
            "exhaustive" => {
                let range = |key: &str| -> Result<(u64, u64), String> {
                    let v = doc
                        .get(key)
                        .ok_or(format!("exhaustive jobs need '{key}': [lo, hi]"))?;
                    match v.as_array() {
                        Some([lo, hi]) => match (lo.as_u64(), hi.as_u64()) {
                            (Some(lo), Some(hi)) => Ok((lo, hi)),
                            _ => Err(format!("'{key}' bounds must be unsigned integers")),
                        },
                        _ => Err(format!("'{key}' must be a two-element array")),
                    }
                };
                FamilySpec::Exhaustive {
                    a: range("a")?,
                    b: range("b")?,
                }
            }
            other => return Err(format!("unknown family '{other}'")),
        };
        let spec = CampaignSpec {
            design,
            family,
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            chunk: doc.get("chunk").and_then(Json::as_u64),
            error_sla,
        };
        // Reject bad specs at admission, not at execution: the client
        // is still on the line to hear about it.
        spec.validate().map_err(|e| e.to_string())?;
        if spec.design == "auto" {
            if spec.error_sla.is_none() {
                return Err("design 'auto' requires an 'error_sla'".into());
            }
        } else {
            spec.build_design().map_err(|e| e.to_string())?;
        }

        let inject_panic = doc
            .get("inject_panic")
            .and_then(Json::as_array)
            .map(|items| items.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        Ok(JobRequest {
            tenant,
            priority: doc.get("priority").and_then(Json::as_i64).unwrap_or(0),
            deadline_ms: doc.get("deadline_ms").and_then(Json::as_u64),
            max_retries: doc
                .get("max_retries")
                .and_then(Json::as_u64)
                .map(|n| n.min(16) as u32)
                .unwrap_or(2),
            spec,
            inject_panic,
            persistent_panic: doc
                .get("persistent_panic")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// The canonical serialization journaled in the accepted ledger
    /// (and re-parsed by [`from_json`](Self::from_json) on recovery).
    pub fn to_json(&self) -> String {
        let mut members: Vec<(&str, String)> = vec![
            ("tenant", json_string(&self.tenant)),
            ("priority", self.priority.to_string()),
        ];
        if let Some(deadline) = self.deadline_ms {
            members.push(("deadline_ms", deadline.to_string()));
        }
        members.push(("max_retries", self.max_retries.to_string()));
        members.push(("design", json_string(&self.spec.design)));
        match &self.spec.family {
            FamilySpec::MonteCarlo { samples } => {
                members.push(("family", json_string("montecarlo")));
                members.push(("samples", samples.to_string()));
            }
            FamilySpec::Exhaustive { a, b } => {
                members.push(("family", json_string("exhaustive")));
                members.push(("a", format!("[{},{}]", a.0, a.1)));
                members.push(("b", format!("[{},{}]", b.0, b.1)));
            }
        }
        members.push(("seed", self.spec.seed.to_string()));
        if let Some(chunk) = self.spec.chunk {
            members.push(("chunk", chunk.to_string()));
        }
        if let Some(sla) = &self.spec.error_sla {
            members.push(("error_sla", json_string(&sla.text())));
        }
        if !self.inject_panic.is_empty() {
            let list: Vec<String> = self.inject_panic.iter().map(u64::to_string).collect();
            members.push(("inject_panic", format!("[{}]", list.join(","))));
            members.push(("persistent_panic", self.persistent_panic.to_string()));
        }
        object(&members)
    }
}

/// One job in flight: the request plus the server-side identity and
/// retry accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Server-assigned id.
    pub id: JobId,
    /// The client's validated submission.
    pub request: JobRequest,
    /// Executions attempted so far (0 before the first run).
    pub attempts: u32,
    /// Whether this job was re-queued by crash recovery rather than
    /// freshly submitted.
    pub recovered: bool,
}

impl Job {
    /// The campaign scope binding this job's journal (see
    /// `realm_metrics::spec` — same spec, different job, different
    /// journal).
    pub fn scope(&self) -> String {
        format!("job-{}", self.id)
    }
}

/// The job lifecycle states the API reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted (journaled) and waiting for a worker — including
    /// between retry attempts and after crash recovery.
    Queued,
    /// A worker is executing it right now.
    Running,
    /// Finished; the result document is available.
    Completed,
    /// Terminally failed (deadline, invalid at execution).
    Failed,
    /// Retry budget exhausted; kept for inspection, never re-run.
    DeadLetter,
}

impl JobState {
    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::DeadLetter => "dead_letter",
        }
    }

    /// Whether the state is terminal (recorded in the done ledger).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::DeadLetter
        )
    }

    /// Inverse of [`as_str`](Self::as_str), for ledger recovery.
    pub fn parse(text: &str) -> Option<JobState> {
        Some(match text {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            "dead_letter" => JobState::DeadLetter,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A terminal outcome, as journaled in the done ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct Terminal {
    /// `Completed`, `Failed` or `DeadLetter`.
    pub state: JobState,
    /// Human diagnostic (empty for completed jobs).
    pub detail: String,
    /// The byte-stable result document (completed jobs only).
    pub result: Option<String>,
}

impl Terminal {
    /// The done-ledger payload.
    pub fn to_json(&self) -> String {
        let mut members: Vec<(&str, String)> = vec![
            ("state", json_string(self.state.as_str())),
            ("detail", json_string(&self.detail)),
        ];
        if let Some(result) = &self.result {
            // The result is itself a JSON document; embed it verbatim so
            // its bytes survive the round-trip exactly.
            members.push(("result", result.clone()));
        }
        object(&members)
    }

    /// Parses a done-ledger payload.
    pub fn from_json(text: &str) -> Option<Terminal> {
        let doc = Json::parse(text).ok()?;
        let state = JobState::parse(doc.get("state")?.as_str()?)?;
        if !state.is_terminal() {
            return None;
        }
        Some(Terminal {
            state,
            detail: doc.get("detail")?.as_str()?.to_string(),
            // Re-render the embedded result; `result_json` emits it
            // compactly so the render is byte-identical.
            result: doc.get("result").map(render_result),
        })
    }
}

/// A float as `{"value": shortest-round-trip, "bits": ieee754-hex}` —
/// byte-stable because the campaign fold is bit-identical across
/// threads, resumes and restarts (same convention as the bench
/// drivers' campaign summaries).
fn json_f64(x: f64) -> String {
    format!("{{\"value\":{x:?},\"bits\":\"{:016x}\"}}", x.to_bits())
}

/// The byte-stable result document of a completed job. Deliberately a
/// pure function of the *spec outcome* (not of job id, timing, tenant
/// or retry history) so that two jobs with equal specs — or one job
/// killed and resumed — produce byte-identical results.
pub fn result_json(spec: &CampaignSpec, summary: &ErrorSummary) -> String {
    let mut members = vec![
        ("schema", json_string("realm-serve/result/v1")),
        ("design", json_string(&spec.design)),
    ];
    if let Some(sla) = &spec.error_sla {
        members.push(("error_sla", json_string(&sla.text())));
    }
    members.extend([
        ("seed", spec.seed.to_string()),
        ("samples", summary.samples.to_string()),
        ("bias", json_f64(summary.bias)),
        ("mean_error", json_f64(summary.mean_error)),
        ("variance", json_f64(summary.variance)),
        ("min_error", json_f64(summary.min_error)),
        ("max_error", json_f64(summary.max_error)),
    ]);
    object(&members)
}

/// Re-renders a parsed result document in the exact `result_json`
/// member order/format (used when a terminal record is replayed from
/// the ledger).
fn render_result(doc: &Json) -> String {
    let num = |key: &str| doc.get(key).map(render_value).unwrap_or_default();
    let mut members = vec![("schema", num("schema")), ("design", num("design"))];
    if doc.get("error_sla").is_some() {
        members.push(("error_sla", num("error_sla")));
    }
    members.extend([
        ("seed", num("seed")),
        ("samples", num("samples")),
        ("bias", num("bias")),
        ("mean_error", num("mean_error")),
        ("variance", num("variance")),
        ("min_error", num("min_error")),
        ("max_error", num("max_error")),
    ]);
    object(&members)
}

/// Renders one parsed JSON value compactly (the shapes `result_json`
/// emits: strings, numbers, and the `{"value","bits"}` float objects).
fn render_value(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(text) => text.clone(),
        Json::Str(s) => json_string(s),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(members) => {
            let rendered: Vec<(&str, String)> = members
                .iter()
                .map(|(k, v)| (k.as_str(), render_value(v)))
                .collect();
            object(&rendered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_request(doc: &str) -> Result<JobRequest, String> {
        JobRequest::from_json(&Json::parse(doc).expect("test doc parses"))
    }

    #[test]
    fn submission_round_trips_through_the_ledger_encoding() {
        let doc = r#"{"tenant":"alice","priority":7,"deadline_ms":60000,"max_retries":3,
                      "family":"montecarlo","design":"realm:m=8,t=1","samples":4096,
                      "seed":11,"chunk":512,"inject_panic":[2],"persistent_panic":true}"#;
        let req = parse_request(doc).unwrap();
        assert_eq!(req.tenant, "alice");
        assert_eq!(req.priority, 7);
        assert_eq!(req.deadline_ms, Some(60_000));
        let encoded = req.to_json();
        let back = parse_request(&encoded).unwrap();
        assert_eq!(req, back, "ledger encoding must round-trip exactly");
        // Canonical: encoding is a fixed point.
        assert_eq!(encoded, back.to_json());
    }

    #[test]
    fn exhaustive_submissions_parse() {
        let req =
            parse_request(r#"{"family":"exhaustive","design":"calm","a":[32,95],"b":[1,64]}"#)
                .unwrap();
        assert_eq!(
            req.spec.family,
            FamilySpec::Exhaustive {
                a: (32, 95),
                b: (1, 64)
            }
        );
        let back = parse_request(&req.to_json()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn defaults_are_sensible() {
        let req = parse_request(r#"{"design":"accurate","samples":100}"#).unwrap();
        assert_eq!(req.tenant, "default");
        assert_eq!(req.priority, 0);
        assert_eq!(req.max_retries, 2);
        assert_eq!(req.deadline_ms, None);
        assert!(!req.persistent_panic);
    }

    #[test]
    fn sla_jobs_round_trip_and_default_to_auto_design() {
        let req =
            parse_request(r#"{"tenant":"bob","samples":256,"error_sla":"mean:0.03"}"#).unwrap();
        assert_eq!(req.spec.design, "auto");
        assert_eq!(req.spec.error_sla.unwrap().mean, Some(0.03));
        let back = parse_request(&req.to_json()).unwrap();
        assert_eq!(req, back, "SLA must survive the ledger encoding");

        // An explicit design plus an SLA is also legal: run that
        // design, score it against the budget.
        let req = parse_request(
            r#"{"design":"realm:m=8,t=1","samples":64,"error_sla":"mean:0.05,peak:0.2"}"#,
        )
        .unwrap();
        assert_eq!(req.spec.design, "realm:m=8,t=1");
        assert_eq!(parse_request(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn invalid_submissions_are_diagnosed_at_admission() {
        for (doc, needle) in [
            (r#"{"samples":10}"#, "design"),
            (r#"{"design":"warp-core","samples":10}"#, "unknown design"),
            (r#"{"design":"accurate"}"#, "samples"),
            (
                r#"{"design":"accurate","samples":0}"#,
                "samples must be > 0",
            ),
            (
                r#"{"design":"accurate","family":"psychic"}"#,
                "unknown family",
            ),
            (
                r#"{"design":"accurate","family":"exhaustive","a":[9,1],"b":[1,2]}"#,
                "empty",
            ),
            (r#"{"design":"accurate","samples":1,"tenant":""}"#, "tenant"),
            (
                r#"{"design":"accurate","samples":1,"error_sla":"mean:banana"}"#,
                "not a number",
            ),
            (
                r#"{"design":"auto","samples":1}"#,
                "requires an 'error_sla'",
            ),
        ] {
            let err = parse_request(doc).expect_err(doc);
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn terminal_round_trips_with_byte_identical_result() {
        let spec = CampaignSpec {
            design: "realm".into(),
            family: FamilySpec::MonteCarlo { samples: 100 },
            seed: 3,
            chunk: None,
            error_sla: None,
        };
        let summary = ErrorSummary {
            samples: 100,
            bias: -0.001234,
            mean_error: 0.0077,
            variance: 1.5e-5,
            min_error: -0.0208,
            max_error: 0.0,
        };
        let result = result_json(&spec, &summary);
        let term = Terminal {
            state: JobState::Completed,
            detail: String::new(),
            result: Some(result.clone()),
        };
        let back = Terminal::from_json(&term.to_json()).unwrap();
        assert_eq!(back.state, JobState::Completed);
        assert_eq!(
            back.result.as_deref(),
            Some(result.as_str()),
            "result bytes must survive the ledger round-trip exactly"
        );
        // Failure terminals carry no result.
        let dead = Terminal {
            state: JobState::DeadLetter,
            detail: "retries exhausted".into(),
            result: None,
        };
        let back = Terminal::from_json(&dead.to_json()).unwrap();
        assert_eq!(back, dead);
        // Non-terminal states are rejected.
        assert!(Terminal::from_json(r#"{"state":"queued","detail":""}"#).is_none());
    }

    #[test]
    fn state_names_round_trip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::DeadLetter,
        ] {
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert!(JobState::parse("zombie").is_none());
    }
}
