//! The job ledgers: crash-safe ground truth for "which jobs exist and
//! which are finished", built on the harness [`Journal`] so the service
//! inherits its fsync-per-append durability, checksums and torn-tail
//! salvage.
//!
//! Two append-only journals live in the service directory:
//!
//! * `accepted.journal` — one record per admitted job, appended (and
//!   fsynced) **before** the client hears 202. Record index = job id,
//!   payload = the canonical [`JobRequest`](crate::job::JobRequest)
//!   document.
//! * `done.journal` — one record per terminal transition. Record index
//!   = job id, payload = the [`Terminal`](crate::job::Terminal)
//!   document (including the byte-stable result for completed jobs).
//!
//! Recovery is set subtraction: `accepted \ done` are the jobs a crash
//! interrupted (queued or mid-run — the distinction doesn't matter,
//! because per-job campaign journals make resuming from either
//! bit-identical). The journal's first-record-wins duplicate handling
//! makes a crash between append and acknowledgement harmless.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use realm_harness::{CampaignId, HarnessError, Journal};
use realm_par::ChunkPlan;

use crate::job::{Job, JobId, JobRequest, Terminal};
use crate::json::Json;

/// The fixed identity of the accepted ledger. The plan geometry is a
/// formality (ledger indices are job ids, not chunk indices); the
/// fingerprint still protects the file from being confused with a
/// campaign journal or a different ledger version.
fn accepted_id() -> CampaignId {
    CampaignId::new("serve", "accepted-ledger/v1", ChunkPlan::new(1, 1), 0)
}

/// The fixed identity of the done ledger.
fn done_id() -> CampaignId {
    CampaignId::new("serve", "done-ledger/v1", ChunkPlan::new(1, 1), 0)
}

/// What startup recovered from the service directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Jobs admitted but not yet terminal — to re-queue, in id order.
    pub incomplete: Vec<Job>,
    /// Terminal jobs, with their outcome — to serve `/jobs/<id>` and
    /// `/result` across restarts.
    pub terminal: Vec<(Job, Terminal)>,
    /// The next unused job id.
    pub next_id: JobId,
    /// Accepted-ledger records that failed to parse (counted, skipped;
    /// a damaged record must not take the service down).
    pub skipped: u64,
}

/// The open ledgers (append paths only; recovery happens once in
/// [`Ledgers::open`]).
#[derive(Debug)]
pub struct Ledgers {
    accepted: Mutex<Journal>,
    done: Mutex<Journal>,
}

impl Ledgers {
    /// Opens (creating or resuming) both ledgers in `dir` and replays
    /// them into a [`Recovered`] state.
    pub fn open(dir: &Path) -> Result<(Ledgers, Recovered), HarnessError> {
        std::fs::create_dir_all(dir).map_err(|e| HarnessError::io(dir, e))?;
        let (accepted, accepted_records, _) =
            Journal::resume(&dir.join("accepted.journal"), &accepted_id())?;
        let (done, done_records, _) = Journal::resume(&dir.join("done.journal"), &done_id())?;

        let done_map: BTreeMap<JobId, Terminal> = done_records
            .into_iter()
            .filter_map(|(id, bytes)| {
                let text = String::from_utf8(bytes).ok()?;
                Some((id, Terminal::from_json(&text)?))
            })
            .collect();

        let mut recovered = Recovered::default();
        for (id, bytes) in accepted_records {
            recovered.next_id = recovered.next_id.max(id + 1);
            let request = String::from_utf8(bytes)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|doc| JobRequest::from_json(&doc).ok());
            let Some(request) = request else {
                recovered.skipped += 1;
                continue;
            };
            let job = Job {
                id,
                request,
                attempts: 0,
                recovered: true,
            };
            match done_map.get(&id) {
                Some(terminal) => recovered.terminal.push((job, terminal.clone())),
                None => recovered.incomplete.push(job),
            }
        }
        Ok((
            Ledgers {
                accepted: Mutex::new(accepted),
                done: Mutex::new(done),
            },
            recovered,
        ))
    }

    /// Durably records an admitted job (fsynced before return — the 202
    /// is only sent after this succeeds).
    pub fn record_accepted(&self, job: &Job) -> Result<(), HarnessError> {
        let payload = job.request.to_json();
        match self.accepted.lock() {
            Ok(mut ledger) => ledger.append(job.id, payload.as_bytes()),
            Err(_) => Err(poisoned()),
        }
    }

    /// Durably records a terminal transition.
    pub fn record_done(&self, id: JobId, terminal: &Terminal) -> Result<(), HarnessError> {
        let payload = terminal.to_json();
        match self.done.lock() {
            Ok(mut ledger) => ledger.append(id, payload.as_bytes()),
            Err(_) => Err(poisoned()),
        }
    }
}

fn poisoned() -> HarnessError {
    HarnessError::Corrupt {
        path: std::path::PathBuf::new(),
        detail: "ledger mutex poisoned".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use realm_metrics::{CampaignSpec, FamilySpec};
    use std::io::Write;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("realm-ledger-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn job(id: JobId, tenant: &str) -> Job {
        Job {
            id,
            request: JobRequest {
                tenant: tenant.into(),
                priority: 0,
                deadline_ms: None,
                max_retries: 2,
                spec: CampaignSpec {
                    design: "accurate".into(),
                    family: FamilySpec::MonteCarlo { samples: 64 },
                    seed: 1,
                    chunk: Some(16),
                    error_sla: None,
                },
                inject_panic: Vec::new(),
                persistent_panic: false,
            },
            attempts: 0,
            recovered: false,
        }
    }

    #[test]
    fn recovery_is_accepted_minus_done() {
        let dir = scratch("setsub");
        {
            let (ledgers, fresh) = Ledgers::open(&dir).unwrap();
            assert_eq!(fresh.next_id, 0);
            for id in 0..4 {
                ledgers.record_accepted(&job(id, "t")).unwrap();
            }
            ledgers
                .record_done(
                    1,
                    &Terminal {
                        state: JobState::Completed,
                        detail: String::new(),
                        result: Some("{\"schema\":\"realm-serve/result/v1\"}".into()),
                    },
                )
                .unwrap();
            ledgers
                .record_done(
                    3,
                    &Terminal {
                        state: JobState::DeadLetter,
                        detail: "retries exhausted".into(),
                        result: None,
                    },
                )
                .unwrap();
        } // drop = crash (no graceful close exists, by design)

        let (_, recovered) = Ledgers::open(&dir).unwrap();
        let incomplete: Vec<JobId> = recovered.incomplete.iter().map(|j| j.id).collect();
        assert_eq!(incomplete, [0, 2], "accepted minus done, in id order");
        assert!(recovered.incomplete.iter().all(|j| j.recovered));
        assert_eq!(recovered.terminal.len(), 2);
        assert_eq!(recovered.next_id, 4);
        assert_eq!(recovered.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_ledger_tail_is_salvaged() {
        let dir = scratch("torn");
        {
            let (ledgers, _) = Ledgers::open(&dir).unwrap();
            ledgers.record_accepted(&job(0, "t")).unwrap();
            ledgers.record_accepted(&job(1, "t")).unwrap();
        }
        // Crash mid-append: garbage tail on the accepted ledger.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("accepted.journal"))
            .unwrap();
        f.write_all(b"c 2 dead").unwrap();
        drop(f);

        let (ledgers, recovered) = Ledgers::open(&dir).unwrap();
        assert_eq!(recovered.incomplete.len(), 2);
        assert_eq!(recovered.next_id, 2);
        // And the salvaged ledger still appends fine.
        ledgers.record_accepted(&job(2, "t")).unwrap();
        let (_, again) = Ledgers::open(&dir).unwrap();
        assert_eq!(again.incomplete.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_accept_records_are_first_record_wins() {
        let dir = scratch("dup");
        {
            let (ledgers, _) = Ledgers::open(&dir).unwrap();
            // A crash between append and ack can re-submit the same id.
            ledgers.record_accepted(&job(0, "first")).unwrap();
            ledgers.record_accepted(&job(0, "second")).unwrap();
        }
        let (_, recovered) = Ledgers::open(&dir).unwrap();
        assert_eq!(recovered.incomplete.len(), 1);
        assert_eq!(recovered.incomplete[0].request.tenant, "first");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_accepted_payloads_are_skipped_not_fatal() {
        let dir = scratch("skip");
        {
            let (ledgers, _) = Ledgers::open(&dir).unwrap();
            ledgers.record_accepted(&job(0, "good")).unwrap();
        }
        // Append a record whose payload is valid hex but not a job.
        {
            let (accepted, _, _) =
                Journal::resume(&dir.join("accepted.journal"), &accepted_id()).unwrap();
            let mut accepted = accepted;
            accepted.append(1, b"not a job document").unwrap();
        }
        let (_, recovered) = Ledgers::open(&dir).unwrap();
        assert_eq!(recovered.incomplete.len(), 1);
        assert_eq!(recovered.skipped, 1);
        assert_eq!(recovered.next_id, 2, "skipped ids are still reserved");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
