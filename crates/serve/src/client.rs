//! A tiny blocking HTTP/1.1 client — just enough to drive the job API
//! from the load-test binary and the integration tests without pulling
//! in a dependency.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one request and reads the whole response (the server always
/// closes the connection after one exchange).
///
/// Returns `(status, body)`; transport failures surface as `Err` so
/// callers can count them separately from HTTP-level rejections.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: realm-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, response_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::other("response without header terminator"))?;
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other("response without status code"))?;
    Ok((status, response_body.to_string()))
}

/// Polls `GET /jobs/<id>` until the job reaches a terminal state (or
/// the deadline passes), returning the final state string.
pub fn wait_terminal(addr: SocketAddr, id: u64, deadline: Duration) -> io::Result<String> {
    let start = std::time::Instant::now();
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status == 200 {
            if let Some(state) = extract_string_field(&body, "state") {
                if matches!(state.as_str(), "completed" | "failed" | "dead_letter") {
                    return Ok(state);
                }
            }
        }
        if start.elapsed() > deadline {
            return Err(io::Error::other(format!("job {id} not terminal: {body}")));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Pulls a `"field":"value"` string member out of a flat JSON body —
/// enough for polling loops; real parsing lives in [`crate::json`].
pub fn extract_string_field(body: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = body.find(&needle)? + needle.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_string())
}

/// Pulls a `"field":123` unsigned member out of a flat JSON body.
pub fn extract_u64_field(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_the_api_shapes() {
        let body = r#"{"id":17,"state":"queued","location":"/jobs/17"}"#;
        assert_eq!(extract_u64_field(body, "id"), Some(17));
        assert_eq!(
            extract_string_field(body, "state").as_deref(),
            Some("queued")
        );
        assert_eq!(extract_string_field(body, "missing"), None);
        assert_eq!(extract_u64_field(body, "state"), None);
    }
}
