//! The headline robustness test: SIGKILL the service mid-job, restart
//! it over the same directory, and require the recovered job to finish
//! with a result **byte-identical** to an uninterrupted run. Also
//! exercises SIGTERM graceful drain on the real binary.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use realm_harness::discover;
use realm_serve::client::{extract_u64_field, http_request, wait_terminal};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realm-serve-rec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts the real `realm-serve` binary on `dir` and waits for it to
/// publish its bound address. The caller owns the child and must
/// kill/wait it (that is the point of this test file).
#[allow(clippy::zombie_processes)]
fn start_server(dir: &Path) -> (Child, SocketAddr) {
    let addr_file = dir.join("serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_realm-serve"))
        .args(["--dir", &dir.display().to_string(), "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn realm-serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                return (child, addr);
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_job_then_restart_resumes_bit_identically() {
    let dir = scratch("sigkill");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let body =
        r#"{"tenant":"crash","design":"realm:m=16,t=0","samples":4000000,"chunk":20000,"seed":9}"#;

    let (mut child, addr) = start_server(&dir);
    let (status, reply) = http_request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id");

    // Wait until the job has demonstrably checkpointed some chunks,
    // then SIGKILL — no drain, no flush, no warning.
    let jobs_dir = dir.join("jobs");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let progressed = discover(&jobs_dir)
            .map(|infos| infos.iter().any(|j| j.distinct_chunks >= 3))
            .unwrap_or(false);
        if progressed {
            break;
        }
        assert!(Instant::now() < deadline, "job never checkpointed");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Restart over the same directory: the accepted ledger re-queues
    // the job and its journal replays bit-identically.
    let (mut child, addr) = start_server(&dir);
    let state = wait_terminal(addr, id, Duration::from_secs(300)).expect("terminal");
    assert_eq!(state, "completed");
    let (_, detail) = http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("detail");
    assert!(
        detail.contains("\"recovered\":true"),
        "the job must come back through recovery, not resubmission: {detail}"
    );
    let (status, resumed) =
        http_request(addr, "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(status, 200, "{resumed}");

    // Uninterrupted reference with the identical spec.
    let (status, reply) = http_request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(status, 202, "{reply}");
    let ref_id = extract_u64_field(&reply, "id").expect("id");
    wait_terminal(addr, ref_id, Duration::from_secs(300)).expect("terminal");
    let (_, reference) =
        http_request(addr, "GET", &format!("/jobs/{ref_id}/result"), None).expect("result");
    assert_eq!(
        resumed, reference,
        "SIGKILL + restart must be invisible in the result bytes"
    );

    // SIGTERM the restarted server: graceful drain, clean exit, flushed
    // metrics summary.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let exit = child.wait().expect("server exits");
    assert!(exit.success(), "SIGTERM must exit cleanly, got {exit:?}");
    assert!(
        dir.join("metrics_summary.json").is_file(),
        "drain must flush the metrics summary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
