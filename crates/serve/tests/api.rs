//! End-to-end API tests against in-process servers: submit/poll/result,
//! validation, load-shed, retry → dead-letter, deadline enforcement,
//! and graceful drain + restart resume — all over real TCP.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use realm_serve::client::{extract_string_field, extract_u64_field, http_request, wait_terminal};
use realm_serve::{ServeConfig, Server};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realm-serve-api-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("server starts")
}

fn submit(server: &Server, body: &str) -> (u16, String) {
    http_request(server.addr(), "POST", "/jobs", Some(body)).expect("submit")
}

#[test]
fn submit_poll_result_roundtrip_and_result_is_byte_stable() {
    let dir = scratch("roundtrip");
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    });

    let body =
        r#"{"tenant":"alice","design":"realm:m=16,t=0","samples":4096,"seed":7,"chunk":512}"#;
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id in 202");
    assert_eq!(
        extract_string_field(&reply, "state").as_deref(),
        Some("queued")
    );

    let state = wait_terminal(server.addr(), id, Duration::from_secs(60)).expect("terminal");
    assert_eq!(state, "completed");
    let (status, result_a) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(status, 200, "{result_a}");
    assert!(
        result_a.contains("\"schema\":\"realm-serve/result/v1\""),
        "{result_a}"
    );

    // A second job with the exact same spec (different id, different
    // journal) must produce byte-identical result bytes.
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202);
    let id2 = extract_u64_field(&reply, "id").expect("id");
    assert_ne!(id, id2);
    wait_terminal(server.addr(), id2, Duration::from_secs(60)).expect("terminal");
    let (_, result_b) =
        http_request(server.addr(), "GET", &format!("/jobs/{id2}/result"), None).expect("result");
    assert_eq!(result_a, result_b, "equal specs must yield identical bytes");

    // Listing and metrics are served.
    let (status, list) = http_request(server.addr(), "GET", "/jobs", None).expect("list");
    assert_eq!(status, 200);
    assert!(list.contains("\"tenant\":\"alice\""), "{list}");
    let (status, metrics) = http_request(server.addr(), "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("jobs_completed_total"), "{metrics}");

    server.shutdown().expect("shutdown");
    assert!(dir.join("metrics_summary.json").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_submissions_and_unknown_resources_are_4xx() {
    let dir = scratch("reject");
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });
    for (body, needle) in [
        ("{not json", "invalid JSON"),
        (r#"{"design":"warp-core","samples":10}"#, "unknown design"),
        (r#"{"design":"accurate"}"#, "samples"),
        (
            r#"{"design":"accurate","samples":0}"#,
            "samples must be > 0",
        ),
    ] {
        let (status, reply) = submit(&server, body);
        assert_eq!(status, 400, "{body} -> {reply}");
        assert!(reply.contains(needle), "{body} -> {reply}");
    }
    let (status, _) = http_request(server.addr(), "GET", "/jobs/999", None).expect("get");
    assert_eq!(status, 404);
    let (status, _) = http_request(server.addr(), "GET", "/nowhere", None).expect("get");
    assert_eq!(status, 404);
    let (status, _) = http_request(server.addr(), "DELETE", "/jobs", None).expect("delete");
    assert_eq!(status, 405);
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_429_and_drain_rejects_with_503() {
    let dir = scratch("shed");
    // Capacity 1, and a long job-retry backoff: a failing job parks in
    // the delay lane for seconds, deterministically holding the queue
    // at capacity while we probe the shed path.
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        queue_capacity: 1,
        backoff_base: Duration::from_secs(5),
        backoff_max: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let body = r#"{"design":"accurate","samples":64,"chunk":64,
                   "inject_panic":[0],"persistent_panic":true,"max_retries":4}"#;
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202, "{reply}");

    // Wait until the failed attempt parks in the backoff lane.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, health) = http_request(server.addr(), "GET", "/healthz", None).expect("healthz");
        if extract_u64_field(&health, "queue_depth") == Some(1)
            && extract_u64_field(&health, "jobs_running") == Some(0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "job never parked: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, reply) = submit(&server, r#"{"design":"accurate","samples":64}"#);
    assert_eq!(status, 429, "{reply}");
    assert!(reply.contains("queue full"), "{reply}");

    // Drain: health flips to 503/draining, submissions get 503.
    server.drain();
    let (status, health) = http_request(server.addr(), "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 503);
    assert!(health.contains("\"status\":\"draining\""), "{health}");
    let (status, reply) = submit(&server, r#"{"design":"accurate","samples":64}"#);
    assert_eq!(status, 503, "{reply}");

    let metrics = server.registry().snapshot();
    let shed = metrics
        .counters
        .get("jobs_shed_total")
        .copied()
        .unwrap_or(0);
    assert!(shed >= 1, "shed counter must record the 429");
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunk_retries_absorb_transient_panics_but_persistent_ones_dead_letter() {
    let dir = scratch("retry");
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(40),
        ..ServeConfig::default()
    });

    // Transient: the chunk panics once, the supervisor's chunk retry
    // succeeds, the job completes on its first attempt.
    let (status, reply) = submit(
        &server,
        r#"{"design":"accurate","samples":256,"chunk":64,"inject_panic":[1]}"#,
    );
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id");
    let state = wait_terminal(server.addr(), id, Duration::from_secs(60)).expect("terminal");
    assert_eq!(state, "completed", "transient panics must be absorbed");

    // Persistent: every attempt quarantines; the job retries with
    // backoff until the budget is exhausted, then dead-letters.
    let (status, reply) = submit(
        &server,
        r#"{"design":"accurate","samples":256,"chunk":64,
            "inject_panic":[1],"persistent_panic":true,"max_retries":1}"#,
    );
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id");
    let state = wait_terminal(server.addr(), id, Duration::from_secs(120)).expect("terminal");
    assert_eq!(state, "dead_letter");
    let (status, detail) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}"), None).expect("detail");
    assert_eq!(status, 200);
    assert!(detail.contains("retries exhausted"), "{detail}");
    assert!(detail.contains("\"attempts\":2"), "{detail}");
    let (status, reply) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(status, 409, "{reply}");

    let metrics = server.registry().snapshot();
    assert!(
        metrics
            .counters
            .get("jobs_retried_total")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(
        metrics.counters.get("jobs_dead_letter_total").copied(),
        Some(1)
    );
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_fail_terminally_without_retry() {
    let dir = scratch("deadline");
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });
    // A deadline the campaign cannot possibly meet.
    let (status, reply) = submit(
        &server,
        r#"{"design":"realm","samples":50000000,"chunk":4096,"deadline_ms":50}"#,
    );
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id");
    let state = wait_terminal(server.addr(), id, Duration::from_secs(60)).expect("terminal");
    assert_eq!(state, "failed", "deadlines are terminal, not retried");
    let (_, detail) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}"), None).expect("detail");
    assert!(detail.contains("deadline exceeded"), "{detail}");
    let metrics = server.registry().snapshot();
    assert_eq!(metrics.counters.get("jobs_retried_total").copied(), None);
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_checkpoints_and_a_restart_resumes_bit_identically() {
    let dir = scratch("drain-resume");
    let body = r#"{"design":"realm:m=16,t=0","samples":2000000,"chunk":20000,"seed":3}"#;
    let id = {
        let server = start(ServeConfig {
            dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        });
        let (status, reply) = submit(&server, body);
        assert_eq!(status, 202, "{reply}");
        let id = extract_u64_field(&reply, "id").expect("id");
        // Let it make some progress, then drain mid-flight.
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown().expect("graceful shutdown");
        id
    };

    // Restart over the same directory: the job is recovered, resumed
    // from its checkpoint, and completes.
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });
    let state = wait_terminal(server.addr(), id, Duration::from_secs(120)).expect("terminal");
    assert_eq!(state, "completed");
    let (_, detail) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}"), None).expect("detail");
    assert!(detail.contains("\"recovered\":true"), "{detail}");
    let (status, resumed) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(status, 200);

    // Reference: the same spec, uninterrupted, on the same server.
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202, "{reply}");
    let ref_id = extract_u64_field(&reply, "id").expect("id");
    wait_terminal(server.addr(), ref_id, Duration::from_secs(120)).expect("terminal");
    let (_, reference) = http_request(
        server.addr(),
        "GET",
        &format!("/jobs/{ref_id}/result"),
        None,
    )
    .expect("result");
    assert_eq!(
        resumed, reference,
        "resumed result must be byte-identical to an uninterrupted run"
    );
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sla_jobs_bind_a_design_and_score_the_budget() {
    let dir = scratch("sla");
    let server = start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });

    // No design: admission asks the tenant's QoS controller to bind the
    // cheapest characterized configuration satisfying the SLA.
    let body = r#"{"tenant":"alice","samples":4096,"seed":3,"error_sla":"mean:0.05"}"#;
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202, "{reply}");
    let id = extract_u64_field(&reply, "id").expect("id in 202");

    let state = wait_terminal(server.addr(), id, Duration::from_secs(120)).expect("terminal");
    assert_eq!(state, "completed");
    let (status, result) =
        http_request(server.addr(), "GET", &format!("/jobs/{id}/result"), None).expect("result");
    assert_eq!(status, 200, "{result}");
    let design = extract_string_field(&result, "design").expect("resolved design in result");
    assert_ne!(design, "auto", "admission must record the concrete design");
    assert!(
        design.starts_with("realm:") || design == "accurate" || design.contains(':'),
        "bound design must come from the characterized zoo: {design}"
    );
    assert!(result.contains("\"error_sla\":\"mean:0.05\""), "{result}");

    // The characterization table is persisted next to the ledgers so a
    // restart loads instead of re-measuring.
    assert!(dir.join("qos_tables.json").is_file());

    // The delivered error is scored against the budget on /metrics, and
    // the tenant's rung is published.
    let (status, metrics) = http_request(server.addr(), "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"sla_jobs_met_total\": 1"), "{metrics}");
    assert!(metrics.contains("qos_rung:alice"), "{metrics}");

    // A second job under the same SLA reuses the cached table and binds
    // the same rung (no drift was observed).
    let (status, reply) = submit(&server, body);
    assert_eq!(status, 202, "{reply}");
    let id2 = extract_u64_field(&reply, "id").expect("id");
    wait_terminal(server.addr(), id2, Duration::from_secs(120)).expect("terminal");
    let (_, result2) =
        http_request(server.addr(), "GET", &format!("/jobs/{id2}/result"), None).expect("result");
    assert_eq!(
        extract_string_field(&result2, "design").as_deref(),
        Some(design.as_str()),
        "stable SLA must keep a stable binding"
    );

    // A budget no approximate design can hold binds the exact top rung
    // (a fresh tenant gets a fresh controller).
    let (status, reply) = submit(
        &server,
        r#"{"tenant":"bob","samples":256,"error_sla":"mean:0.000000001,peak:0.000000001"}"#,
    );
    assert_eq!(status, 202, "{reply}");
    let id3 = extract_u64_field(&reply, "id").expect("id");
    wait_terminal(server.addr(), id3, Duration::from_secs(120)).expect("terminal");
    let (_, result3) =
        http_request(server.addr(), "GET", &format!("/jobs/{id3}/result"), None).expect("result");
    assert_eq!(
        extract_string_field(&result3, "design").as_deref(),
        Some("accurate"),
        "{result3}"
    );

    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
