//! Determinism suite: the keystone guarantee of the parallel
//! characterization engine — for **every** design family in the catalog,
//! campaign results are bit-identical across worker-thread counts and
//! equal to the serial chunked reference. Run in CI on every push.

use realm_baselines::catalog;
use realm_core::{Realm, RealmConfig};
use realm_fault::{Fault, FaultSite};
use realm_metrics::{
    characterize_by_interval_threaded, characterize_range_threaded, distance_metrics_threaded,
    error_profile_threaded, FaultCampaign, MonteCarlo, Threads,
};

/// Small but multi-chunk budget: 8 chunks of 512 samples.
const SAMPLES: u64 = 4_096;
const CHUNK: u64 = 512;
const SEED: u64 = 2020;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn montecarlo_is_bit_identical_for_every_catalog_design() {
    for design in catalog::table1_designs() {
        let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
        // Serial chunked reference: the sink path never uses the pool.
        let reference = campaign.characterize_with(design.as_ref(), |_| {});
        for workers in THREAD_COUNTS {
            let summary = campaign
                .with_threads(Threads::Fixed(workers))
                .characterize(design.as_ref());
            assert_eq!(
                summary,
                reference,
                "{} diverges at {workers} workers",
                design.name()
            );
        }
    }
}

#[test]
fn montecarlo_auto_threads_match_reference() {
    for design in catalog::table2_designs() {
        let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
        let reference = campaign.characterize_with(design.as_ref(), |_| {});
        let auto = campaign
            .with_threads(Threads::Auto)
            .characterize(design.as_ref());
        assert_eq!(auto, reference, "{} diverges under Auto", design.name());
    }
}

#[test]
fn distance_metrics_are_bit_identical_across_thread_counts() {
    for design in catalog::table2_designs() {
        let reference =
            distance_metrics_threaded(design.as_ref(), SAMPLES, SEED, Threads::Fixed(1));
        for workers in THREAD_COUNTS {
            let summary =
                distance_metrics_threaded(design.as_ref(), SAMPLES, SEED, Threads::Fixed(workers));
            assert_eq!(
                summary,
                reference,
                "{} NMED diverges at {workers} workers",
                design.name()
            );
        }
    }
}

#[test]
fn interval_breakdown_is_bit_identical_across_thread_counts() {
    for design in catalog::table2_designs() {
        let reference =
            characterize_by_interval_threaded(design.as_ref(), SAMPLES, SEED, Threads::Fixed(1));
        for workers in THREAD_COUNTS {
            let cells = characterize_by_interval_threaded(
                design.as_ref(),
                SAMPLES,
                SEED,
                Threads::Fixed(workers),
            );
            assert_eq!(cells.len(), reference.len(), "{}", design.name());
            for (got, want) in cells.iter().zip(&reference) {
                assert_eq!((got.ka, got.kb), (want.ka, want.kb), "{}", design.name());
                assert_eq!(
                    got.summary,
                    want.summary,
                    "{} cell ({}, {}) diverges at {workers} workers",
                    design.name(),
                    got.ka,
                    got.kb
                );
            }
        }
    }
}

#[test]
fn exhaustive_sweeps_are_bit_identical_across_thread_counts() {
    for design in catalog::table2_designs() {
        let reference =
            characterize_range_threaded(design.as_ref(), 32..=160, 32..=160, Threads::Fixed(1));
        let profile_ref =
            error_profile_threaded(design.as_ref(), 32..=96, 32..=96, Threads::Fixed(1));
        for workers in THREAD_COUNTS {
            let summary = characterize_range_threaded(
                design.as_ref(),
                32..=160,
                32..=160,
                Threads::Fixed(workers),
            );
            assert_eq!(summary, reference, "{}", design.name());
            let profile =
                error_profile_threaded(design.as_ref(), 32..=96, 32..=96, Threads::Fixed(workers));
            assert_eq!(profile, profile_ref, "{}", design.name());
        }
    }
}

#[test]
fn fault_campaign_is_bit_identical_across_thread_counts() {
    let design = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let campaign = FaultCampaign::new(SAMPLES, SEED).with_chunk(CHUNK);
    for fault in [
        Fault::stuck_at(FaultSite::ShiftAmount { bit: 4 }, false),
        Fault::stuck_at(FaultSite::LutFactor { bit: 0 }, true),
        // Seeded transient plan: activations draw from the chunk substream.
        Fault::transient(FaultSite::ShiftAmount { bit: 2 }, 0.3),
    ] {
        let reference = campaign
            .with_threads(Threads::Fixed(1))
            .characterize(&design, fault);
        for workers in THREAD_COUNTS {
            let report = campaign
                .with_threads(Threads::Fixed(workers))
                .characterize(&design, fault);
            assert_eq!(report, reference, "{fault:?} diverges at {workers} workers");
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same campaign, fresh invocations: not just thread-count stable but
    // run-to-run stable.
    let design = Realm::new(RealmConfig::n16(8, 3)).expect("paper design point");
    let a = MonteCarlo::new(SAMPLES, SEED).characterize(&design);
    let b = MonteCarlo::new(SAMPLES, SEED).characterize(&design);
    assert_eq!(a, b);
}
