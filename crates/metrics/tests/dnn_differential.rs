//! Determinism contract of the per-layer DNN sweep: the same `DnnSweep`
//! must produce bit-identical outputs at 1, 2 and 8 threads, and across
//! an interrupt + journaled resume — the acceptance bar for moving the
//! inference campaigns onto the shared `Workload` engine.

use realm_metrics::dnn::{parse_layer_bindings, DnnConfig, DnnSweep};
use realm_metrics::{Engine, Supervisor, Threads};

fn sweep() -> DnnSweep {
    let net = realm_dsp::tiny_net();
    let macs = net.mac_layers().len();
    let layer_names: Vec<&str> = net.mac_layers();
    let mixed = parse_layer_bindings("conv1=realm16t4,dense1=scaletrim:t=6@16")
        .expect("canonical mixed spec");
    let configs = vec![
        DnnConfig::uniform("accurate", macs).expect("accurate"),
        DnnConfig::uniform("realm:m=16,t=0", macs).expect("realm16t0"),
        DnnConfig::uniform("realm:m=16,t=4", macs).expect("realm16t4"),
        DnnConfig::uniform("drum:k=4", macs).expect("drum4"),
        DnnConfig::uniform("calm", macs).expect("calm"),
        DnnConfig::from_bindings("accurate", &mixed, &layer_names).expect("mixed"),
    ];
    DnnSweep::new(net, configs, 96, 0xACC).expect("sweep")
}

/// Accuracies are bitwise equal however many workers partition the
/// chunks: the workload is pure and finalize restores chunk order.
#[test]
fn sweep_is_bit_identical_across_1_2_and_8_threads() {
    let w = sweep();
    let one = Engine::new(Threads::Fixed(1)).run(&w).expect("points");
    for threads in [2usize, 8] {
        let many = Engine::new(Threads::Fixed(threads))
            .run(&w)
            .expect("points");
        assert_eq!(one, many, "thread count {threads} changed the sweep");
    }
    assert_eq!(one.len(), w.configs().len());
    // Sanity: the exact binding classifies the synthetic patches well and
    // approximate bindings stay within a usable band rather than collapsing.
    assert!(
        one[0].accuracy > 0.85,
        "accurate config: {}",
        one[0].accuracy
    );
    for p in &one {
        assert!(
            p.accuracy > 0.25,
            "config {} collapsed to chance: {}",
            p.config_index,
            p.accuracy
        );
    }
}

/// Interrupting after two chunks and resuming under a different thread
/// count reproduces the uninterrupted sweep exactly, through the
/// journaled checkpoint directory.
#[test]
fn sweep_survives_interrupt_and_resume_bit_identically() {
    let dir = std::env::temp_dir().join(format!("realm-dnn-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let w = sweep();

    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir)
        .with_chunk_budget(2);
    let partial = Engine::supervised(&w, &sup).expect("interrupted run");
    assert!(
        !partial.report.is_complete(),
        "budget of 2 chunks must interrupt a {}-config sweep",
        w.configs().len()
    );

    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(2))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = Engine::supervised(&w, &sup).expect("resumed run");
    assert!(resumed.report.is_complete());
    assert_eq!(
        resumed.value,
        Engine::new(Threads::Fixed(1)).run(&w),
        "resume diverged from the uninterrupted sweep"
    );
    std::fs::remove_dir_all(&dir).ok();
}
