//! Supervised campaigns must be indistinguishable from unsupervised
//! ones when they complete — bit-for-bit, across interruption/resume
//! cycles and thread counts — and degrade gracefully (partial results
//! with honest accounting) when chunks are quarantined.

use std::path::PathBuf;

use realm_baselines::Calm;
use realm_core::{Realm, RealmConfig};
use realm_fault::{Fault, FaultSite};
use realm_harness::Supervisor;
use realm_metrics::{
    characterize_by_interval_threaded, characterize_range_threaded, distance_metrics_supervised,
    distance_metrics_threaded, FaultCampaign, MonteCarlo, Threads,
};

const SAMPLES: u64 = 40_000;
const CHUNK: u64 = 1 << 11;
const SEED: u64 = 0x5EED;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realm-supervision-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn realm16() -> Realm {
    Realm::new(RealmConfig::n16(16, 0)).expect("paper design point")
}

#[test]
fn supervised_montecarlo_matches_plain_bit_for_bit() {
    let design = realm16();
    let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
    let plain = campaign.characterize(&design);
    let sup = campaign
        .characterize_supervised(&design, &Supervisor::new())
        .expect("supervised run");
    assert!(sup.report.is_complete());
    assert_eq!(sup.value, Some(plain));
}

#[test]
fn interrupted_montecarlo_resumes_bit_identically_across_thread_counts() {
    let design = realm16();
    let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
    let plain = campaign.characterize(&design);
    for &threads in &[1usize, 2, 8] {
        let dir = temp_dir(&format!("mc-{threads}"));
        let first = campaign
            .characterize_supervised(
                &design,
                &Supervisor::new()
                    .with_threads(Threads::from_count(threads))
                    .checkpoint_to(&dir)
                    .with_chunk_budget(campaign.plan().num_chunks() / 2),
            )
            .expect("first leg");
        assert!(!first.report.is_complete());

        let resumed = campaign
            .characterize_supervised(
                &design,
                &Supervisor::new()
                    .with_threads(Threads::from_count(9 - threads))
                    .checkpoint_to(&dir)
                    .resume(true),
            )
            .expect("resume leg");
        assert!(resumed.report.is_complete());
        assert_eq!(
            resumed.value,
            Some(plain),
            "killed+resumed must equal uninterrupted (threads {threads})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn quarantined_montecarlo_returns_partial_with_accounting() {
    let design = realm16();
    let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
    let sup = campaign
        .characterize_supervised(
            &design,
            &Supervisor::new()
                .with_retries(0)
                .with_injected_panics(&[0, 3], true),
        )
        .expect("supervised run");
    assert_eq!(sup.report.quarantined.len(), 2);
    assert!(sup.report.stopped.is_none());
    // The summary's sample count excludes zero products, so it is
    // bounded by — and close to — the covered-sample accounting.
    let value = sup.value.expect("partial result");
    assert!(value.samples <= sup.report.covered_samples);
    assert!(value.samples > sup.report.covered_samples - 100);
}

#[test]
fn fully_quarantined_campaign_yields_none_not_a_panic() {
    let design = realm16();
    let campaign = MonteCarlo::new(1_000, SEED).with_chunk(1 << 10); // one chunk
    let sup = campaign
        .characterize_supervised(
            &design,
            &Supervisor::new()
                .with_retries(1)
                .with_injected_panics(&[0], true),
        )
        .expect("supervised run");
    assert!(sup.value.is_none());
    assert_eq!(sup.report.covered_samples, 0);
    assert_eq!(sup.report.quarantined.len(), 1);
}

#[test]
fn supervised_nmed_matches_plain() {
    let design = Calm::new(16);
    let plain = distance_metrics_threaded(&design, SAMPLES, SEED, Threads::Auto);
    let sup = distance_metrics_supervised(&design, SAMPLES, SEED, &Supervisor::new())
        .expect("supervised run");
    assert!(sup.report.is_complete());
    assert_eq!(sup.value, Some(plain));
}

#[test]
fn supervised_exhaustive_matches_plain_after_resume() {
    let design = realm16();
    let plain = characterize_range_threaded(&design, 32..=255, 32..=255, Threads::Auto);
    let dir = temp_dir("exhaustive");
    let first = realm_metrics::characterize_range_supervised(
        &design,
        32..=255,
        32..=255,
        &Supervisor::new().checkpoint_to(&dir).with_chunk_budget(10),
    )
    .expect("first leg");
    assert!(!first.report.is_complete());
    let resumed = realm_metrics::characterize_range_supervised(
        &design,
        32..=255,
        32..=255,
        &Supervisor::new().checkpoint_to(&dir).resume(true),
    )
    .expect("resume leg");
    assert!(resumed.report.is_complete());
    assert_eq!(resumed.value, Some(plain));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_breakdown_matches_plain() {
    let design = realm16();
    let plain = characterize_by_interval_threaded(&design, SAMPLES, SEED, Threads::Auto);
    let sup = realm_metrics::characterize_by_interval_supervised(
        &design,
        SAMPLES,
        SEED,
        &Supervisor::new(),
    )
    .expect("supervised run");
    assert!(sup.report.is_complete());
    let cells = sup.value.expect("complete run has cells");
    assert_eq!(cells.len(), plain.len());
    for (a, b) in cells.iter().zip(&plain) {
        assert_eq!((a.ka, a.kb), (b.ka, b.kb));
        assert_eq!(a.summary, b.summary);
    }
}

#[test]
fn supervised_fault_campaign_matches_plain_after_resume() {
    let design = realm16();
    let fault = Fault::stuck_at(FaultSite::ShiftAmount { bit: 4 }, false);
    let campaign = FaultCampaign::new(20_000, SEED).with_chunk(1 << 11);
    let plain = campaign.characterize(&design, fault);
    let dir = temp_dir("fault");
    let first = campaign
        .characterize_supervised(
            &design,
            fault,
            &Supervisor::new().checkpoint_to(&dir).with_chunk_budget(4),
        )
        .expect("first leg");
    assert!(!first.report.is_complete());
    let resumed = campaign
        .characterize_supervised(
            &design,
            fault,
            &Supervisor::new().checkpoint_to(&dir).resume(true),
        )
        .expect("resume leg");
    assert!(resumed.report.is_complete());
    assert_eq!(resumed.value, Some(plain));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_stuck_at_sweep_stops_at_deadline_and_resumes() {
    let design = realm16();
    let campaign = FaultCampaign::new(500, SEED).with_chunk(500);
    let plain = campaign.stuck_at_sweep(&design);
    // An already-expired deadline: the sweep schedules nothing.
    let stopped = campaign
        .stuck_at_sweep_supervised(
            &design,
            &Supervisor::new().with_deadline(std::time::Duration::ZERO),
        )
        .expect("deadline sweep");
    assert!(stopped.report.stopped.is_some());
    assert!(stopped.value.is_none());
    // Unconstrained, the sweep reproduces the plain reports exactly.
    let full = campaign
        .stuck_at_sweep_supervised(&design, &Supervisor::new())
        .expect("full sweep");
    assert_eq!(full.value.expect("complete sweep"), plain);
}

#[test]
fn campaign_ids_distinguish_designs_and_faults() {
    let campaign = MonteCarlo::new(SAMPLES, SEED).with_chunk(CHUNK);
    let a = campaign.campaign_id(&realm16());
    let b = campaign.campaign_id(&Calm::new(16));
    assert_ne!(a.fingerprint(), b.fingerprint());

    let fc = FaultCampaign::new(1_000, SEED);
    let design = realm16();
    let f1 = fc.campaign_id(
        &design,
        Fault::stuck_at(FaultSite::ShiftAmount { bit: 0 }, false),
    );
    let f2 = fc.campaign_id(
        &design,
        Fault::stuck_at(FaultSite::ShiftAmount { bit: 0 }, true),
    );
    let f3 = fc.campaign_id(
        &design,
        Fault::transient(FaultSite::ShiftAmount { bit: 0 }, 0.5),
    );
    assert_ne!(f1.fingerprint(), f2.fingerprint());
    assert_ne!(f1.fingerprint(), f3.fingerprint());
    assert_ne!(f2.fingerprint(), f3.fingerprint());
}
