//! Engine differential suite: proves the `Workload`/`Engine` rewrite of
//! the five campaign families folds **bit-identically** to the
//! pre-refactor drivers.
//!
//! The goldens below were captured by running the legacy per-family
//! chunk drivers (before their deletion) on small fixed configurations
//! and recording `f64::to_bits` of every output field. Each family is
//! then pinned three ways:
//!
//! 1. the engine path reproduces the goldens at 1, 2 and 8 worker
//!    threads,
//! 2. a supervised run-to-completion reproduces the goldens,
//! 3. an interrupted (chunk-budget) run resumed from its journal
//!    reproduces the unsupervised output bit-for-bit.
//!
//! SIGKILL-and-resume coverage for the same engine path lives in
//! `crates/bench/tests/resume.rs`, which kills a real campaign process
//! mid-run and diffs the resumed summary byte-for-byte.

use realm_baselines::Calm;
use realm_core::{Realm, RealmConfig};
use realm_fault::{Fault, FaultSite};
use realm_metrics::faults::FaultCampaign;
use realm_metrics::nmed::{distance_metrics_supervised, distance_metrics_threaded};
use realm_metrics::summary::ErrorSummary;
use realm_metrics::{
    characterize_by_interval_supervised, characterize_by_interval_threaded,
    characterize_range_supervised, characterize_range_threaded, error_profile_supervised,
    error_profile_threaded, IntervalCell, MonteCarlo, Supervisor, Threads,
};
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn realm(m: u32, t: u32) -> Realm {
    Realm::new(RealmConfig::n16(m, t)).expect("paper design point")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realm-engine-diff-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Asserts a summary against golden `[samples, bias, mean, variance,
/// min, max]` (floats as IEEE-754 bit patterns).
fn assert_summary_bits(what: &str, s: &ErrorSummary, golden: [u64; 6]) {
    let [samples, bias, mean, var, min, max] = golden;
    assert_eq!(s.samples, samples, "{what}: samples");
    assert_eq!(s.bias.to_bits(), bias, "{what}: bias {:e}", s.bias);
    assert_eq!(
        s.mean_error.to_bits(),
        mean,
        "{what}: mean {:e}",
        s.mean_error
    );
    assert_eq!(
        s.variance.to_bits(),
        var,
        "{what}: variance {:e}",
        s.variance
    );
    assert_eq!(s.min_error.to_bits(), min, "{what}: min {:e}", s.min_error);
    assert_eq!(s.max_error.to_bits(), max, "{what}: max {:e}", s.max_error);
}

fn fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn cells_hash(cells: &[IntervalCell]) -> u64 {
    fnv(cells.iter().flat_map(|c| {
        [
            c.ka as u64,
            c.kb as u64,
            c.summary.samples,
            c.summary.bias.to_bits(),
            c.summary.mean_error.to_bits(),
            c.summary.variance.to_bits(),
            c.summary.min_error.to_bits(),
            c.summary.max_error.to_bits(),
        ]
    }))
}

// ---------------------------------------------------------------- montecarlo

/// Golden: MonteCarlo::new(40_000, 42).with_chunk(1 << 12) on REALM16 t=0,
/// captured from the pre-refactor driver.
fn assert_mc_realm16_golden(s: &ErrorSummary, what: &str) {
    assert_summary_bits(
        what,
        s,
        [
            39_997,
            0x3f1d9aa2e24f09cb,
            0x3f712c3a8cece97c,
            0x3efdc05bdc739f19,
            0xbf942ac4847847c4,
            0x3f9246f1245ccfe5,
        ],
    );
}

#[test]
fn montecarlo_matches_prerefactor_golden_at_every_thread_count() {
    let design = realm(16, 0);
    let base = MonteCarlo::new(40_000, 42).with_chunk(1 << 12);
    for workers in THREAD_COUNTS {
        let s = base
            .with_threads(Threads::Fixed(workers))
            .characterize(&design);
        assert_mc_realm16_golden(&s, &format!("montecarlo workers={workers}"));
    }
    // A second design pins the family beyond one datapath.
    let s = base
        .with_threads(Threads::Fixed(2))
        .characterize(&Calm::new(16));
    assert_summary_bits(
        "montecarlo cALM",
        &s,
        [
            39_997,
            0xbfa39939d91406cc,
            0x3fa39939d91406cc,
            0x3f4c41a728082db0,
            0xbfbc661a0ce3677e,
            0x0000000000000000,
        ],
    );
}

#[test]
fn montecarlo_supervised_and_resumed_match_golden() {
    let design = realm(16, 0);
    let campaign = MonteCarlo::new(40_000, 42).with_chunk(1 << 12);
    let dir = temp_dir("mc");

    // Interrupt halfway (10 chunks total), then resume at a different
    // thread count.
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir)
        .with_chunk_budget(5);
    let partial = campaign
        .characterize_supervised(&design, &sup)
        .expect("supervised run");
    assert!(!partial.report.is_complete());

    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(8))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = campaign
        .characterize_supervised(&design, &sup)
        .expect("resumed run");
    assert!(resumed.report.is_complete());
    assert!(resumed.report.replayed_chunks >= 5);
    let s = resumed.value.expect("complete run has a summary");
    assert_mc_realm16_golden(&s, "montecarlo resumed");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- exhaustive

/// Golden: characterize_range(REALM8 t=2, 1..=300, 1..=300).
fn assert_range_golden(s: &ErrorSummary, what: &str) {
    assert_summary_bits(
        what,
        s,
        [
            90_000,
            0x3f51712593e8e8b4,
            0x3f8186d887635cbb,
            0x3f1f190af91e7aa8,
            0xbfbc71c71c71c71c,
            0x3f9db13b13b13b14,
        ],
    );
}

const PROFILE_GOLDEN_LEN: usize = 4225;
const PROFILE_GOLDEN_HASH: u64 = 0x1e3cbe42e0cab18e;

fn profile_hash(points: &[realm_metrics::exhaustive::ProfilePoint]) -> u64 {
    fnv(points.iter().flat_map(|p| [p.a, p.b, p.error.to_bits()]))
}

#[test]
fn exhaustive_matches_prerefactor_golden_at_every_thread_count() {
    let r82 = realm(8, 2);
    let r16 = realm(16, 0);
    for workers in THREAD_COUNTS {
        let threads = Threads::Fixed(workers);
        let s = characterize_range_threaded(&r82, 1..=300, 1..=300, threads);
        assert_range_golden(&s, &format!("range workers={workers}"));

        let pts = error_profile_threaded(&r16, 32..=96, 32..=96, threads);
        assert_eq!(pts.len(), PROFILE_GOLDEN_LEN, "profile workers={workers}");
        assert_eq!(
            profile_hash(&pts),
            PROFILE_GOLDEN_HASH,
            "profile workers={workers}"
        );
    }
}

#[test]
fn exhaustive_supervised_and_resumed_match_golden() {
    let r82 = realm(8, 2);
    let dir = temp_dir("range");
    // 300 rows at 8 rows/chunk = 38 chunks; stop at 19.
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(2))
        .checkpoint_to(&dir)
        .with_chunk_budget(19);
    let partial =
        characterize_range_supervised(&r82, 1..=300, 1..=300, &sup).expect("supervised run");
    assert!(!partial.report.is_complete());
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = characterize_range_supervised(&r82, 1..=300, 1..=300, &sup).expect("resumed run");
    assert!(resumed.report.is_complete());
    assert_range_golden(
        &resumed.value.expect("complete run has a summary"),
        "range resumed",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_supervised_and_resumed_match_golden() {
    let r16 = realm(16, 0);
    let dir = temp_dir("profile");
    // 65 rows at 8 rows/chunk = 9 chunks; stop at 4.
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(2))
        .checkpoint_to(&dir)
        .with_chunk_budget(4);
    let partial = error_profile_supervised(&r16, 32..=96, 32..=96, &sup).expect("supervised run");
    assert!(!partial.report.is_complete());
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(8))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = error_profile_supervised(&r16, 32..=96, 32..=96, &sup).expect("resumed run");
    assert!(resumed.report.is_complete());
    let pts = resumed.value.expect("complete run has points");
    assert_eq!(pts.len(), PROFILE_GOLDEN_LEN);
    assert_eq!(profile_hash(&pts), PROFILE_GOLDEN_HASH);
    std::fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------- breakdown

const BREAKDOWN_GOLDEN_LEN: usize = 135;
const BREAKDOWN_GOLDEN_HASH: u64 = 0x12f1ed94999eed1a;

#[test]
fn breakdown_matches_prerefactor_golden_at_every_thread_count() {
    let r41 = realm(4, 1);
    for workers in THREAD_COUNTS {
        let cells = characterize_by_interval_threaded(&r41, 100_000, 9, Threads::Fixed(workers));
        assert_eq!(cells.len(), BREAKDOWN_GOLDEN_LEN, "workers={workers}");
        assert_eq!(
            cells_hash(&cells),
            BREAKDOWN_GOLDEN_HASH,
            "workers={workers}"
        );
    }
}

#[test]
fn breakdown_supervised_and_resumed_match_golden() {
    let r41 = realm(4, 1);
    let dir = temp_dir("breakdown");
    // 100_000 samples at the default 65_536 chunk = 2 chunks; stop at 1.
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir)
        .with_chunk_budget(1);
    let partial =
        characterize_by_interval_supervised(&r41, 100_000, 9, &sup).expect("supervised run");
    assert!(!partial.report.is_complete());
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(2))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = characterize_by_interval_supervised(&r41, 100_000, 9, &sup).expect("resumed run");
    assert!(resumed.report.is_complete());
    let cells = resumed.value.expect("complete run has cells");
    assert_eq!(cells.len(), BREAKDOWN_GOLDEN_LEN);
    assert_eq!(cells_hash(&cells), BREAKDOWN_GOLDEN_HASH);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------- nmed

const NMED_GOLDEN: (u64, u64, u64) = (100_000, 0x3f5cfe1fe27f04cc, 0x3f9343d52b971359);

#[test]
fn nmed_matches_prerefactor_golden_at_every_thread_count() {
    let r83 = realm(8, 3);
    for workers in THREAD_COUNTS {
        let d = distance_metrics_threaded(&r83, 100_000, 5, Threads::Fixed(workers));
        assert_eq!(d.samples, NMED_GOLDEN.0, "workers={workers}");
        assert_eq!(d.nmed.to_bits(), NMED_GOLDEN.1, "workers={workers}");
        assert_eq!(d.worst_case.to_bits(), NMED_GOLDEN.2, "workers={workers}");
    }
}

#[test]
fn nmed_supervised_and_resumed_match_golden() {
    let r83 = realm(8, 3);
    let dir = temp_dir("nmed");
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir)
        .with_chunk_budget(1);
    let partial = distance_metrics_supervised(&r83, 100_000, 5, &sup).expect("supervised run");
    assert!(!partial.report.is_complete());
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(8))
        .checkpoint_to(&dir)
        .resume(true);
    let resumed = distance_metrics_supervised(&r83, 100_000, 5, &sup).expect("resumed run");
    assert!(resumed.report.is_complete());
    let d = resumed.value.expect("complete run has a summary");
    assert_eq!(d.samples, NMED_GOLDEN.0);
    assert_eq!(d.nmed.to_bits(), NMED_GOLDEN.1);
    assert_eq!(d.worst_case.to_bits(), NMED_GOLDEN.2);
    std::fs::remove_dir_all(&dir).ok();
}

// -------------------------------------------------------------------- faults

fn shift4_fault() -> Fault {
    Fault::stuck_at(FaultSite::ShiftAmount { bit: 4 }, false)
}

fn assert_fault_golden(r: &realm_metrics::SiteReport, what: &str) {
    assert_eq!(r.samples, 4_000, "{what}: samples");
    assert_eq!(r.disturbance_rate.to_bits(), 0x3ff0000000000000, "{what}");
    assert_eq!(r.corruption_rate.to_bits(), 0x3ff0000000000000, "{what}");
    assert_eq!(r.detection_rate.to_bits(), 0x3ff0000000000000, "{what}");
    assert_eq!(r.fallback_rate.to_bits(), 0x3ff0000000000000, "{what}");
    assert_eq!(r.nmed_clean.to_bits(), 0x3f504d99084493d5, "{what}");
    assert_eq!(r.nmed_faulty.to_bits(), 0x3fd0145882f7b633, "{what}");
    assert_eq!(r.nmed_guarded.to_bits(), 0x0000000000000000, "{what}");
    assert_eq!(r.mre_faulty.to_bits(), 0x3fefffe002439275, "{what}");
}

#[test]
fn faults_match_prerefactor_golden_at_every_thread_count() {
    let design = realm(16, 0);
    for workers in THREAD_COUNTS {
        let r = FaultCampaign::new(4_000, 0xCA11)
            .with_threads(Threads::Fixed(workers))
            .characterize(&design, shift4_fault());
        assert_fault_golden(&r, &format!("faults workers={workers}"));
    }
}

#[test]
fn faults_supervised_complete_matches_golden_and_interrupts_resume() {
    let design = realm(16, 0);
    let dir = temp_dir("faults");

    // Supervised complete run reproduces the golden (single default
    // chunk: 4_000 samples fit in one 65_536-sample chunk).
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(2))
        .checkpoint_to(&dir);
    let complete = FaultCampaign::new(4_000, 0xCA11)
        .characterize_supervised(&design, shift4_fault(), &sup)
        .expect("supervised run");
    assert!(complete.report.is_complete());
    assert_fault_golden(
        &complete.value.expect("complete run has a report"),
        "faults supervised",
    );

    // A finer-chunked campaign interrupts and resumes bit-identically
    // to its own unsupervised output (different substreams than the
    // golden, so compared against itself).
    let fine = FaultCampaign::new(4_000, 0xCA11).with_chunk(512);
    let reference = fine
        .with_threads(Threads::Fixed(1))
        .characterize(&design, shift4_fault());
    let dir2 = temp_dir("faults-fine");
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(1))
        .checkpoint_to(&dir2)
        .with_chunk_budget(3);
    let partial = fine
        .characterize_supervised(&design, shift4_fault(), &sup)
        .expect("supervised run");
    assert!(!partial.report.is_complete());
    let sup = Supervisor::new()
        .with_threads(Threads::Fixed(8))
        .checkpoint_to(&dir2)
        .resume(true);
    let resumed = fine
        .characterize_supervised(&design, shift4_fault(), &sup)
        .expect("resumed run");
    assert!(resumed.report.is_complete());
    assert_eq!(resumed.value.expect("complete"), reference);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}
