//! Pareto-front extraction for the accuracy vs. resource-efficiency
//! design space of the paper's Fig. 4 (reduction on the x-axis — larger
//! is better; error on the y-axis — smaller is better).

/// One labelled design point in a gain/cost plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Display label (e.g. `"REALM16 (t=3)"`).
    pub label: String,
    /// The quantity to maximize (e.g. power reduction, in percent).
    pub gain: f64,
    /// The quantity to minimize (e.g. mean error, in percent).
    pub cost: f64,
}

impl ParetoPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, gain: f64, cost: f64) -> Self {
        ParetoPoint {
            label: label.into(),
            gain,
            cost,
        }
    }
}

/// Returns the indices of the Pareto-optimal points (maximize `gain`,
/// minimize `cost`), sorted by increasing gain.
///
/// A point is dominated if some other point has `gain >=` and `cost <=`
/// with at least one strict inequality.
///
/// ```
/// use realm_metrics::{pareto_front, ParetoPoint};
///
/// let pts = vec![
///     ParetoPoint::new("a", 50.0, 1.0),
///     ParetoPoint::new("b", 60.0, 0.5), // dominates "a"
///     ParetoPoint::new("c", 70.0, 2.0),
/// ];
/// let front = pareto_front(&pts);
/// assert_eq!(front, vec![1, 2]);
/// ```
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by gain descending, cost ascending; sweep keeping the running
    // minimum cost.
    order.sort_by(|&i, &j| {
        points[j]
            .gain
            .total_cmp(&points[i].gain)
            .then(points[i].cost.total_cmp(&points[j].cost))
    });
    let mut front = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut last_gain = f64::INFINITY;
    for &i in &order {
        let p = &points[i];
        if p.cost < best_cost || (p.cost == best_cost && p.gain == last_gain) {
            // Equal-cost, equal-gain duplicates are all kept; otherwise a
            // strictly lower cost is required as gain decreases.
            if p.cost < best_cost {
                best_cost = p.cost;
                last_gain = p.gain;
                front.push(i);
            } else if p.gain == last_gain {
                front.push(i);
            }
        }
    }
    front.sort_by(|&i, &j| points[i].gain.total_cmp(&points[j].gain));
    front
}

/// True if point `i` lies on the Pareto front of `points`.
pub fn is_pareto_optimal(points: &[ParetoPoint], i: usize) -> bool {
    pareto_front(points).contains(&i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(label: &str, gain: f64, cost: f64) -> ParetoPoint {
        ParetoPoint::new(label, gain, cost)
    }

    #[test]
    fn single_point_is_optimal() {
        let pts = vec![p("only", 10.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = vec![
            p("good", 80.0, 1.0),
            p("dominated", 70.0, 2.0), // worse on both axes
            p("cheap", 90.0, 3.0),
        ];
        let front = pareto_front(&pts);
        assert!(front.contains(&0));
        assert!(front.contains(&2));
        assert!(!front.contains(&1));
    }

    #[test]
    fn front_is_sorted_by_gain() {
        let pts = vec![p("hi", 90.0, 5.0), p("lo", 50.0, 0.5), p("mid", 70.0, 2.0)];
        let front = pareto_front(&pts);
        let gains: Vec<f64> = front.iter().map(|&i| pts[i].gain).collect();
        assert!(gains.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(front.len(), 3); // chain: each trades error for gain
    }

    #[test]
    fn equal_points_all_kept() {
        let pts = vec![p("a", 60.0, 1.0), p("b", 60.0, 1.0)];
        assert_eq!(pareto_front(&pts).len(), 2);
    }

    #[test]
    fn strictly_worse_cost_at_same_gain_excluded() {
        let pts = vec![p("a", 60.0, 1.0), p("b", 60.0, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn is_pareto_optimal_agrees_with_front() {
        let pts = vec![p("a", 80.0, 1.0), p("b", 70.0, 2.0), p("c", 90.0, 3.0)];
        assert!(is_pareto_optimal(&pts, 0));
        assert!(!is_pareto_optimal(&pts, 1));
        assert!(is_pareto_optimal(&pts, 2));
    }
}
