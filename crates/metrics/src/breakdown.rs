//! Per-interval error breakdown: error statistics split by the operands'
//! power-of-two intervals `(k_a, k_b)`.
//!
//! This directly tests the paper's Eq. 12 property: REALM's
//! error-reduction factors are *independent of the interval*, so its
//! relative-error statistics should look the same in every `(k_a, k_b)`
//! cell (up to the fraction-quantization floor in the smallest
//! intervals). For designs without that property (e.g. SSM's static
//! segmentation) the breakdown exposes exactly where the error lives.

use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_core::Multiplier;
use realm_harness::{HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan, Threads};

use crate::engine::{Engine, Workload};
use crate::montecarlo::DEFAULT_CHUNK;
use crate::summary::{ErrorAccumulator, ErrorSummary};

/// Error statistics for one `(k_a, k_b)` interval pair.
#[derive(Debug, Clone)]
pub struct IntervalCell {
    /// Leading-one position of operand `a`.
    pub ka: u32,
    /// Leading-one position of operand `b`.
    pub kb: u32,
    /// Statistics over the samples that landed in this cell.
    pub summary: ErrorSummary,
}

/// [`characterize_by_interval`] with an explicit worker-thread policy.
///
/// Chunk `i` of the sample budget draws from `SplitMix64::stream(seed, i)`
/// into a private grid of accumulators; the per-chunk grids are merged
/// cell-wise in chunk order, so the breakdown is bit-identical for every
/// policy.
pub fn characterize_by_interval_threaded(
    design: &dyn Multiplier,
    samples: u64,
    seed: u64,
    threads: Threads,
) -> Vec<IntervalCell> {
    Engine::new(threads)
        .run(&BreakdownWorkload::new(design, samples, seed))
        .unwrap_or_default()
}

/// The [`Workload`] of a per-interval breakdown campaign: chunk `i`
/// draws nonzero operand pairs from `SplitMix64::stream(seed, i)` into a
/// private `width × width` grid of accumulators; grids merge cell-wise
/// in chunk order and empty cells are dropped at finalization.
#[derive(Debug, Clone, Copy)]
pub struct BreakdownWorkload<'a> {
    design: &'a dyn Multiplier,
    samples: u64,
    seed: u64,
}

impl<'a> BreakdownWorkload<'a> {
    /// The breakdown of `design` over `samples` uniform nonzero operand
    /// pairs drawn from `seed`.
    pub fn new(design: &'a dyn Multiplier, samples: u64, seed: u64) -> Self {
        BreakdownWorkload {
            design,
            samples,
            seed,
        }
    }
}

impl Workload for BreakdownWorkload<'_> {
    type Part = Vec<ErrorAccumulator>;
    type Output = Vec<IntervalCell>;

    fn family(&self) -> &'static str {
        "breakdown"
    }

    fn subject(&self) -> String {
        self.design.label()
    }

    fn plan(&self) -> ChunkPlan {
        ChunkPlan::new(self.samples, DEFAULT_CHUNK)
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run_chunk(&self, chunk: Chunk) -> Vec<ErrorAccumulator> {
        let design = self.design;
        let width = design.width() as usize;
        let max = design.max_operand();
        let mut rng = SplitMix64::stream(self.seed, chunk.index);
        let mut pairs = Vec::with_capacity(chunk.len as usize);
        for _ in 0..chunk.len {
            let a = rng.range_inclusive(1, max);
            let b = rng.range_inclusive(1, max);
            pairs.push((a, b));
        }
        let mut products = vec![0u64; pairs.len()];
        design.multiply_batch(&pairs, &mut products);
        let mut cells = vec![ErrorAccumulator::new(); width * width];
        for (&(a, b), &p) in pairs.iter().zip(&products) {
            let exact = a as u128 * b as u128; // nonzero: operands are ≥ 1
            let e = (p as f64 - exact as f64) / exact as f64;
            let ka = a.ilog2() as usize;
            let kb = b.ilog2() as usize;
            cells[ka * width + kb].push(e);
        }
        cells
    }

    fn finalize(&self, parts: Vec<(u64, Vec<ErrorAccumulator>)>) -> Option<Vec<IntervalCell>> {
        // Merge per-chunk grids cell-wise (parts arrive in chunk order)
        // and drop cells no sample landed in.
        let width = self.design.width() as usize;
        let mut cells = vec![ErrorAccumulator::new(); width * width];
        for (_, grid) in &parts {
            for (total, part) in cells.iter_mut().zip(grid) {
                total.merge(part);
            }
        }
        let cells: Vec<IntervalCell> = cells
            .into_iter()
            .enumerate()
            .filter(|(_, acc)| acc.count() > 0)
            .map(|(idx, acc)| IntervalCell {
                ka: (idx / width) as u32,
                kb: (idx % width) as u32,
                summary: acc.finish(),
            })
            .collect();
        (!cells.is_empty()).then_some(cells)
    }
}

/// [`characterize_by_interval`] under a [`Supervisor`]: the breakdown's
/// per-chunk grids are journaled, so an interrupted campaign resumes
/// bit-identically. On a partial run the cells cover the completed
/// chunks only (`None` when no sample landed anywhere).
pub fn characterize_by_interval_supervised(
    design: &dyn Multiplier,
    samples: u64,
    seed: u64,
    supervisor: &Supervisor,
) -> Result<Supervised<Vec<IntervalCell>>, HarnessError> {
    Engine::supervised(&BreakdownWorkload::new(design, samples, seed), supervisor)
}

/// Characterizes a design per power-of-two-interval pair with `samples`
/// uniform random operand pairs; cells that received no samples are
/// omitted. Runs on every available hardware thread — the thread count
/// never changes the result.
pub fn characterize_by_interval(
    design: &dyn Multiplier,
    samples: u64,
    seed: u64,
) -> Vec<IntervalCell> {
    characterize_by_interval_threaded(design, samples, seed, Threads::Auto)
}

/// The spread of per-interval mean errors: `(min, max)` of the cell means
/// restricted to intervals with at least `min_k` on both axes (small
/// intervals are dominated by output quantization) and at least
/// `min_samples` samples.
pub fn interval_mean_spread(
    cells: &[IntervalCell],
    min_k: u32,
    min_samples: u64,
) -> Option<(f64, f64)> {
    let means: Vec<f64> = cells
        .iter()
        .filter(|c| c.ka >= min_k && c.kb >= min_k && c.summary.samples >= min_samples)
        .map(|c| c.summary.mean_error)
        .collect();
    if means.is_empty() {
        return None;
    }
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Ssm;
    use realm_core::{Realm, RealmConfig};

    #[test]
    fn realm_error_is_interval_independent() {
        // Eq. 12: the same factors serve every interval, so the mean error
        // varies little across large intervals.
        let realm = Realm::new(RealmConfig::n16(8, 0)).expect("paper design point");
        let cells = characterize_by_interval(&realm, 1 << 20, 11);
        let (lo, hi) = interval_mean_spread(&cells, 10, 400).expect("large intervals get samples");
        assert!(
            hi / lo < 1.35,
            "REALM per-interval mean error spread too wide: {lo:.5}..{hi:.5}"
        );
    }

    #[test]
    fn ssm_error_is_interval_dependent() {
        // SSM's static segmentation is exact below 2^m and truncating
        // above: the breakdown must show a strong interval dependence.
        let ssm = Ssm::new(16, 8).expect("valid configuration");
        let cells = characterize_by_interval(&ssm, 1 << 18, 11);
        let small: Vec<&IntervalCell> = cells.iter().filter(|c| c.ka < 8 && c.kb < 8).collect();
        let large: Vec<&IntervalCell> = cells.iter().filter(|c| c.ka >= 8 && c.kb >= 8).collect();
        assert!(
            small.iter().all(|c| c.summary.mean_error == 0.0),
            "small intervals are exact"
        );
        assert!(
            large.iter().any(|c| c.summary.mean_error > 0.001),
            "large intervals must show truncation error"
        );
    }

    #[test]
    fn cells_cover_sampled_intervals() {
        let realm = Realm::new(RealmConfig::n16(4, 0)).expect("paper design point");
        let cells = characterize_by_interval(&realm, 50_000, 3);
        // Uniform 16-bit operands: the (15, 15) cell holds ~25 % of mass.
        let top = cells
            .iter()
            .find(|c| c.ka == 15 && c.kb == 15)
            .expect("dominant cell sampled");
        assert!(top.summary.samples > 8_000);
        let total: u64 = cells.iter().map(|c| c.summary.samples).sum();
        assert_eq!(total, 50_000);
    }

    #[test]
    fn breakdown_is_thread_count_independent() {
        let realm = Realm::new(RealmConfig::n16(4, 1)).expect("paper design point");
        let one = characterize_by_interval_threaded(&realm, 200_000, 9, Threads::Fixed(1));
        let many = characterize_by_interval_threaded(&realm, 200_000, 9, Threads::Fixed(8));
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!((a.ka, a.kb), (b.ka, b.kb));
            assert_eq!(a.summary, b.summary);
        }
    }

    #[test]
    fn spread_returns_none_when_filters_exclude_all() {
        let realm = Realm::new(RealmConfig::n16(4, 0)).expect("paper design point");
        let cells = characterize_by_interval(&realm, 1_000, 3);
        assert!(interval_mean_spread(&cells, 15, u64::MAX).is_none());
    }
}
