//! # realm-metrics
//!
//! The error-characterization harness behind the paper's evaluation
//! (§IV-B): Monte-Carlo campaigns over the full operand space, exhaustive
//! sweeps for the error-profile figures, the paper's five error metrics,
//! relative-error histograms (Fig. 5) and Pareto-front extraction
//! (Fig. 4).
//!
//! ```
//! use realm_core::Accurate;
//! use realm_metrics::MonteCarlo;
//!
//! let campaign = MonteCarlo::new(10_000, 42);
//! let summary = campaign.characterize(&Accurate::new(16));
//! assert_eq!(summary.mean_error, 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Campaign code must be total outside tests: partial results degrade to
// `Option`/reports, never to a lazy panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breakdown;
pub mod dnn;
pub mod engine;
pub mod exhaustive;
pub mod faults;
pub mod heatmap;
pub mod histogram;
pub mod montecarlo;
pub mod nmed;
pub mod pareto;
pub mod spec;
pub mod summary;
pub mod sweep;

pub use breakdown::{
    characterize_by_interval, characterize_by_interval_supervised,
    characterize_by_interval_threaded, BreakdownWorkload, IntervalCell,
};
pub use dnn::{parse_layer_bindings, DnnConfig, DnnPoint, DnnSweep, LayerBinding};
pub use engine::{Engine, Workload};
pub use exhaustive::{
    characterize_range, characterize_range_supervised, characterize_range_threaded, error_profile,
    error_profile_supervised, error_profile_threaded, ProfileWorkload, RangeWorkload,
};
pub use faults::{
    summarize_by_class, ClassSummary, FaultCampaign, FaultWorkload, SiteReport, TransientPoint,
};
pub use histogram::Histogram;
pub use montecarlo::{MonteCarlo, MonteCarloWorkload};
pub use nmed::{
    distance_metrics, distance_metrics_supervised, distance_metrics_threaded, DistanceSummary,
    DistanceWorkload,
};
pub use pareto::{pareto_front, ParetoPoint};
pub use realm_harness::{Supervised, Supervisor};
/// The observability layer (`realm-obs`): install a collector on a
/// [`Supervisor`] via `Supervisor::with_collector` to stream spans,
/// metrics and JSONL events from every `*_supervised` campaign family.
pub use realm_obs as obs;
pub use realm_par::Threads;
pub use spec::{parse_design, CampaignSpec, ErrorSla, FamilySpec, Scoped, SpecError, SpecWorkload};
pub use summary::{ErrorAccumulator, ErrorSummary};
