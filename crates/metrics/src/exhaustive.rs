//! Exhaustive sweeps over operand ranges — the methodology behind the
//! paper's error-profile figures (Fig. 1 uses `A, B ∈ {32, …, 255}`,
//! Fig. 2 uses `{64, …, 255}`).
//!
//! Sweeps are row-decomposed: the `b` axis is materialized once, each `a`
//! row is multiplied through the design's batch kernel, and rows are
//! distributed over the worker pool in fixed chunks merged in chunk order
//! — so results do not depend on the thread count.

use std::ops::RangeInclusive;

use realm_core::multiplier::MultiplierExt;
use realm_core::Multiplier;
use realm_harness::{CampaignId, HarnessError, Supervised, Supervisor};
use realm_par::{map_chunks, ChunkPlan, Threads};

use crate::summary::{ErrorAccumulator, ErrorSummary};

/// Rows per chunk for the parallel sweeps. Fixed (never derived from the
/// worker count) so the merge order, and with it every floating-point sum,
/// is identical on any machine.
const ROWS_PER_CHUNK: u64 = 8;

/// Runs one sweep row through the design's batch kernel: multiplies
/// `(a, b)` for every `b` in `bs` and reports each pair's signed relative
/// error (zero products skipped) in `b` order. The scratch buffers are
/// caller-owned so a chunk of rows reuses one allocation.
fn for_each_row_error(
    design: &dyn Multiplier,
    a: u64,
    bs: &[u64],
    pairs: &mut Vec<(u64, u64)>,
    products: &mut Vec<u64>,
    mut on_error: impl FnMut(u64, u64, f64),
) {
    pairs.clear();
    pairs.extend(bs.iter().map(|&b| (a, b)));
    products.clear();
    products.resize(bs.len(), 0);
    design.multiply_batch(pairs, products);
    for (&(a, b), &p) in pairs.iter().zip(products.iter()) {
        let exact = a as u128 * b as u128;
        if exact == 0 {
            continue;
        }
        on_error(a, b, (p as f64 - exact as f64) / exact as f64);
    }
}

/// Exhaustively characterizes `design` over the cartesian product of two
/// operand ranges, with an explicit worker-thread policy. The summary is
/// bit-identical for every policy.
///
/// # Panics
///
/// Panics if the ranges produce no sample with a nonzero product.
pub fn characterize_range_threaded(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    threads: Threads,
) -> ErrorSummary {
    let a_vals: Vec<u64> = a_range.collect();
    let bs: Vec<u64> = b_range.collect();
    let plan = ChunkPlan::new(a_vals.len() as u64, ROWS_PER_CHUNK);
    let parts = map_chunks(plan, threads, |chunk| {
        let mut acc = ErrorAccumulator::new();
        let mut pairs = Vec::new();
        let mut products = Vec::new();
        for &a in &a_vals[chunk.start as usize..chunk.end() as usize] {
            for_each_row_error(design, a, &bs, &mut pairs, &mut products, |_, _, e| {
                acc.push(e)
            });
        }
        acc
    });
    let mut total = ErrorAccumulator::new();
    for part in &parts {
        total.merge(part);
    }
    total.finish()
}

/// Exhaustively characterizes `design` over the cartesian product of two
/// operand ranges on every available hardware thread.
///
/// ```
/// use realm_baselines::Calm;
/// use realm_metrics::characterize_range;
///
/// let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
/// assert!(s.max_error <= 0.0); // Mitchell never overestimates
/// assert_eq!(s.samples, 224 * 224);
/// ```
///
/// # Panics
///
/// Panics if the ranges produce no sample with a nonzero product.
pub fn characterize_range(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> ErrorSummary {
    characterize_range_threaded(design, a_range, b_range, Threads::Auto)
}

/// [`characterize_range`] under a [`Supervisor`]: the sweep's rows are
/// journaled chunk-by-chunk, so an interrupted exhaustive sweep resumes
/// bit-identically. The campaign identity binds the design label and
/// both operand ranges (the seed slot carries the range bounds — the
/// sweep itself draws no randomness).
pub fn characterize_range_supervised(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    supervisor: &Supervisor,
) -> Result<Supervised<ErrorSummary>, HarnessError> {
    let a_vals: Vec<u64> = a_range.clone().collect();
    let bs: Vec<u64> = b_range.clone().collect();
    let plan = ChunkPlan::new(a_vals.len() as u64, ROWS_PER_CHUNK);
    let subject = format!(
        "{} a={}..={} b={}..={}",
        design.label(),
        a_range.start(),
        a_range.end(),
        b_range.start(),
        b_range.end()
    );
    let id = CampaignId::new("exhaustive", &subject, plan, 0);
    let outcome = supervisor.run(&id, plan, |chunk| {
        let mut acc = ErrorAccumulator::new();
        let mut pairs = Vec::new();
        let mut products = Vec::new();
        for &a in &a_vals[chunk.start as usize..chunk.end() as usize] {
            for_each_row_error(design, a, &bs, &mut pairs, &mut products, |_, _, e| {
                acc.push(e)
            });
        }
        acc
    })?;
    Ok(outcome.fold(|parts| {
        let mut total = ErrorAccumulator::new();
        for (_, part) in &parts {
            total.merge(part);
        }
        (total.count() > 0).then(|| total.finish())
    }))
}

/// One sample of an error-profile surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Signed relative error of the design at `(a, b)`.
    pub error: f64,
}

/// [`error_profile`] with an explicit worker-thread policy. The point list
/// (content and order) is identical for every policy.
pub fn error_profile_threaded(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    threads: Threads,
) -> Vec<ProfilePoint> {
    let a_vals: Vec<u64> = a_range.collect();
    let bs: Vec<u64> = b_range.collect();
    let plan = ChunkPlan::new(a_vals.len() as u64, ROWS_PER_CHUNK);
    let parts = map_chunks(plan, threads, |chunk| {
        let mut points = Vec::new();
        let mut pairs = Vec::new();
        let mut products = Vec::new();
        for &a in &a_vals[chunk.start as usize..chunk.end() as usize] {
            for_each_row_error(design, a, &bs, &mut pairs, &mut products, |a, b, error| {
                points.push(ProfilePoint { a, b, error })
            });
        }
        points
    });
    // Chunks come back in order, so concatenation restores row-major order.
    parts.into_iter().flatten().collect()
}

/// The full relative-error surface over two operand ranges, row-major in
/// `a` — the data behind Fig. 1 and Fig. 2 (each returned point is one
/// pixel of those surface plots). Zero-product pairs are skipped.
pub fn error_profile(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> Vec<ProfilePoint> {
    error_profile_threaded(design, a_range, b_range, Threads::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::multiplier::MultiplierExt;
    use realm_core::{Accurate, Realm, RealmConfig};

    #[test]
    fn fig1_range_calm_statistics() {
        // Fig. 1(a, b): the classical multiplier over {32..255} shows the
        // repeating sawtooth with errors in (−11.1 %, 0].
        let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
        assert!(s.min_error >= -0.1112 && s.min_error < -0.10);
        assert!(s.max_error <= 0.0);
    }

    #[test]
    fn fig1_range_realm16_statistics() {
        // Fig. 1(f): REALM16 over the same range: ME 0.4 %, PE ~2 %.
        let realm = Realm::new(RealmConfig::n16(16, 0)).unwrap();
        let s = characterize_range(&realm, 32..=255, 32..=255);
        assert!(s.mean_error < 0.008, "mean {}", s.mean_error);
        assert!(s.peak_error() < 0.024, "peak {}", s.peak_error());
    }

    #[test]
    fn thread_count_does_not_change_range_summary() {
        let realm = Realm::new(RealmConfig::n16(8, 2)).unwrap();
        let serial = characterize_range_threaded(&realm, 1..=300, 1..=300, Threads::Fixed(1));
        for workers in [2usize, 8] {
            let parallel =
                characterize_range_threaded(&realm, 1..=300, 1..=300, Threads::Fixed(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn profile_covers_grid() {
        let pts = error_profile(&Accurate::new(16), 10..=12, 20..=21);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.error == 0.0));
        // Row-major in a.
        assert_eq!((pts[0].a, pts[0].b), (10, 20));
        assert_eq!((pts[1].a, pts[1].b), (10, 21));
        assert_eq!((pts[2].a, pts[2].b), (11, 20));
    }

    #[test]
    fn profile_matches_scalar_relative_error() {
        // The batched sweep must reproduce the unbatched per-pair errors.
        let realm = Realm::new(RealmConfig::n16(16, 0)).unwrap();
        let pts = error_profile(&realm, 32..=96, 32..=96);
        assert_eq!(pts.len(), 65 * 65);
        for p in pts.iter().step_by(37) {
            let expected = realm.relative_error(p.a, p.b).expect("nonzero product");
            assert_eq!(p.error, expected, "a={} b={}", p.a, p.b);
        }
    }

    #[test]
    fn profile_order_is_thread_count_independent() {
        let calm = Calm::new(16);
        let one = error_profile_threaded(&calm, 1..=64, 1..=16, Threads::Fixed(1));
        let many = error_profile_threaded(&calm, 1..=64, 1..=16, Threads::Fixed(8));
        assert_eq!(one, many);
    }

    #[test]
    fn zero_products_skipped() {
        let pts = error_profile(&Accurate::new(16), 0..=1, 0..=1);
        assert_eq!(pts.len(), 1); // only (1, 1) has a nonzero product
    }
}
