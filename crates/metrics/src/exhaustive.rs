//! Exhaustive sweeps over operand ranges — the methodology behind the
//! paper's error-profile figures (Fig. 1 uses `A, B ∈ {32, …, 255}`,
//! Fig. 2 uses `{64, …, 255}`).
//!
//! Sweeps are row-decomposed: the `b` axis is materialized once, each `a`
//! row is multiplied through the design's batch kernel, and rows are
//! distributed over the worker pool in fixed chunks merged in chunk order
//! — so results do not depend on the thread count.

use std::ops::RangeInclusive;

use realm_core::multiplier::MultiplierExt;
use realm_core::Multiplier;
use realm_harness::{ByteReader, Checkpoint, HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan, Threads};

use crate::engine::{Engine, Workload};
use crate::summary::{ErrorAccumulator, ErrorSummary};

/// Rows per chunk for the parallel sweeps. Fixed (never derived from the
/// worker count) so the merge order, and with it every floating-point sum,
/// is identical on any machine.
const ROWS_PER_CHUNK: u64 = 8;

/// Runs one sweep row through the design's batch kernel: multiplies
/// `(a, b)` for every `b` in `bs` and reports each pair's signed relative
/// error (zero products skipped) in `b` order. The scratch buffers are
/// caller-owned so a chunk of rows reuses one allocation.
fn for_each_row_error(
    design: &dyn Multiplier,
    a: u64,
    bs: &[u64],
    pairs: &mut Vec<(u64, u64)>,
    products: &mut Vec<u64>,
    mut on_error: impl FnMut(u64, u64, f64),
) {
    pairs.clear();
    pairs.extend(bs.iter().map(|&b| (a, b)));
    products.clear();
    products.resize(bs.len(), 0);
    design.multiply_batch(pairs, products);
    for (&(a, b), &p) in pairs.iter().zip(products.iter()) {
        let exact = a as u128 * b as u128;
        if exact == 0 {
            continue;
        }
        on_error(a, b, (p as f64 - exact as f64) / exact as f64);
    }
}

/// The row axes of an exhaustive sweep workload, shared by the
/// summary-folding [`RangeWorkload`] and the surface-collecting
/// [`ProfileWorkload`]: the materialized `a` values (one sweep row per
/// value, [`ROWS_PER_CHUNK`] rows per chunk) and the `b` axis every row
/// multiplies against.
#[derive(Debug, Clone)]
struct SweepAxes<'a> {
    design: &'a dyn Multiplier,
    a_vals: Vec<u64>,
    bs: Vec<u64>,
    a_bounds: (u64, u64),
    b_bounds: (u64, u64),
}

impl<'a> SweepAxes<'a> {
    fn new(
        design: &'a dyn Multiplier,
        a_range: RangeInclusive<u64>,
        b_range: RangeInclusive<u64>,
    ) -> Self {
        SweepAxes {
            design,
            a_bounds: (*a_range.start(), *a_range.end()),
            b_bounds: (*b_range.start(), *b_range.end()),
            a_vals: a_range.collect(),
            bs: b_range.collect(),
        }
    }

    fn plan(&self) -> ChunkPlan {
        ChunkPlan::new(self.a_vals.len() as u64, ROWS_PER_CHUNK)
    }

    /// The campaign subject: design label plus both range bounds (the
    /// sweep draws no randomness, so the bounds are the whole identity).
    fn subject(&self) -> String {
        format!(
            "{} a={}..={} b={}..={}",
            self.design.label(),
            self.a_bounds.0,
            self.a_bounds.1,
            self.b_bounds.0,
            self.b_bounds.1
        )
    }

    /// Runs the chunk's rows through the design's batch kernel, feeding
    /// every (a, b, error) sample — zero products skipped — to `on_error`
    /// in row-major order.
    fn for_each_chunk_error(&self, chunk: Chunk, mut on_error: impl FnMut(u64, u64, f64)) {
        let mut pairs = Vec::new();
        let mut products = Vec::new();
        for &a in &self.a_vals[chunk.start as usize..chunk.end() as usize] {
            for_each_row_error(
                self.design,
                a,
                &self.bs,
                &mut pairs,
                &mut products,
                &mut on_error,
            );
        }
    }
}

/// The [`Workload`] of an exhaustive error-summary sweep: each chunk of
/// rows folds into an [`ErrorAccumulator`]; the finalized output is the
/// sweep's [`ErrorSummary`].
#[derive(Debug, Clone)]
pub struct RangeWorkload<'a> {
    axes: SweepAxes<'a>,
}

impl<'a> RangeWorkload<'a> {
    /// The sweep of `design` over the cartesian product of two operand
    /// ranges.
    pub fn new(
        design: &'a dyn Multiplier,
        a_range: RangeInclusive<u64>,
        b_range: RangeInclusive<u64>,
    ) -> Self {
        RangeWorkload {
            axes: SweepAxes::new(design, a_range, b_range),
        }
    }
}

impl Workload for RangeWorkload<'_> {
    type Part = ErrorAccumulator;
    type Output = ErrorSummary;

    fn family(&self) -> &'static str {
        "exhaustive"
    }

    fn subject(&self) -> String {
        self.axes.subject()
    }

    fn plan(&self) -> ChunkPlan {
        self.axes.plan()
    }

    fn seed(&self) -> u64 {
        0
    }

    fn run_chunk(&self, chunk: Chunk) -> ErrorAccumulator {
        let mut acc = ErrorAccumulator::new();
        self.axes.for_each_chunk_error(chunk, |_, _, e| acc.push(e));
        acc
    }

    fn finalize(&self, parts: Vec<(u64, ErrorAccumulator)>) -> Option<ErrorSummary> {
        let mut total = ErrorAccumulator::new();
        for (_, part) in &parts {
            total.merge(part);
        }
        (total.count() > 0).then(|| total.finish())
    }
}

/// Exhaustively characterizes `design` over the cartesian product of two
/// operand ranges, with an explicit worker-thread policy. The summary is
/// bit-identical for every policy.
///
/// # Panics
///
/// Panics if the ranges produce no sample with a nonzero product.
pub fn characterize_range_threaded(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    threads: Threads,
) -> ErrorSummary {
    Engine::new(threads)
        .run(&RangeWorkload::new(design, a_range, b_range))
        .unwrap_or_else(|| panic!("cannot summarize an empty accumulator"))
}

/// Exhaustively characterizes `design` over the cartesian product of two
/// operand ranges on every available hardware thread.
///
/// ```
/// use realm_baselines::Calm;
/// use realm_metrics::characterize_range;
///
/// let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
/// assert!(s.max_error <= 0.0); // Mitchell never overestimates
/// assert_eq!(s.samples, 224 * 224);
/// ```
///
/// # Panics
///
/// Panics if the ranges produce no sample with a nonzero product.
pub fn characterize_range(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> ErrorSummary {
    characterize_range_threaded(design, a_range, b_range, Threads::Auto)
}

/// [`characterize_range`] under a [`Supervisor`]: the sweep's rows are
/// journaled chunk-by-chunk, so an interrupted exhaustive sweep resumes
/// bit-identically. The campaign identity binds the design label and
/// both operand ranges (the seed slot carries the range bounds — the
/// sweep itself draws no randomness).
pub fn characterize_range_supervised(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    supervisor: &Supervisor,
) -> Result<Supervised<ErrorSummary>, HarnessError> {
    Engine::supervised(&RangeWorkload::new(design, a_range, b_range), supervisor)
}

/// One sample of an error-profile surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Signed relative error of the design at `(a, b)`.
    pub error: f64,
}

impl Checkpoint for ProfilePoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.a.encode(out);
        self.b.encode(out);
        self.error.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(ProfilePoint {
            a: u64::decode(r)?,
            b: u64::decode(r)?,
            error: f64::decode(r)?,
        })
    }
}

/// The [`Workload`] of an exhaustive error-profile sweep: each chunk of
/// rows collects its [`ProfilePoint`]s; concatenating the per-chunk
/// vectors in chunk order restores row-major order.
#[derive(Debug, Clone)]
pub struct ProfileWorkload<'a> {
    axes: SweepAxes<'a>,
}

impl<'a> ProfileWorkload<'a> {
    /// The profile of `design` over the cartesian product of two operand
    /// ranges.
    pub fn new(
        design: &'a dyn Multiplier,
        a_range: RangeInclusive<u64>,
        b_range: RangeInclusive<u64>,
    ) -> Self {
        ProfileWorkload {
            axes: SweepAxes::new(design, a_range, b_range),
        }
    }
}

impl Workload for ProfileWorkload<'_> {
    type Part = Vec<ProfilePoint>;
    type Output = Vec<ProfilePoint>;

    fn family(&self) -> &'static str {
        "profile"
    }

    fn subject(&self) -> String {
        self.axes.subject()
    }

    fn plan(&self) -> ChunkPlan {
        self.axes.plan()
    }

    fn seed(&self) -> u64 {
        0
    }

    fn run_chunk(&self, chunk: Chunk) -> Vec<ProfilePoint> {
        let mut points = Vec::new();
        self.axes.for_each_chunk_error(chunk, |a, b, error| {
            points.push(ProfilePoint { a, b, error })
        });
        points
    }

    fn finalize(&self, parts: Vec<(u64, Vec<ProfilePoint>)>) -> Option<Vec<ProfilePoint>> {
        // Parts arrive in chunk order, so concatenation restores
        // row-major order (a partial run yields the covered rows only).
        (!parts.is_empty()).then(|| parts.into_iter().flat_map(|(_, points)| points).collect())
    }
}

/// [`error_profile`] with an explicit worker-thread policy. The point list
/// (content and order) is identical for every policy.
pub fn error_profile_threaded(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    threads: Threads,
) -> Vec<ProfilePoint> {
    Engine::new(threads)
        .run(&ProfileWorkload::new(design, a_range, b_range))
        .unwrap_or_default()
}

/// [`error_profile`] under a [`Supervisor`]: the surface's rows are
/// journaled chunk-by-chunk like every other workload, so a Fig. 1-scale
/// profile interrupted mid-sweep resumes bit-identically. On a partial
/// run the returned points cover the completed chunks only (`None` when
/// no chunk completed).
pub fn error_profile_supervised(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
    supervisor: &Supervisor,
) -> Result<Supervised<Vec<ProfilePoint>>, HarnessError> {
    Engine::supervised(&ProfileWorkload::new(design, a_range, b_range), supervisor)
}

/// The full relative-error surface over two operand ranges, row-major in
/// `a` — the data behind Fig. 1 and Fig. 2 (each returned point is one
/// pixel of those surface plots). Zero-product pairs are skipped.
pub fn error_profile(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> Vec<ProfilePoint> {
    error_profile_threaded(design, a_range, b_range, Threads::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::multiplier::MultiplierExt;
    use realm_core::{Accurate, Realm, RealmConfig};

    #[test]
    fn fig1_range_calm_statistics() {
        // Fig. 1(a, b): the classical multiplier over {32..255} shows the
        // repeating sawtooth with errors in (−11.1 %, 0].
        let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
        assert!(s.min_error >= -0.1112 && s.min_error < -0.10);
        assert!(s.max_error <= 0.0);
    }

    #[test]
    fn fig1_range_realm16_statistics() {
        // Fig. 1(f): REALM16 over the same range: ME 0.4 %, PE ~2 %.
        let realm = Realm::new(RealmConfig::n16(16, 0)).unwrap();
        let s = characterize_range(&realm, 32..=255, 32..=255);
        assert!(s.mean_error < 0.008, "mean {}", s.mean_error);
        assert!(s.peak_error() < 0.024, "peak {}", s.peak_error());
    }

    #[test]
    fn thread_count_does_not_change_range_summary() {
        let realm = Realm::new(RealmConfig::n16(8, 2)).unwrap();
        let serial = characterize_range_threaded(&realm, 1..=300, 1..=300, Threads::Fixed(1));
        for workers in [2usize, 8] {
            let parallel =
                characterize_range_threaded(&realm, 1..=300, 1..=300, Threads::Fixed(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn profile_covers_grid() {
        let pts = error_profile(&Accurate::new(16), 10..=12, 20..=21);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.error == 0.0));
        // Row-major in a.
        assert_eq!((pts[0].a, pts[0].b), (10, 20));
        assert_eq!((pts[1].a, pts[1].b), (10, 21));
        assert_eq!((pts[2].a, pts[2].b), (11, 20));
    }

    #[test]
    fn profile_matches_scalar_relative_error() {
        // The batched sweep must reproduce the unbatched per-pair errors.
        let realm = Realm::new(RealmConfig::n16(16, 0)).unwrap();
        let pts = error_profile(&realm, 32..=96, 32..=96);
        assert_eq!(pts.len(), 65 * 65);
        for p in pts.iter().step_by(37) {
            let expected = realm.relative_error(p.a, p.b).expect("nonzero product");
            assert_eq!(p.error, expected, "a={} b={}", p.a, p.b);
        }
    }

    #[test]
    fn profile_order_is_thread_count_independent() {
        let calm = Calm::new(16);
        let one = error_profile_threaded(&calm, 1..=64, 1..=16, Threads::Fixed(1));
        let many = error_profile_threaded(&calm, 1..=64, 1..=16, Threads::Fixed(8));
        assert_eq!(one, many);
    }

    #[test]
    fn zero_products_skipped() {
        let pts = error_profile(&Accurate::new(16), 0..=1, 0..=1);
        assert_eq!(pts.len(), 1); // only (1, 1) has a nonzero product
    }
}
