//! Exhaustive sweeps over operand ranges — the methodology behind the
//! paper's error-profile figures (Fig. 1 uses `A, B ∈ {32, …, 255}`,
//! Fig. 2 uses `{64, …, 255}`).

use std::ops::RangeInclusive;

use realm_core::multiplier::MultiplierExt;
use realm_core::Multiplier;

use crate::summary::{ErrorAccumulator, ErrorSummary};

/// Exhaustively characterizes `design` over the cartesian product of two
/// operand ranges.
///
/// ```
/// use realm_baselines::Calm;
/// use realm_metrics::characterize_range;
///
/// let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
/// assert!(s.max_error <= 0.0); // Mitchell never overestimates
/// assert_eq!(s.samples, 224 * 224);
/// ```
///
/// # Panics
///
/// Panics if the ranges produce no sample with a nonzero product.
pub fn characterize_range(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> ErrorSummary {
    let mut acc = ErrorAccumulator::new();
    for a in a_range {
        for b in b_range.clone() {
            if let Some(e) = design.relative_error(a, b) {
                acc.push(e);
            }
        }
    }
    acc.finish()
}

/// One sample of an error-profile surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Signed relative error of the design at `(a, b)`.
    pub error: f64,
}

/// The full relative-error surface over two operand ranges, row-major in
/// `a` — the data behind Fig. 1 and Fig. 2 (each returned point is one
/// pixel of those surface plots). Zero-product pairs are skipped.
pub fn error_profile(
    design: &dyn Multiplier,
    a_range: RangeInclusive<u64>,
    b_range: RangeInclusive<u64>,
) -> Vec<ProfilePoint> {
    let mut points = Vec::new();
    for a in a_range {
        for b in b_range.clone() {
            if let Some(error) = design.relative_error(a, b) {
                points.push(ProfilePoint { a, b, error });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::{Accurate, Realm, RealmConfig};

    #[test]
    fn fig1_range_calm_statistics() {
        // Fig. 1(a, b): the classical multiplier over {32..255} shows the
        // repeating sawtooth with errors in (−11.1 %, 0].
        let s = characterize_range(&Calm::new(16), 32..=255, 32..=255);
        assert!(s.min_error >= -0.1112 && s.min_error < -0.10);
        assert!(s.max_error <= 0.0);
    }

    #[test]
    fn fig1_range_realm16_statistics() {
        // Fig. 1(f): REALM16 over the same range: ME 0.4 %, PE ~2 %.
        let realm = Realm::new(RealmConfig::n16(16, 0)).unwrap();
        let s = characterize_range(&realm, 32..=255, 32..=255);
        assert!(s.mean_error < 0.008, "mean {}", s.mean_error);
        assert!(s.peak_error() < 0.024, "peak {}", s.peak_error());
    }

    #[test]
    fn profile_covers_grid() {
        let pts = error_profile(&Accurate::new(16), 10..=12, 20..=21);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.error == 0.0));
        // Row-major in a.
        assert_eq!((pts[0].a, pts[0].b), (10, 20));
        assert_eq!((pts[1].a, pts[1].b), (10, 21));
        assert_eq!((pts[2].a, pts[2].b), (11, 20));
    }

    #[test]
    fn zero_products_skipped() {
        let pts = error_profile(&Accurate::new(16), 0..=1, 0..=1);
        assert_eq!(pts.len(), 1); // only (1, 1) has a nonzero product
    }
}
