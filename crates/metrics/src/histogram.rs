//! Relative-error histograms — the distributions of the paper's Fig. 5.

/// A fixed-range, uniform-bin histogram of relative errors.
///
/// Samples outside the range are clamped into the first/last bin so the
/// mass always sums to the sample count (the paper's distributions are
/// plotted on a fixed ±8 % axis).
///
/// ```
/// use realm_metrics::Histogram;
///
/// let mut h = Histogram::new(-0.08, 0.08, 16);
/// for e in [-0.01, 0.0, 0.01, 0.011] {
///     h.add(e);
/// }
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi]` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range is empty: [{lo}, {hi}]");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Reconstructs a histogram from previously captured
    /// [`counts`](Self::counts) — the journaling path of chunked
    /// campaigns, whose per-chunk partials store raw bin counts.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `counts` is empty.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(lo < hi, "histogram range is empty: [{lo}, {hi}]");
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        Histogram { lo, hi, counts }
    }

    /// Merges another histogram's mass into this one (bin-wise sum).
    /// Merging is associative and commutative, so chunked campaigns can
    /// fold per-chunk histograms in any grouping.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different geometry"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Records one sample (clamped into range).
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let pos = (value - self.lo) / (self.hi - self.lo) * bins as f64;
        let idx = (pos.floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin sample counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Per-bin fraction of total mass (empty histogram yields zeros).
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Mass-weighted mean of bin centers — a quick view of distribution
    /// bias for tests and reports.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| self.bin_center(i) * c as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Fraction of mass within `±width` of zero — how concentrated the
    /// distribution is (the paper's "narrower with larger M" observation).
    pub fn mass_within(&self, width: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let inside: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.bin_center(i).abs() <= width)
            .map(|(_, &c)| c)
            .sum();
        inside as f64 / total as f64
    }

    /// Renders the histogram as ASCII-art rows (`center  count  bar`) for
    /// the experiment drivers.
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * bar_width).div_ceil(max as usize));
            out.push_str(&format!(
                "{:+7.3}% {:>9} {}\n",
                self.bin_center(i) * 100.0,
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.1, 0.3, 0.6, 0.9, 0.95] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(-1.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-15);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-15);
    }

    #[test]
    fn densities_sum_to_one() {
        let mut h = Histogram::new(-0.1, 0.1, 7);
        for i in 0..100 {
            h.add((i as f64 - 50.0) / 600.0);
        }
        let sum: f64 = h.densities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_within_detects_concentration() {
        let mut narrow = Histogram::new(-0.1, 0.1, 100);
        let mut wide = Histogram::new(-0.1, 0.1, 100);
        for i in 0..1000 {
            let t = (i as f64 / 1000.0 - 0.5) * 2.0; // −1..1
            narrow.add(0.005 * t);
            wide.add(0.08 * t);
        }
        assert!(narrow.mass_within(0.01) > 0.95);
        assert!(wide.mass_within(0.01) < 0.30);
    }

    #[test]
    fn render_is_nonempty_and_line_per_bin() {
        let mut h = Histogram::new(-0.1, 0.1, 5);
        h.add(0.0);
        let text = h.render(20);
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(0.5, -0.5, 4);
    }

    #[test]
    fn merge_equals_adding_everything_to_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 900.0).collect();
        let mut whole = Histogram::new(-0.1, 0.1, 16);
        let mut left = Histogram::new(-0.1, 0.1, 16);
        let mut right = Histogram::new(-0.1, 0.1, 16);
        for (i, &s) in samples.iter().enumerate() {
            whole.add(s);
            if i < 70 {
                left.add(s)
            } else {
                right.add(s)
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn from_counts_round_trips() {
        let mut h = Histogram::new(-0.08, 0.08, 8);
        h.add(0.01);
        h.add(-0.03);
        let rebuilt = Histogram::from_counts(-0.08, 0.08, h.counts().to_vec());
        assert_eq!(rebuilt, h);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(-0.1, 0.1, 8);
        let b = Histogram::new(-0.1, 0.1, 16);
        a.merge(&b);
    }
}
