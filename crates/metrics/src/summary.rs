//! The paper's error metrics (§IV-B): error bias, mean error (MRED),
//! variance and the two-sided peak errors — all over *relative* error,
//! all reported in percent.

use std::fmt;

use realm_harness::{ByteReader, Checkpoint};

/// Streaming accumulator for relative-error statistics.
///
/// Pairs whose exact product is zero are skipped (relative error is
/// undefined there), matching the paper's methodology.
///
/// ```
/// use realm_metrics::ErrorAccumulator;
///
/// let mut acc = ErrorAccumulator::new();
/// acc.push(-0.02);
/// acc.push(0.02);
/// let s = acc.finish();
/// assert_eq!(s.bias, 0.0);
/// assert_eq!(s.mean_error, 0.02);
/// assert_eq!(s.min_error, -0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorAccumulator {
    count: u64,
    sum: f64,
    sum_abs: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Checkpoint for ErrorAccumulator {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.sum.encode(out);
        self.sum_abs.encode(out);
        self.sum_sq.encode(out);
        // min/max are ±∞ sentinels on an empty accumulator; the bit-level
        // f64 codec round-trips them exactly.
        self.min.encode(out);
        self.max.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(ErrorAccumulator {
            count: u64::decode(r)?,
            sum: f64::decode(r)?,
            sum_abs: f64::decode(r)?,
            sum_sq: f64::decode(r)?,
            min: f64::decode(r)?,
            max: f64::decode(r)?,
        })
    }
}

/// Standard errors of the sampled means, for stating Monte-Carlo
/// tolerances honestly (e.g. "bias = −3.85 % ± 0.01 %").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandardErrors {
    /// Standard error of the bias estimate.
    pub bias: f64,
    /// Standard error of the mean-|error| estimate.
    pub mean_error: f64,
}

impl ErrorAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ErrorAccumulator {
            count: 0,
            sum: 0.0,
            sum_abs: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one signed relative error.
    pub fn push(&mut self, e: f64) {
        self.count += 1;
        self.sum += e;
        self.sum_abs += e.abs();
        self.sum_sq += e * e;
        self.min = self.min.min(e);
        self.max = self.max.max(e);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another accumulator into this one (for sharded campaigns).
    pub fn merge(&mut self, other: &ErrorAccumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_abs += other.sum_abs;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Standard errors of the running mean estimates (√(var/n)); `None`
    /// with fewer than two samples.
    pub fn standard_errors(&self) -> Option<StandardErrors> {
        if self.count < 2 {
            return None;
        }
        let n = self.count as f64;
        let bias_var = (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0);
        // var(|e|) = E[e²] − E[|e|]² (|e|² = e²).
        let abs_var = (self.sum_sq / n - (self.sum_abs / n).powi(2)).max(0.0);
        Some(StandardErrors {
            bias: (bias_var / n).sqrt(),
            mean_error: (abs_var / n).sqrt(),
        })
    }

    /// Finalizes into an [`ErrorSummary`].
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn finish(&self) -> ErrorSummary {
        assert!(self.count > 0, "cannot summarize an empty accumulator");
        let n = self.count as f64;
        let bias = self.sum / n;
        ErrorSummary {
            samples: self.count,
            bias,
            mean_error: self.sum_abs / n,
            variance: (self.sum_sq / n - bias * bias).max(0.0),
            min_error: self.min,
            max_error: self.max,
        }
    }
}

/// The paper's five error metrics for one design, as fractions (multiply
/// by 100 for the paper's percentage convention, or use the `Display`
/// impl which prints Table I-style columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Number of (nonzero-product) samples characterized.
    pub samples: u64,
    /// Error bias: mean of signed relative error.
    pub bias: f64,
    /// Mean error (MRED): mean of |relative error|.
    pub mean_error: f64,
    /// Variance of the signed relative error.
    pub variance: f64,
    /// Most negative relative error ("Peak Errors / Min").
    pub min_error: f64,
    /// Most positive relative error ("Peak Errors / Max").
    pub max_error: f64,
}

impl ErrorSummary {
    /// Peak error as the paper's Fig. 4 uses it: the larger magnitude of
    /// the two peaks.
    pub fn peak_error(&self) -> f64 {
        self.min_error.abs().max(self.max_error.abs())
    }

    /// Variance expressed in the paper's unit (percent², since Table I
    /// lists variance of errors-in-percent).
    pub fn variance_percent(&self) -> f64 {
        self.variance * 1e4
    }
}

impl fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bias={:+.2}% mean={:.2}% min={:+.2}% max={:+.2}% var={:.2}",
            self.bias * 100.0,
            self.mean_error * 100.0,
            self.min_error * 100.0,
            self.max_error * 100.0,
            self.variance_percent(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_of_known_sequence() {
        let mut acc = ErrorAccumulator::new();
        for e in [-0.04, -0.02, 0.0, 0.02, 0.04] {
            acc.push(e);
        }
        let s = acc.finish();
        assert_eq!(s.samples, 5);
        assert!(s.bias.abs() < 1e-15);
        assert!((s.mean_error - 0.024).abs() < 1e-15);
        assert_eq!(s.min_error, -0.04);
        assert_eq!(s.max_error, 0.04);
        // variance = mean of squares = (16+4+0+4+16)e-4/5 = 8e-4
        assert!((s.variance - 8e-4).abs() < 1e-15);
    }

    #[test]
    fn variance_is_centered() {
        let mut acc = ErrorAccumulator::new();
        for _ in 0..100 {
            acc.push(0.05); // constant error: variance 0, bias 0.05
        }
        let s = acc.finish();
        assert!((s.bias - 0.05).abs() < 1e-15);
        assert!(s.variance < 1e-15);
    }

    #[test]
    fn merge_equals_sequential() {
        let es = [-0.1, 0.2, -0.3, 0.05, 0.0, 0.17];
        let mut whole = ErrorAccumulator::new();
        for &e in &es {
            whole.push(e);
        }
        let mut a = ErrorAccumulator::new();
        let mut b = ErrorAccumulator::new();
        for &e in &es[..3] {
            a.push(e);
        }
        for &e in &es[3..] {
            b.push(e);
        }
        a.merge(&b);
        assert_eq!(a.finish(), whole.finish());
    }

    /// A pseudo-random stream of dyadic rationals `k · 2^-22` with
    /// `|k| < 2^20`. Sums of a few thousand such values (and of their
    /// absolute values and squares) are exactly representable in f64, so
    /// partition-vs-sequential equality can be asserted **exactly** rather
    /// than within a tolerance — the property the chunked parallel reduce
    /// rests on.
    fn dyadic_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = realm_core::rng::SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let k = rng.range_inclusive(0, 1 << 21) as i64 - (1 << 20);
                k as f64 / (1u64 << 22) as f64
            })
            .collect()
    }

    fn accumulate(values: &[f64]) -> ErrorAccumulator {
        let mut acc = ErrorAccumulator::new();
        for &e in values {
            acc.push(e);
        }
        acc
    }

    #[test]
    fn merge_any_partition_equals_sequential_exactly() {
        let es = dyadic_stream(0xA11CE, 4_000);
        let whole = accumulate(&es);
        // Partitions of varying granularity, including chunk sizes that do
        // not divide the stream length (ragged final chunk).
        for chunk in [1usize, 7, 64, 1_000, 4_000, 9_999] {
            let mut merged = ErrorAccumulator::new();
            for part in es.chunks(chunk) {
                merged.merge(&accumulate(part));
            }
            assert_eq!(merged, whole, "chunk={chunk}");
            assert_eq!(merged.finish(), whole.finish(), "chunk={chunk}");
        }
    }

    #[test]
    fn merge_tolerates_empty_chunks_exactly() {
        let es = dyadic_stream(0xBEEF, 512);
        let whole = accumulate(&es);
        // Interleave empty accumulators at the front, middle and back.
        let mut merged = ErrorAccumulator::new();
        merged.merge(&ErrorAccumulator::new());
        merged.merge(&accumulate(&es[..200]));
        merged.merge(&ErrorAccumulator::new());
        merged.merge(&accumulate(&es[200..]));
        merged.merge(&ErrorAccumulator::new());
        assert_eq!(merged, whole);
        assert_eq!(merged.finish(), whole.finish());
    }

    #[test]
    fn merge_is_associative_exactly() {
        let es = dyadic_stream(0xCAFE, 3_000);
        let (a, b, c) = (
            accumulate(&es[..777]),
            accumulate(&es[777..2_000]),
            accumulate(&es[2_000..]),
        );
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.finish(), right.finish());
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let acc = accumulate(&dyadic_stream(7, 100));
        let mut empty = ErrorAccumulator::new();
        empty.merge(&acc);
        assert_eq!(empty, acc);
    }

    #[test]
    fn peak_error_takes_larger_magnitude() {
        let mut acc = ErrorAccumulator::new();
        acc.push(-0.08);
        acc.push(0.02);
        assert_eq!(acc.finish().peak_error(), 0.08);
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn empty_finish_panics() {
        let _ = ErrorAccumulator::new().finish();
    }

    #[test]
    fn standard_errors_shrink_with_sample_count() {
        let mut small = ErrorAccumulator::new();
        let mut large = ErrorAccumulator::new();
        for i in 0..100 {
            let e = ((i % 7) as f64 - 3.0) / 100.0;
            small.push(e);
            for _ in 0..100 {
                large.push(e);
            }
        }
        let se_small = small.standard_errors().expect("enough samples");
        let se_large = large.standard_errors().expect("enough samples");
        assert!(se_large.bias < se_small.bias / 5.0);
        assert!(se_large.mean_error < se_small.mean_error / 5.0);
    }

    #[test]
    fn standard_errors_none_for_single_sample() {
        let mut acc = ErrorAccumulator::new();
        acc.push(0.01);
        assert!(acc.standard_errors().is_none());
    }

    #[test]
    fn display_formats_percentages() {
        let mut acc = ErrorAccumulator::new();
        acc.push(0.01);
        let text = acc.finish().to_string();
        assert!(text.contains("bias=+1.00%"), "{text}");
    }
}
