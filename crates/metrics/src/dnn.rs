//! Per-layer multiplier-binding sweeps over a quantized inference net —
//! the DNN design-space campaign, expressed as a [`Workload`] so it
//! inherits chunking, journaling/resume, quarantine and obs tracing from
//! the unified engine.
//!
//! # Per-layer binding grammar
//!
//! A *layer spec* names one design per MAC layer:
//!
//! ```text
//! layers  := binding { "," ( binding | param ) }
//! binding := layer "=" design
//! param   := key "=" int          (continues the previous design)
//! ```
//!
//! where `design` is the [`crate::spec::parse_design`] grammar with two
//! conveniences:
//!
//! * **compact REALM aliases** — `realm16t4` ≡ `realm:m=16,t=4`;
//! * **trailing width** — a `@W` suffix may follow the parameter list
//!   (`scaletrim:t=6@16` ≡ `scaletrim@16:t=6`), matching how the specs
//!   read aloud.
//!
//! Because design parameters are single-letter keys (`m`, `t`, `q`, `w`,
//! `k`, `s`, `c`, `i`) and layer names are longer identifiers, a
//! `key=value` segment after a binding unambiguously continues that
//! binding's parameter list:
//!
//! ```
//! use realm_metrics::dnn::parse_layer_bindings;
//!
//! let specs = parse_layer_bindings("conv1=realm:m=8,t=4,dense1=scaletrim:t=6@16").unwrap();
//! assert_eq!(specs[0].layer, "conv1");
//! assert_eq!(specs[0].design, "realm:m=8,t=4");
//! assert_eq!(specs[1].design, "scaletrim@16:t=6");
//! ```
//!
//! Layers not named by a spec keep the sweep's default design, so a spec
//! is a *patch* over a uniform baseline.

use realm_core::Multiplier;
use realm_dsp::QuantNet;
use realm_par::{Chunk, ChunkPlan};

use crate::engine::Workload;
use crate::spec::{parse_design, SpecError};

/// One `layer=design` binding from a layer spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerBinding {
    /// The MAC layer name (e.g. `conv1`).
    pub layer: String,
    /// The normalized design text (compact aliases expanded, trailing
    /// `@W` relocated), valid for [`parse_design`].
    pub design: String,
}

/// Design parameter keys — the single letters that disambiguate a
/// parameter continuation from a new `layer=design` binding.
const PARAM_KEYS: [&str; 8] = ["w", "m", "t", "q", "k", "s", "c", "i"];

fn is_param_key(text: &str) -> bool {
    PARAM_KEYS.contains(&text.trim().to_ascii_lowercase().as_str())
}

fn bad(design: &str, detail: String) -> SpecError {
    SpecError::BadParam {
        design: design.to_string(),
        detail,
    }
}

/// Expands the compact REALM alias `realm<M>t<T>` (e.g. `realm16t4`) in
/// the *name* portion of a design text; other names pass through.
fn expand_compact_alias(design: &str) -> String {
    let (head, tail) = match design.find([':', '@']) {
        Some(pos) => design.split_at(pos),
        None => (design, ""),
    };
    let name = head.trim().to_ascii_lowercase();
    if let Some(rest) = name.strip_prefix("realm") {
        if let Some((m, t)) = rest.split_once('t') {
            if !m.is_empty()
                && !t.is_empty()
                && m.chars().all(|c| c.is_ascii_digit())
                && t.chars().all(|c| c.is_ascii_digit())
            {
                let params = match tail.strip_prefix(':') {
                    Some(p) => format!(":m={m},t={t},{p}"),
                    None => format!("{tail}:m={m},t={t}"),
                };
                return format!("realm{params}");
            }
        }
    }
    design.to_string()
}

/// Relocates a trailing `@W` that follows the parameter list onto the
/// design name: `scaletrim:t=6@16` → `scaletrim@16:t=6`.
fn relocate_trailing_width(design: &str) -> Result<String, SpecError> {
    let Some(colon) = design.find(':') else {
        return Ok(design.to_string());
    };
    let Some(at) = design.rfind('@') else {
        return Ok(design.to_string());
    };
    if at < colon {
        return Ok(design.to_string());
    }
    let (head, width) = (&design[..at], &design[at + 1..]);
    if width.trim().is_empty() || !width.trim().chars().all(|c| c.is_ascii_digit()) {
        return Err(bad(
            design,
            format!("'@{}' is not an unsigned operand width", width.trim()),
        ));
    }
    if head[..colon].contains('@') {
        return Err(bad(design, "operand width given twice via '@W'".into()));
    }
    let (name, params) = head.split_at(colon);
    Ok(format!("{name}@{}{params}", width.trim()))
}

/// Normalizes one design text (alias expansion + width relocation) and
/// validates it against the design grammar.
fn normalize_design(design: &str) -> Result<String, SpecError> {
    let text = relocate_trailing_width(&expand_compact_alias(design.trim()))?;
    parse_design(&text)?;
    Ok(text)
}

/// Parses a per-layer design spec (see the [module grammar](self)).
///
/// # Errors
///
/// Rejects empty specs, malformed segments, layer names that collide
/// with parameter keys, duplicate layers, parameter continuations before
/// any binding, and any design the
/// [`parse_design`] grammar rejects.
pub fn parse_layer_bindings(text: &str) -> Result<Vec<LayerBinding>, SpecError> {
    let mut bindings: Vec<(String, String)> = Vec::new();
    for segment in text.split(',') {
        let segment = segment.trim();
        if segment.is_empty() {
            return Err(bad(text, "empty segment in layer spec".into()));
        }
        let Some((lhs, rhs)) = segment.split_once('=') else {
            return Err(bad(
                text,
                format!("expected 'layer=design' or 'key=value', got '{segment}'"),
            ));
        };
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        if rhs.is_empty() {
            return Err(bad(text, format!("'{lhs}=' is missing a value")));
        }
        if is_param_key(lhs) {
            // Parameter continuation of the previous binding.
            let Some((_, design)) = bindings.last_mut() else {
                return Err(bad(
                    text,
                    format!("parameter '{lhs}={rhs}' before any layer binding"),
                ));
            };
            if design.contains(':') {
                design.push(',');
            } else {
                design.push(':');
            }
            design.push_str(&format!("{lhs}={rhs}"));
        } else {
            if lhs.is_empty() || !lhs.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(bad(text, format!("'{lhs}' is not a valid layer name")));
            }
            if bindings.iter().any(|(l, _)| l == lhs) {
                return Err(bad(text, format!("layer '{lhs}' bound twice")));
            }
            bindings.push((lhs.to_string(), rhs.to_string()));
        }
    }
    if bindings.is_empty() {
        return Err(bad(text, "a layer spec needs at least one binding".into()));
    }
    bindings
        .into_iter()
        .map(|(layer, design)| {
            Ok(LayerBinding {
                layer,
                design: normalize_design(&design)?,
            })
        })
        .collect()
}

/// One candidate configuration of a sweep: a label plus one design text
/// per MAC layer, in [`QuantNet::mac_layers`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnnConfig {
    /// Display label (e.g. `uniform:realm:m=16,t=0` or `mixed:...`).
    pub label: String,
    /// One validated design text per MAC layer.
    pub designs: Vec<String>,
}

impl DnnConfig {
    /// A uniform configuration binding every MAC layer to `design`.
    ///
    /// # Errors
    ///
    /// Rejects design texts the grammar rejects.
    pub fn uniform(design: &str, mac_layers: usize) -> Result<Self, SpecError> {
        let text = normalize_design(design)?;
        Ok(DnnConfig {
            label: format!("uniform:{text}"),
            designs: vec![text; mac_layers],
        })
    }

    /// A configuration patching `default` with a parsed layer spec.
    ///
    /// # Errors
    ///
    /// Rejects specs naming a layer the net does not have, and design
    /// texts the grammar rejects.
    pub fn from_bindings(
        default: &str,
        bindings: &[LayerBinding],
        mac_layers: &[&str],
    ) -> Result<Self, SpecError> {
        let default = normalize_design(default)?;
        let mut designs = vec![default; mac_layers.len()];
        for binding in bindings {
            let Some(slot) = mac_layers.iter().position(|l| *l == binding.layer) else {
                return Err(SpecError::Invalid(format!(
                    "layer '{}' is not a MAC layer of this net (have: {})",
                    binding.layer,
                    mac_layers.join(", ")
                )));
            };
            designs[slot] = binding.design.clone();
        }
        let label = bindings
            .iter()
            .map(|b| format!("{}={}", b.layer, b.design))
            .collect::<Vec<_>>()
            .join(",");
        Ok(DnnConfig {
            label: format!("mixed:{label}"),
            designs,
        })
    }

    /// FNV-64 over the label and design texts (campaign identity input).
    fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self
            .label
            .bytes()
            .chain(std::iter::once(0))
            .chain(self.designs.iter().flat_map(|d| d.bytes().chain([0xFF])))
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Accuracy of one swept configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnPoint {
    /// Index into the sweep's configuration list.
    pub config_index: usize,
    /// Classification accuracy on the sweep's evaluation set.
    pub accuracy: f64,
}

/// The per-layer accuracy sweep as a [`Workload`]: one chunk per
/// candidate configuration, each evaluating the full (deterministic)
/// evaluation set. Pure by construction — the dataset and every binding
/// are derived from the workload configuration alone — so outputs are
/// bit-identical at any thread count and across interrupt/resume.
#[derive(Debug)]
pub struct DnnSweep {
    net: QuantNet,
    configs: Vec<DnnConfig>,
    eval_n: usize,
    eval_seed: u64,
}

impl DnnSweep {
    /// Builds the sweep, validating every configuration against the
    /// net's MAC layer count and the design grammar.
    ///
    /// # Errors
    ///
    /// Rejects empty sweeps, configuration/net shape mismatches and
    /// invalid design texts.
    pub fn new(
        net: QuantNet,
        configs: Vec<DnnConfig>,
        eval_n: usize,
        eval_seed: u64,
    ) -> Result<Self, SpecError> {
        if configs.is_empty() {
            return Err(SpecError::Invalid("sweep needs at least one config".into()));
        }
        if eval_n == 0 {
            return Err(SpecError::Invalid("sweep needs a nonempty eval set".into()));
        }
        let macs = net.mac_layers().len();
        for config in &configs {
            if config.designs.len() != macs {
                return Err(SpecError::Invalid(format!(
                    "config '{}' binds {} layers, net has {macs} MAC layers",
                    config.label,
                    config.designs.len()
                )));
            }
            for design in &config.designs {
                parse_design(design)?;
            }
        }
        Ok(DnnSweep {
            net,
            configs,
            eval_n,
            eval_seed,
        })
    }

    /// The swept configurations, in chunk order.
    pub fn configs(&self) -> &[DnnConfig] {
        &self.configs
    }

    /// The net under sweep.
    pub fn net(&self) -> &QuantNet {
        &self.net
    }
}

impl Workload for DnnSweep {
    type Part = Vec<(u64, f64)>;
    type Output = Vec<DnnPoint>;

    fn family(&self) -> &'static str {
        "dnn-sweep"
    }

    fn subject(&self) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for config in &self.configs {
            h ^= config.fingerprint();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!(
            "net{:016x}/configs{:016x}/eval{}",
            self.net.fingerprint(),
            h,
            self.eval_n
        )
    }

    fn plan(&self) -> ChunkPlan {
        // One config per chunk: resume granularity is one evaluated
        // configuration.
        ChunkPlan::new(self.configs.len() as u64, 1)
    }

    fn seed(&self) -> u64 {
        self.eval_seed
    }

    fn run_chunk(&self, chunk: Chunk) -> Self::Part {
        let data = realm_dsp::orientation_dataset(self.eval_n, self.eval_seed);
        (chunk.start..chunk.end())
            .map(|idx| {
                let config = &self.configs[idx as usize];
                let designs: Vec<Box<dyn Multiplier>> = config
                    .designs
                    .iter()
                    .map(|d| {
                        parse_design(d).unwrap_or_else(|e| {
                            // Validated at construction; a failure here is
                            // a workload-identity bug, not an input error.
                            panic!("validated design '{d}' failed to parse: {e}")
                        })
                    })
                    .collect();
                let refs: Vec<&dyn Multiplier> = designs.iter().map(|d| d.as_ref()).collect();
                (idx, self.net.accuracy(&refs, &data))
            })
            .collect()
    }

    fn finalize(&self, parts: Vec<(u64, Self::Part)>) -> Option<Self::Output> {
        let points: Vec<DnnPoint> = parts
            .into_iter()
            .flat_map(|(_, part)| part)
            .map(|(idx, accuracy)| DnnPoint {
                config_index: idx as usize,
                accuracy,
            })
            .collect();
        if points.is_empty() {
            None
        } else {
            Some(points)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use realm_par::Threads;

    #[test]
    fn grammar_parses_the_canonical_example() {
        let specs = parse_layer_bindings("conv1=realm16t4,dense1=scaletrim:t=6@16")
            .unwrap_or_else(|e| panic!("canonical spec must parse: {e}"));
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].layer, "conv1");
        assert_eq!(specs[0].design, "realm:m=16,t=4");
        assert_eq!(specs[1].layer, "dense1");
        assert_eq!(specs[1].design, "scaletrim@16:t=6");
    }

    #[test]
    fn param_continuation_extends_the_previous_binding() {
        let specs = parse_layer_bindings("conv1=realm:m=8,t=4,q=6,dense1=drum:k=5")
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(specs[0].design, "realm:m=8,t=4,q=6");
        assert_eq!(specs[1].design, "drum:k=5");
    }

    #[test]
    fn compact_alias_composes_with_width_suffix() {
        let specs = parse_layer_bindings("conv1=realm8t2@8").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(specs[0].design, "realm@8:m=8,t=2");
        parse_design(&specs[0].design).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "conv1",
            "conv1=",
            "t=4",                     // continuation before any binding
            "conv1=realm,conv1=calm",  // duplicate layer
            "conv1=banana",            // unknown design
            "conv1=realm:z=1",         // unknown key
            "conv1=scaletrim:t=6@x",   // bad trailing width
            "conv1=calm@8:w=8",        // width twice
            "con v1=calm",             // bad layer name
            "conv1=calm,,dense1=calm", // empty segment
        ] {
            assert!(
                parse_layer_bindings(bad).is_err(),
                "'{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn layer_names_shadowing_param_keys_are_continuations_not_layers() {
        // 't=6' after a binding is a parameter of that binding; a net
        // cannot have a MAC layer literally named 't'.
        let specs = parse_layer_bindings("conv1=mbm,t=6").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].design, "mbm:t=6");
    }

    #[test]
    fn config_patching_validates_layer_names() {
        let layers = ["conv1", "dense1"];
        let bindings = parse_layer_bindings("dense1=accurate").unwrap_or_else(|e| panic!("{e}"));
        let config =
            DnnConfig::from_bindings("calm", &bindings, &layers).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(config.designs, vec!["calm".to_string(), "accurate".into()]);

        let stray = parse_layer_bindings("pool1=accurate").unwrap_or_else(|e| panic!("{e}"));
        assert!(DnnConfig::from_bindings("calm", &stray, &layers).is_err());
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let net = realm_dsp::tiny_net();
        let macs = net.mac_layers().len();
        let configs = vec![
            DnnConfig::uniform("accurate", macs).unwrap_or_else(|e| panic!("{e}")),
            DnnConfig::uniform("realm:m=16,t=0", macs).unwrap_or_else(|e| panic!("{e}")),
            DnnConfig::uniform("drum:k=4", macs).unwrap_or_else(|e| panic!("{e}")),
        ];
        let sweep = DnnSweep::new(net, configs, 64, 11).unwrap_or_else(|e| panic!("{e}"));
        let one = Engine::new(Threads::Fixed(1)).run(&sweep);
        let two = Engine::new(Threads::Fixed(2)).run(&sweep);
        assert_eq!(one, two);
        let points = one.unwrap_or_else(|| panic!("sweep produced no points"));
        assert_eq!(points.len(), 3);
        assert!(points[0].accuracy > 0.8, "exact config should classify");
    }

    #[test]
    fn sweep_rejects_shape_mismatches() {
        let net = realm_dsp::tiny_net();
        let bad = DnnConfig {
            label: "short".into(),
            designs: vec!["accurate".into()],
        };
        assert!(DnnSweep::new(net, vec![bad], 16, 1).is_err());
    }
}
