//! Parameter-sweep series: the "wide and dense design space" view of the
//! paper's §IV — one metric traced against one knob, for each family
//! member, ready for plotting or CSV export.

use realm_core::Multiplier;

use crate::montecarlo::MonteCarlo;

/// One traced curve: a label plus `(knob value, metric value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"REALM16 mean error vs t"`).
    pub label: String,
    /// The `(x, y)` samples in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// True when `y` never decreases along the sweep (within `slack`).
    pub fn is_non_decreasing(&self, slack: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - slack)
    }

    /// Renders `x,y` CSV lines (no header).
    pub fn to_csv_rows(&self) -> String {
        self.points
            .iter()
            .map(|(x, y)| format!("{},{:.6}\n", x, y))
            .collect()
    }
}

/// Sweeps a knob: `build(knob)` constructs a design, the campaign
/// characterizes it, and `metric` projects the summary onto the y-axis.
pub fn sweep_knob<B, Mtr>(
    label: impl Into<String>,
    knobs: &[u32],
    campaign: &MonteCarlo,
    mut build: B,
    metric: Mtr,
) -> Series
where
    B: FnMut(u32) -> Box<dyn Multiplier>,
    Mtr: Fn(&crate::summary::ErrorSummary) -> f64,
{
    let mut series = Series::new(label);
    for &k in knobs {
        let design = build(k);
        let summary = campaign.characterize(design.as_ref());
        series.push(k as f64, metric(&summary));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::{Realm, RealmConfig};

    #[test]
    fn series_csv_and_monotonicity() {
        let mut s = Series::new("demo");
        s.push(0.0, 1.0);
        s.push(1.0, 1.5);
        s.push(2.0, 1.4);
        assert!(!s.is_non_decreasing(0.0));
        assert!(s.is_non_decreasing(0.2));
        assert_eq!(s.to_csv_rows().lines().count(), 3);
    }

    #[test]
    fn realm_mean_error_sweep_over_t_is_non_decreasing() {
        let campaign = MonteCarlo::new(60_000, 4);
        let series = sweep_knob(
            "REALM8 mean error vs t",
            &[0, 2, 4, 6, 8, 9],
            &campaign,
            |t| Box::new(Realm::new(RealmConfig::n16(8, t)).expect("paper design point")),
            |s| s.mean_error,
        );
        assert_eq!(series.points.len(), 6);
        // Monte-Carlo noise slack.
        assert!(series.is_non_decreasing(0.0005), "{:?}", series.points);
        // t = 9 must sit clearly above t = 0.
        assert!(series.points[5].1 > series.points[0].1 * 1.2);
    }
}
