//! Serialized campaign specifications: the textual grammar a job server
//! (or a CLI flag) uses to name a design and a campaign, and the bridge
//! from that description to a runnable [`Workload`].
//!
//! Everything the engine runs is configured by Rust values; everything a
//! *service* accepts arrives as text. This module is the one parser and
//! validator between the two, so `realm-serve`, the bench binaries and
//! the tests all agree on what `"realm:m=16,t=0"` means.
//!
//! # Design grammar
//!
//! ```text
//! design := name [ "@" width ] [ ":" key "=" int { "," key "=" int } ]
//! ```
//!
//! | name | keys (default) | constructor |
//! |---|---|---|
//! | `accurate` | `w` (16) | exact double-wide multiplier |
//! | `realm` | `w` (16), `m` (16), `t` (0), `q` (6) | the paper's REALM |
//! | `calm` | `w` (16) | Mitchell-based cALM baseline |
//! | `drum` | `w` (16), `k` (6) | DRUM with `k`-bit fragment |
//! | `kulkarni` | `w` (16) | 2×2-array underdesigned multiplier |
//! | `implm` | `w` (16) | ImpLM baseline |
//! | `mbm` | `w` (16), `t` (0) | Mitchell-based MBM, truncation `t` |
//! | `ssm` | `w` (16), `s` (8) | static segment multiplier |
//! | `scaletrim` | `w` (16), `t` (4), `c` (1) | scaleTRIM, `t` cross-term bits, compensation `c` ∈ {0,1} |
//! | `ilm` | `w` (16), `i` (2) | iterative log multiplier, `i` ∈ {1,2} iterations |
//!
//! The `@width` suffix is shorthand for the `w` key (`"calm@8"` ≡
//! `"calm:w=8"`); giving both is an error, not a tiebreak.
//!
//! Unknown names and unknown keys are errors (a job server must reject,
//! not guess); invalid parameter combinations surface the design's own
//! [`ConfigError`].
//!
//! # Scoping
//!
//! A multi-tenant server runs many jobs with *identical* specs, and each
//! needs its own journal: [`CampaignSpec::workload`] therefore accepts an
//! optional **scope** (e.g. a job id) appended to the campaign subject.
//! The scope changes the fingerprint — journals never collide — but not
//! the computation: outputs depend only on the spec, so two jobs with
//! equal specs still produce bit-identical summaries.

use std::fmt;

use realm_baselines::{Calm, Drum, Ilm, ImpLm, Kulkarni, Mbm, ScaleTrim, Ssm};
use realm_core::{Accurate, ConfigError, Multiplier, Realm, RealmConfig};
use realm_harness::{CampaignId, HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan};

use crate::engine::{campaign_id, Engine, Workload};
use crate::exhaustive::RangeWorkload;
use crate::montecarlo::MonteCarlo;
use crate::summary::ErrorSummary;

/// Errors from parsing or running a campaign specification.
#[derive(Debug)]
pub enum SpecError {
    /// The design name is not in the grammar table.
    UnknownDesign(String),
    /// A parameter was malformed, out of range, or not a key the named
    /// design accepts.
    BadParam {
        /// The full design text being parsed.
        design: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The parameters parsed but the design rejected the combination.
    Config(ConfigError),
    /// The campaign description itself is unusable (zero samples, empty
    /// operand range, …).
    Invalid(String),
    /// The supervised run failed at the journaling layer.
    Harness(HarnessError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownDesign(name) => write!(
                f,
                "unknown design '{name}' (expected \
                 accurate|realm|calm|drum|kulkarni|implm|mbm|ssm|scaletrim|ilm)"
            ),
            SpecError::BadParam { design, detail } => {
                write!(f, "bad parameter in design '{design}': {detail}")
            }
            SpecError::Config(e) => write!(f, "invalid design configuration: {e}"),
            SpecError::Invalid(detail) => write!(f, "invalid campaign spec: {detail}"),
            SpecError::Harness(e) => write!(f, "campaign failed: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::Config(e)
    }
}

impl From<HarnessError> for SpecError {
    fn from(e: HarnessError) -> Self {
        SpecError::Harness(e)
    }
}

/// A per-campaign error budget: upper bounds on the delivered error
/// metrics a tenant is willing to accept.
///
/// # SLA grammar
///
/// ```text
/// sla := component { "," component }
/// component := ("mean" | "nmed" | "peak") ":" float
/// ```
///
/// e.g. `"mean:0.03,nmed:0.01"` — at least one component, every value a
/// finite positive fraction. Absent components are unconstrained.
/// `mean` bounds the mean absolute relative error, `nmed` the
/// normalized mean error distance, `peak` the worst-case relative
/// error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSla {
    /// Upper bound on mean |relative error| (`None` = unconstrained).
    pub mean: Option<f64>,
    /// Upper bound on NMED.
    pub nmed: Option<f64>,
    /// Upper bound on peak |relative error|.
    pub peak: Option<f64>,
}

// Total equality holds because the parser (the only sanctioned
// constructor for serialized SLAs) rejects non-finite values.
impl Eq for ErrorSla {}

impl ErrorSla {
    /// Parses the [SLA grammar](ErrorSla). Unknown keys, malformed or
    /// non-positive values, duplicates and empty specs are all errors —
    /// an SLA is a contract, so reject, don't guess.
    pub fn parse(text: &str) -> Result<ErrorSla, SpecError> {
        let bad = |detail: String| SpecError::Invalid(format!("error SLA '{text}': {detail}"));
        let mut sla = ErrorSla {
            mean: None,
            nmed: None,
            peak: None,
        };
        let mut any = false;
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| bad(format!("expected key:value, got '{part}'")))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("'{}' is not a number", value.trim())))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(bad(format!("'{value}' is not a positive finite bound")));
            }
            let slot = match key.trim().to_ascii_lowercase().as_str() {
                "mean" => &mut sla.mean,
                "nmed" => &mut sla.nmed,
                "peak" => &mut sla.peak,
                other => return Err(bad(format!("unknown key '{other}' (mean|nmed|peak)"))),
            };
            if slot.replace(value).is_some() {
                return Err(bad(format!("duplicate key '{}'", key.trim())));
            }
            any = true;
        }
        if !any {
            return Err(bad("at least one of mean|nmed|peak is required".into()));
        }
        Ok(sla)
    }

    /// Whether delivered metrics satisfy every constrained component.
    pub fn satisfied_by(&self, mean: f64, nmed: f64, peak: f64) -> bool {
        self.mean.is_none_or(|bound| mean <= bound)
            && self.nmed.is_none_or(|bound| nmed <= bound)
            && self.peak.is_none_or(|bound| peak <= bound)
    }

    /// The canonical text rendering — parses back to an equal value
    /// (`{:?}` floats round-trip exactly).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (key, value) in [
            ("mean", self.mean),
            ("nmed", self.nmed),
            ("peak", self.peak),
        ] {
            if let Some(v) = value {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(&format!("{key}:{v:?}"));
            }
        }
        out
    }
}

impl fmt::Display for ErrorSla {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

/// Parses one `key=int` list (`"m=16,t=0"`), rejecting malformed pairs.
fn parse_params(design: &str, text: &str) -> Result<Vec<(String, u64)>, SpecError> {
    let bad = |detail: String| SpecError::BadParam {
        design: design.to_string(),
        detail,
    };
    let mut params = Vec::new();
    for kv in text.split(',') {
        let kv = kv.trim();
        if kv.is_empty() {
            continue;
        }
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| bad(format!("expected key=value, got '{kv}'")))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| bad(format!("'{}' is not an unsigned integer", value.trim())))?;
        params.push((key.trim().to_ascii_lowercase(), value));
    }
    Ok(params)
}

/// Builds a design from its textual description (see the
/// [module-level grammar](self)).
pub fn parse_design(text: &str) -> Result<Box<dyn Multiplier>, SpecError> {
    let (name, param_text) = match text.split_once(':') {
        Some((name, params)) => (name, params),
        None => (text, ""),
    };
    let bad = |detail: String| SpecError::BadParam {
        design: text.to_string(),
        detail,
    };
    // The `@width` suffix: `name@W` is shorthand for `w=W`.
    let (name, at_width) = match name.split_once('@') {
        Some((base, wtext)) => {
            let w: u32 = wtext.trim().parse().map_err(|_| {
                bad(format!(
                    "'@{}' is not an unsigned operand width",
                    wtext.trim()
                ))
            })?;
            (base, Some(w))
        }
        None => (name, None),
    };
    let name = name.trim().to_ascii_lowercase();
    let params = parse_params(text, param_text)?;

    let allowed: &[&str] = match name.as_str() {
        "accurate" | "calm" | "kulkarni" | "implm" => &["w"],
        "realm" => &["w", "m", "t", "q"],
        "drum" => &["w", "k"],
        "mbm" => &["w", "t"],
        "ssm" => &["w", "s"],
        "scaletrim" => &["w", "t", "c"],
        "ilm" => &["w", "i"],
        _ => return Err(SpecError::UnknownDesign(name)),
    };
    if let Some((key, _)) = params.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
        return Err(bad(format!(
            "'{name}' does not accept key '{key}' (allowed: {})",
            allowed.join(", ")
        )));
    }
    if at_width.is_some() && params.iter().any(|(k, _)| k == "w") {
        return Err(bad(
            "operand width given both as '@W' suffix and 'w=' key".into()
        ));
    }
    let get = |key: &str, default: u32| -> Result<u32, SpecError> {
        match params.iter().rev().find(|(k, _)| k == key) {
            None => Ok(default),
            Some((_, v)) => {
                u32::try_from(*v).map_err(|_| bad(format!("'{key}={v}' does not fit in 32 bits")))
            }
        }
    };

    let w = match at_width {
        Some(w) => w,
        None => get("w", 16)?,
    };
    let design: Box<dyn Multiplier> = match name.as_str() {
        "accurate" => Box::new(Accurate::new(w)),
        "realm" => Box::new(Realm::new(RealmConfig::new(
            w,
            get("m", 16)?,
            get("t", 0)?,
            get("q", 6)?,
        ))?),
        "calm" => Box::new(Calm::new(w)),
        "drum" => Box::new(Drum::new(w, get("k", 6)?)?),
        "kulkarni" => Box::new(Kulkarni::new(w)?),
        "implm" => Box::new(ImpLm::new(w)),
        "mbm" => Box::new(Mbm::new(w, get("t", 0)?)?),
        "ssm" => Box::new(Ssm::new(w, get("s", 8)?)?),
        "scaletrim" => {
            let c = get("c", 1)?;
            if c > 1 {
                return Err(bad(format!("'c={c}' must be 0 or 1")));
            }
            Box::new(ScaleTrim::new(w, get("t", 4)?, c == 1)?)
        }
        "ilm" => Box::new(Ilm::new(w, get("i", 2)?)?),
        _ => return Err(SpecError::UnknownDesign(name)),
    };
    Ok(design)
}

/// Which characterization family a spec runs, with the family's own
/// sample-space description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilySpec {
    /// Uniform random operand pairs (the paper's §IV-B campaign).
    MonteCarlo {
        /// Number of operand pairs to draw.
        samples: u64,
    },
    /// The cartesian product of two inclusive operand ranges.
    Exhaustive {
        /// `(lo, hi)` of the first operand.
        a: (u64, u64),
        /// `(lo, hi)` of the second operand.
        b: (u64, u64),
    },
}

/// One fully described characterization campaign: family, design text,
/// seed and chunk geometry. This is the unit a job server accepts over
/// the wire and the unit the engine can replay bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The design, in the [module-level grammar](self).
    pub design: String,
    /// The campaign family and its sample space.
    pub family: FamilySpec,
    /// RNG seed (Monte Carlo only; exhaustive sweeps draw no randomness
    /// and ignore it).
    pub seed: u64,
    /// Chunk size override (Monte Carlo only — the exhaustive plan is
    /// row-structured). `None` uses the family default. Part of the
    /// campaign identity: resume requires an equal chunk size.
    pub chunk: Option<u64>,
    /// Optional per-campaign error budget. The SLA constrains *design
    /// selection and delivery accounting* (a QoS controller picks the
    /// design, the server scores the delivered error against it); it is
    /// deliberately **not** part of the workload identity — two jobs
    /// with equal design/family/seed/chunk journal identically whether
    /// or not an SLA rides along.
    pub error_sla: Option<ErrorSla>,
}

impl CampaignSpec {
    /// Validates the campaign description (not the design text — that is
    /// validated by [`parse_design`] when the workload is built).
    pub fn validate(&self) -> Result<(), SpecError> {
        match &self.family {
            FamilySpec::MonteCarlo { samples } => {
                if *samples == 0 {
                    return Err(SpecError::Invalid("samples must be > 0".into()));
                }
            }
            FamilySpec::Exhaustive { a, b } => {
                for (name, (lo, hi)) in [("a", a), ("b", b)] {
                    if lo > hi {
                        return Err(SpecError::Invalid(format!(
                            "operand range {name} is empty ({lo}..={hi})"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total samples in the campaign's sample space.
    pub fn total_samples(&self) -> u64 {
        match &self.family {
            FamilySpec::MonteCarlo { samples } => *samples,
            FamilySpec::Exhaustive { a, b } => {
                let rows = a.1.saturating_sub(a.0).saturating_add(1);
                let cols = b.1.saturating_sub(b.0).saturating_add(1);
                rows.saturating_mul(cols)
            }
        }
    }

    /// Builds the spec's design (validating the design text).
    pub fn build_design(&self) -> Result<Box<dyn Multiplier>, SpecError> {
        parse_design(&self.design)
    }

    /// The campaign identity this spec runs under, with an optional
    /// scope (see the [module docs](self)). Useful for journal
    /// discovery before committing to a run.
    pub fn campaign_id(&self, scope: Option<&str>) -> Result<CampaignId, SpecError> {
        self.validate()?;
        let design = self.build_design()?;
        Ok(match self.workload(design.as_ref(), scope) {
            SpecWorkload::MonteCarlo(w) => campaign_id(&w),
            SpecWorkload::Exhaustive(w) => campaign_id(&w),
        })
    }

    /// The spec's [`Workload`] over an already-built design.
    pub fn workload<'a>(
        &self,
        design: &'a dyn Multiplier,
        scope: Option<&str>,
    ) -> SpecWorkload<'a> {
        let inner = match &self.family {
            FamilySpec::MonteCarlo { samples } => {
                let mut mc = MonteCarlo::new((*samples).max(1), self.seed);
                if let Some(chunk) = self.chunk {
                    mc = mc.with_chunk(chunk);
                }
                SpecWorkload::MonteCarlo(Scoped::new(mc.workload(design), scope))
            }
            FamilySpec::Exhaustive { a, b } => SpecWorkload::Exhaustive(Scoped::new(
                RangeWorkload::new(design, a.0..=a.1, b.0..=b.1),
                scope,
            )),
        };
        inner
    }

    /// Runs the campaign under a [`Supervisor`]: the one entry point a
    /// job server needs. Checkpoint/resume, quarantine, deadlines,
    /// cancellation and collectors all come from the supervisor; the
    /// spec (plus scope) fully determines the campaign identity.
    pub fn run_supervised(
        &self,
        scope: Option<&str>,
        supervisor: &Supervisor,
    ) -> Result<Supervised<ErrorSummary>, SpecError> {
        self.validate()?;
        let design = self.build_design()?;
        match self.workload(design.as_ref(), scope) {
            SpecWorkload::MonteCarlo(w) => Ok(Engine::supervised(&w, supervisor)?),
            SpecWorkload::Exhaustive(w) => Ok(Engine::supervised(&w, supervisor)?),
        }
    }
}

/// The concrete workload a [`CampaignSpec`] builds (both families fold
/// to [`ErrorSummary`], but their chunk drivers differ).
pub enum SpecWorkload<'a> {
    /// A scoped Monte-Carlo workload.
    MonteCarlo(Scoped<crate::montecarlo::MonteCarloWorkload<'a>>),
    /// A scoped exhaustive range sweep.
    Exhaustive(Scoped<RangeWorkload<'a>>),
}

/// A [`Workload`] wrapper that appends a scope tag to the subject (and
/// therefore to the fingerprint), leaving the computation untouched.
///
/// `Scoped::new(w, Some("job-7"))` journals under a different file than
/// `Scoped::new(w, Some("job-9"))`, but both fold to bit-identical
/// outputs when `w` is equal — exactly what a multi-tenant server needs
/// to run the same spec for many clients concurrently in one checkpoint
/// directory.
#[derive(Debug, Clone)]
pub struct Scoped<W> {
    inner: W,
    scope: Option<String>,
}

impl<W: Workload> Scoped<W> {
    /// Wraps `inner`; `None` is the identity (subject unchanged).
    pub fn new(inner: W, scope: Option<&str>) -> Self {
        Scoped {
            inner,
            scope: scope.map(str::to_string),
        }
    }
}

impl<W: Workload> Workload for Scoped<W> {
    type Part = W::Part;
    type Output = W::Output;

    fn family(&self) -> &'static str {
        self.inner.family()
    }

    fn subject(&self) -> String {
        match &self.scope {
            None => self.inner.subject(),
            Some(scope) => format!("{}@{scope}", self.inner.subject()),
        }
    }

    fn plan(&self) -> ChunkPlan {
        self.inner.plan()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn run_chunk(&self, chunk: Chunk) -> Self::Part {
        self.inner.run_chunk(chunk)
    }

    fn finalize(&self, parts: Vec<(u64, Self::Part)>) -> Option<Self::Output> {
        self.inner.finalize(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::multiplier::MultiplierExt;

    #[test]
    fn every_design_name_in_the_grammar_builds() {
        for text in [
            "accurate",
            "accurate:w=8",
            "realm",
            "realm:m=8,t=3",
            "realm:w=16,m=16,t=0,q=6",
            "calm",
            "drum:k=6",
            "kulkarni:w=8",
            "implm",
            "mbm:t=4",
            "ssm:s=8",
            "scaletrim",
            "scaletrim:t=6,c=0",
            "ilm",
            "ilm:i=1",
            "calm@8",
            "realm@24:m=8,t=3",
            "drum@32:k=8",
            "SCALETRIM@8:t=3",
            " REALM : M=4 , T=1 ", // whitespace + case insensitive
        ] {
            let design = parse_design(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(!design.label().is_empty());
        }
    }

    #[test]
    fn bad_specs_are_rejected_not_guessed() {
        assert!(matches!(
            parse_design("booth"),
            Err(SpecError::UnknownDesign(_))
        ));
        assert!(matches!(
            parse_design("realm:z=3"),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            parse_design("realm:m"),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            parse_design("realm:m=banana"),
            Err(SpecError::BadParam { .. })
        ));
        // Parameters parse but the design rejects the combination
        // (segments must be a power of two).
        assert!(matches!(
            parse_design("realm:m=3"),
            Err(SpecError::Config(_))
        ));
        // The @W suffix: malformed widths and double specification are
        // grammar errors; a parseable-but-unsupported width is the
        // design's own ConfigError.
        assert!(matches!(
            parse_design("calm@banana"),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            parse_design("realm@16:w=16"),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(parse_design("ilm@0"), Err(SpecError::Config(_))));
        assert!(matches!(parse_design("ilm@65"), Err(SpecError::Config(_))));
        assert!(matches!(
            parse_design("scaletrim:c=2"),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            parse_design("scaletrim:t=1"),
            Err(SpecError::Config(_))
        ));
        assert!(matches!(parse_design("ilm:i=3"), Err(SpecError::Config(_))));
    }

    #[test]
    fn error_sla_grammar_round_trips() {
        let sla = ErrorSla::parse("mean:0.03,nmed:0.01").unwrap();
        assert_eq!(sla.mean, Some(0.03));
        assert_eq!(sla.nmed, Some(0.01));
        assert_eq!(sla.peak, None);
        assert_eq!(ErrorSla::parse(&sla.text()).unwrap(), sla);
        // Case/whitespace tolerant, like the design grammar.
        let loose = ErrorSla::parse(" MEAN : 0.03 , nmed:0.01 ").unwrap();
        assert_eq!(loose, sla);
        assert!(sla.satisfied_by(0.03, 0.01, 99.0));
        assert!(!sla.satisfied_by(0.0301, 0.01, 0.0));
        assert!(!sla.satisfied_by(0.01, 0.02, 0.0));
    }

    #[test]
    fn error_sla_rejects_malformed_contracts() {
        for bad in [
            "",
            ",",
            "mean",
            "mean:",
            "mean:banana",
            "mean=0.03",
            "latency:0.5",
            "mean:0.03,mean:0.01",
            "mean:-0.1",
            "mean:0",
            "mean:inf",
            "mean:NaN",
        ] {
            assert!(
                matches!(ErrorSla::parse(bad), Err(SpecError::Invalid(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    fn mc_spec(samples: u64) -> CampaignSpec {
        CampaignSpec {
            design: "realm:m=16,t=0".into(),
            family: FamilySpec::MonteCarlo { samples },
            seed: 42,
            chunk: Some(256),
            error_sla: None,
        }
    }

    #[test]
    fn validate_catches_empty_sample_spaces() {
        assert!(mc_spec(0).validate().is_err());
        let empty = CampaignSpec {
            design: "accurate".into(),
            family: FamilySpec::Exhaustive {
                a: (10, 3),
                b: (1, 2),
            },
            seed: 0,
            chunk: None,
            error_sla: None,
        };
        assert!(empty.validate().is_err());
        assert_eq!(mc_spec(100).total_samples(), 100);
        let exh = CampaignSpec {
            design: "accurate".into(),
            family: FamilySpec::Exhaustive {
                a: (1, 10),
                b: (1, 5),
            },
            seed: 0,
            chunk: None,
            error_sla: None,
        };
        assert_eq!(exh.total_samples(), 50);
    }

    #[test]
    fn scope_changes_fingerprint_but_not_the_result() {
        let spec = mc_spec(2_000);
        let id_a = spec.campaign_id(Some("job-7")).unwrap();
        let id_b = spec.campaign_id(Some("job-9")).unwrap();
        let id_plain = spec.campaign_id(None).unwrap();
        assert_ne!(id_a.fingerprint(), id_b.fingerprint());
        assert_ne!(id_a.fingerprint(), id_plain.fingerprint());
        assert!(id_a.subject().ends_with("@job-7"), "{}", id_a.subject());

        let sup = Supervisor::new().with_threads(crate::Threads::Fixed(2));
        let a = spec.run_supervised(Some("job-7"), &sup).unwrap();
        let b = spec.run_supervised(Some("job-9"), &sup).unwrap();
        assert!(a.report.is_complete() && b.report.is_complete());
        assert_eq!(a.value, b.value, "scope must never change the fold");

        // And the spec path agrees with the first-party campaign API.
        let design = spec.build_design().unwrap();
        let direct = MonteCarlo::new(2_000, 42)
            .with_chunk(256)
            .characterize(design.as_ref());
        assert_eq!(a.value, Some(direct));
    }

    #[test]
    fn exhaustive_specs_run_too() {
        let spec = CampaignSpec {
            design: "calm".into(),
            family: FamilySpec::Exhaustive {
                a: (32, 95),
                b: (32, 95),
            },
            seed: 0,
            chunk: None,
            error_sla: None,
        };
        let sup = Supervisor::new().with_threads(crate::Threads::Fixed(1));
        let out = spec.run_supervised(Some("j"), &sup).unwrap();
        assert!(out.report.is_complete());
        let summary = out.value.unwrap();
        assert_eq!(summary.samples, 64 * 64);
        assert!(summary.max_error <= 0.0, "Mitchell never overestimates");
    }
}
