//! Terminal heatmaps of relative-error surfaces — a plot-free way to eyeball
//! the Fig. 1 sawtooth structure directly in the experiment drivers.

use crate::exhaustive::ProfilePoint;

/// Density ramp from "no error" to "max error".
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders a relative-error surface as an ASCII heatmap of
/// `width × height` character cells. Cell intensity is the mean |error|
/// of the profile points that fall into it, normalized by `scale`
/// (e.g. `0.12` maps the log family's worst case to full intensity).
///
/// ```
/// use realm_baselines::Calm;
/// use realm_metrics::{error_profile, heatmap::render_heatmap};
///
/// let profile = error_profile(&Calm::new(16), 32..=255, 32..=255);
/// let map = render_heatmap(&profile, 32, 16, 0.12);
/// assert_eq!(map.lines().count(), 16);
/// ```
///
/// # Panics
///
/// Panics if the profile is empty, a dimension is zero, or `scale` is not
/// positive.
pub fn render_heatmap(profile: &[ProfilePoint], width: usize, height: usize, scale: f64) -> String {
    assert!(!profile.is_empty(), "empty profile");
    assert!(
        width > 0 && height > 0,
        "heatmap dimensions must be positive"
    );
    assert!(scale > 0.0, "scale must be positive");
    let (a_min, a_max) = min_max(profile.iter().map(|p| p.a));
    let (b_min, b_max) = min_max(profile.iter().map(|p| p.b));
    let a_span = (a_max - a_min + 1) as f64;
    let b_span = (b_max - b_min + 1) as f64;

    let mut sums = vec![0.0f64; width * height];
    let mut counts = vec![0u32; width * height];
    for p in profile {
        let col = (((p.a - a_min) as f64 / a_span) * width as f64) as usize;
        let row = (((p.b - b_min) as f64 / b_span) * height as f64) as usize;
        let idx = row.min(height - 1) * width + col.min(width - 1);
        sums[idx] += p.error.abs();
        counts[idx] += 1;
    }

    let mut out = String::with_capacity(height * (width + 1));
    for row in (0..height).rev() {
        for col in 0..width {
            let idx = row * width + col;
            let ch = if counts[idx] == 0 {
                ' '
            } else {
                let mean = sums[idx] / counts[idx] as f64;
                let level = ((mean / scale) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[level.min(RAMP.len() - 1)]
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

fn min_max(values: impl Iterator<Item = u64>) -> (u64, u64) {
    values.fold((u64::MAX, 0), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::{Realm, RealmConfig};

    fn profile_of(design: &dyn realm_core::Multiplier) -> Vec<ProfilePoint> {
        crate::exhaustive::error_profile(design, 32..=255, 32..=255)
    }

    #[test]
    fn dimensions_match_request() {
        let map = render_heatmap(&profile_of(&Calm::new(16)), 40, 20, 0.12);
        assert_eq!(map.lines().count(), 20);
        assert!(map.lines().all(|l| l.chars().count() == 40));
    }

    #[test]
    fn realm_map_is_visibly_quieter_than_calm() {
        let ink = |map: &str| {
            map.chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| RAMP.iter().position(|&r| r == c).unwrap_or(0))
                .sum::<usize>()
        };
        let calm = render_heatmap(&profile_of(&Calm::new(16)), 40, 20, 0.12);
        let realm = render_heatmap(
            &profile_of(&Realm::new(RealmConfig::n16(16, 0)).expect("paper design point")),
            40,
            20,
            0.12,
        );
        assert!(
            ink(&realm) * 4 < ink(&calm),
            "REALM ink {} vs cALM ink {}",
            ink(&realm),
            ink(&calm)
        );
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn empty_profile_panics() {
        let _ = render_heatmap(&[], 10, 10, 0.1);
    }
}
