//! Fault-injection campaigns: per-site corruption/detection statistics
//! and error-degradation metrics over the functional fault model of
//! `realm-fault`.
//!
//! A campaign drives one [`FaultTarget`] design through uniform random
//! operand pairs three ways per sample — fault-free, faulty, and faulty
//! behind the [`Guarded`](realm_fault::Guarded) invariant — and reports,
//! per fault site:
//!
//! * how often the fault disturbed an architectural value and how often
//!   that corrupted the product,
//! * how often the log-domain magnitude guard caught the corruption,
//! * NMED and mean-relative-error degradation relative to the fault-free
//!   design, and the residual NMED behind the guard.

use crate::engine::{campaign_id, Engine, Workload};
use crate::montecarlo::DEFAULT_CHUNK;
use crate::nmed::DistanceSummary;
use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_fault::{plausible_product, Fault, FaultSite, FaultTarget, Injector, SiteClass};
use realm_harness::{ByteReader, CampaignId, Checkpoint, HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan, Threads};
use std::fmt;

/// A fault-injection campaign configuration: how many operand pairs to
/// draw and the random seed shared by operand sampling and transient
/// activation.
///
/// Campaigns are chunked exactly like [`crate::MonteCarlo`]: chunk `i`
/// draws its operands and transient activations from
/// `SplitMix64::stream(seed, i)` and produces a private partial, and
/// partials fold in chunk order — so reports are bit-identical for any
/// worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCampaign {
    samples: u64,
    seed: u64,
    threads: Threads,
    chunk: u64,
}

/// Per-chunk partial statistics of a fault campaign, folded in chunk
/// order by the reduce. Opaque — only the engine and the journal touch
/// its content.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPartial {
    disturbed: u64,
    corrupted: u64,
    detected: u64,
    fallbacks: u64,
    sum_clean: f64,
    sum_faulty: f64,
    sum_guarded: f64,
    sum_mre: f64,
    mre_samples: u64,
}

impl Checkpoint for FaultPartial {
    fn encode(&self, out: &mut Vec<u8>) {
        self.disturbed.encode(out);
        self.corrupted.encode(out);
        self.detected.encode(out);
        self.fallbacks.encode(out);
        self.sum_clean.encode(out);
        self.sum_faulty.encode(out);
        self.sum_guarded.encode(out);
        self.sum_mre.encode(out);
        self.mre_samples.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(FaultPartial {
            disturbed: u64::decode(r)?,
            corrupted: u64::decode(r)?,
            detected: u64::decode(r)?,
            fallbacks: u64::decode(r)?,
            sum_clean: f64::decode(r)?,
            sum_faulty: f64::decode(r)?,
            sum_guarded: f64::decode(r)?,
            sum_mre: f64::decode(r)?,
            mre_samples: u64::decode(r)?,
        })
    }
}

impl FaultPartial {
    fn merge(&mut self, other: &FaultPartial) {
        self.disturbed += other.disturbed;
        self.corrupted += other.corrupted;
        self.detected += other.detected;
        self.fallbacks += other.fallbacks;
        self.sum_clean += other.sum_clean;
        self.sum_faulty += other.sum_faulty;
        self.sum_guarded += other.sum_guarded;
        self.sum_mre += other.sum_mre;
        self.mre_samples += other.mre_samples;
    }
}

/// Campaign statistics for one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteReport {
    /// The injected fault.
    pub fault: Fault,
    /// Operand pairs characterized.
    pub samples: u64,
    /// Fraction of operations in which the fault changed an
    /// architectural value (for stuck-ats, the activation profile of the
    /// site; for transients, ≈ the flip probability).
    pub disturbance_rate: f64,
    /// Fraction of operations whose product differed from the fault-free
    /// product — directly comparable to the gate-level
    /// `detection_rate` of `realm_synth::faults`.
    pub corruption_rate: f64,
    /// Fraction of *corrupted* operations the magnitude guard flagged
    /// (1.0 when nothing was corrupted: a silent fault has no undetected
    /// corruption).
    pub detection_rate: f64,
    /// Fraction of all operations the guard recomputed exactly.
    pub fallback_rate: f64,
    /// NMED of the fault-free design (campaign baseline).
    pub nmed_clean: f64,
    /// NMED of the faulty design.
    pub nmed_faulty: f64,
    /// NMED of the faulty design behind the guard.
    pub nmed_guarded: f64,
    /// Mean |relative error| of the faulty design (zero-product pairs
    /// skipped), comparable to the gate-level `mean_relative_error`.
    pub mre_faulty: f64,
}

impl SiteReport {
    /// NMED degradation attributable to the fault.
    pub fn nmed_degradation(&self) -> f64 {
        self.nmed_faulty - self.nmed_clean
    }

    /// NMED degradation that remains once the guard is in place.
    pub fn guarded_degradation(&self) -> f64 {
        self.nmed_guarded - self.nmed_clean
    }
}

impl fmt::Display for SiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} corrupt={:6.2}% detect={:6.2}% nmed {:.2e}→{:.2e} (guarded {:.2e})",
            self.fault.to_string(),
            self.corruption_rate * 100.0,
            self.detection_rate * 100.0,
            self.nmed_clean,
            self.nmed_faulty,
            self.nmed_guarded,
        )
    }
}

/// Per-class aggregation of [`SiteReport`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSummary {
    /// The aggregated site class.
    pub class: SiteClass,
    /// Number of site reports aggregated.
    pub sites: usize,
    /// Mean corruption rate across the class's sites.
    pub corruption_rate: f64,
    /// Mean guard detection rate across the class's sites.
    pub detection_rate: f64,
    /// Mean NMED degradation across the class's sites.
    pub nmed_degradation: f64,
    /// Worst NMED degradation across the class's sites.
    pub worst_degradation: f64,
    /// Mean faulty MRE across the class's sites.
    pub mre: f64,
}

impl fmt::Display for ClassSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} sites={:<3} corrupt={:6.2}% detect={:6.2}% ΔNMED mean={:.2e} worst={:.2e} MRE={:.3}",
            self.class.to_string(),
            self.sites,
            self.corruption_rate * 100.0,
            self.detection_rate * 100.0,
            self.nmed_degradation,
            self.worst_degradation,
            self.mre,
        )
    }
}

/// One point of a transient-fault degradation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientPoint {
    /// Per-operation flip probability injected.
    pub probability: f64,
    /// The campaign statistics at that probability.
    pub report: SiteReport,
}

impl FaultCampaign {
    /// A campaign drawing `samples` uniform operand pairs with the given
    /// seed, on every available hardware thread ([`Threads::Auto`]).
    /// `samples` is clamped up to 1 so campaigns are total. The thread
    /// count never changes a report.
    pub fn new(samples: u64, seed: u64) -> Self {
        FaultCampaign {
            samples: samples.max(1),
            seed,
            threads: Threads::Auto,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the worker-thread policy (a pure performance knob).
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the chunk size. Changes which RNG substream serves which
    /// sample, so reports compare bit-identically only at equal chunk
    /// size.
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The campaign's [`Workload`] for one design × fault combination —
    /// the engine-facing description every entry point below drives.
    pub fn workload<'a>(&self, design: &'a dyn FaultTarget, fault: Fault) -> FaultWorkload<'a> {
        FaultWorkload {
            campaign: *self,
            design,
            fault,
        }
    }

    /// Normalizes a folded partial into a [`SiteReport`] over `samples`
    /// covered operand pairs.
    fn report_from(fault: Fault, samples: u64, norm: f64, total: &FaultPartial) -> SiteReport {
        let n = samples as f64;
        SiteReport {
            fault,
            samples,
            disturbance_rate: total.disturbed as f64 / n,
            corruption_rate: total.corrupted as f64 / n,
            detection_rate: if total.corrupted == 0 {
                1.0
            } else {
                total.detected as f64 / total.corrupted as f64
            },
            fallback_rate: total.fallbacks as f64 / n,
            nmed_clean: total.sum_clean / n / norm,
            nmed_faulty: total.sum_faulty / n / norm,
            nmed_guarded: total.sum_guarded / n / norm,
            mre_faulty: if total.mre_samples == 0 {
                0.0
            } else {
                total.sum_mre / total.mre_samples as f64
            },
        }
    }

    /// Characterizes a single fault on a design.
    pub fn characterize(&self, design: &dyn FaultTarget, fault: Fault) -> SiteReport {
        Engine::new(self.threads)
            .run(&self.workload(design, fault))
            .unwrap_or_else(|| unreachable!("a fault campaign draws at least one sample"))
    }

    /// The fault campaign's identity for checkpoint journaling: binds
    /// the design, the injected fault (via
    /// [`Fault::campaign_tag`]), the plan geometry and the seed.
    pub fn campaign_id(&self, design: &dyn FaultTarget, fault: Fault) -> CampaignId {
        campaign_id(&self.workload(design, fault))
    }

    /// [`characterize`](Self::characterize) under a [`Supervisor`]:
    /// checkpoint/resume, panic quarantine, deadlines and cancellation.
    /// A complete run is bit-identical to the unsupervised report; a
    /// partial run normalizes by — and reports — the samples actually
    /// covered (`None` if no chunk completed).
    pub fn characterize_supervised(
        &self,
        design: &dyn FaultTarget,
        fault: Fault,
        supervisor: &Supervisor,
    ) -> Result<Supervised<SiteReport>, HarnessError> {
        Engine::supervised(&self.workload(design, fault), supervisor)
    }

    /// [`stuck_at_sweep`](Self::stuck_at_sweep) under a [`Supervisor`]:
    /// every per-fault campaign is journaled separately (one file per
    /// fault), so a sweep interrupted between — or within — faults
    /// resumes where it stopped. Faults whose campaign was interrupted
    /// or fully quarantined are omitted from the returned list; the
    /// reports that are present are exact.
    pub fn stuck_at_sweep_supervised(
        &self,
        design: &dyn FaultTarget,
        supervisor: &Supervisor,
    ) -> Result<Supervised<Vec<SiteReport>>, HarnessError> {
        let mut reports = Vec::new();
        let mut last_report = None;
        for site in design.fault_sites() {
            for value in [false, true] {
                let fault = Fault::stuck_at(site, value);
                let sup = self.characterize_supervised(design, fault, supervisor)?;
                if let (true, Some(report)) = (sup.report.is_complete(), sup.value) {
                    reports.push(report);
                }
                let report = sup.report;
                if report.stopped.is_some() {
                    // Deadline/cancel applies to the whole sweep: stop
                    // scheduling further faults.
                    return Ok(Supervised {
                        value: (!reports.is_empty()).then_some(reports),
                        report,
                    });
                }
                last_report = Some(report);
            }
        }
        // A design with no fault sites is vacuously complete: an empty
        // report with nothing pending.
        let report = last_report.unwrap_or(realm_harness::RunReport {
            total_chunks: 0,
            replayed_chunks: 0,
            executed_chunks: 0,
            quarantined: Vec::new(),
            stopped: None,
            covered_samples: 0,
            total_samples: 0,
            journal: realm_harness::LoadStats::default(),
        });
        Ok(Supervised {
            value: (!reports.is_empty()).then_some(reports),
            report,
        })
    }

    /// Exhaustive permanent-fault sweep: one stuck-at-0 and one
    /// stuck-at-1 campaign per fault site of the design.
    pub fn stuck_at_sweep(&self, design: &dyn FaultTarget) -> Vec<SiteReport> {
        let mut reports = Vec::new();
        for site in design.fault_sites() {
            for value in [false, true] {
                reports.push(self.characterize(design, Fault::stuck_at(site, value)));
            }
        }
        reports
    }

    /// Transient degradation curve: one campaign per flip probability on
    /// a single site.
    pub fn transient_curve(
        &self,
        design: &dyn FaultTarget,
        site: FaultSite,
        probabilities: &[f64],
    ) -> Vec<TransientPoint> {
        probabilities
            .iter()
            .map(|&probability| TransientPoint {
                probability,
                report: self.characterize(design, Fault::transient(site, probability)),
            })
            .collect()
    }

    /// The fault-free NMED/WCED of a design under this campaign's
    /// operand distribution (convenience baseline).
    pub fn baseline(&self, design: &dyn realm_core::Multiplier) -> DistanceSummary {
        crate::nmed::distance_metrics_threaded(design, self.samples, self.seed, self.threads)
    }
}

/// The [`Workload`] of one [`FaultCampaign`] applied to one design ×
/// fault combination: chunk `i` draws its operand pairs and transient
/// activations from `SplitMix64::stream(seed, i)`, folds a
/// [`FaultPartial`], and finalization normalizes by the samples the
/// folded chunks actually cover (equal to the budget on complete runs).
#[derive(Debug, Clone, Copy)]
pub struct FaultWorkload<'a> {
    campaign: FaultCampaign,
    design: &'a dyn FaultTarget,
    fault: Fault,
}

impl Workload for FaultWorkload<'_> {
    type Part = FaultPartial;
    type Output = SiteReport;

    fn family(&self) -> &'static str {
        "faults"
    }

    fn subject(&self) -> String {
        format!("{} :: {}", self.design.label(), self.fault.campaign_tag())
    }

    fn plan(&self) -> ChunkPlan {
        ChunkPlan::new(self.campaign.samples, self.campaign.chunk)
    }

    fn seed(&self) -> u64 {
        self.campaign.seed
    }

    /// Draws the chunk's operand pairs up front, runs the fault-free
    /// products through the design's batch kernel, then replays each
    /// pair through the injector (whose transient draws continue the
    /// chunk's substream).
    fn run_chunk(&self, chunk: Chunk) -> FaultPartial {
        let design = self.design;
        let max = design.max_operand();
        let width = design.width();
        let faults = [self.fault];
        let mut rng = SplitMix64::stream(self.campaign.seed, chunk.index);
        let mut pairs = Vec::with_capacity(chunk.len as usize);
        for _ in 0..chunk.len {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            pairs.push((a, b));
        }
        let mut clean_products = vec![0u64; pairs.len()];
        design.multiply_batch(&pairs, &mut clean_products);

        let mut part = FaultPartial::default();
        for (&(a, b), &clean) in pairs.iter().zip(&clean_products) {
            let exact = (a as u128 * b as u128) as f64;
            let mut injector = Injector::new(&faults, &mut rng);
            let faulty = design.multiply_faulty(a, b, &mut injector);

            if injector.disturbed() {
                part.disturbed += 1;
            }
            let is_corrupted = faulty != clean;
            if is_corrupted {
                part.corrupted += 1;
            }
            let implausible = !plausible_product(a, b, faulty);
            if implausible {
                part.fallbacks += 1;
                if is_corrupted {
                    part.detected += 1;
                }
            }
            let guarded = if implausible {
                realm_core::mitchell::saturate_product(a as u128 * b as u128, width)
            } else {
                faulty
            };

            part.sum_clean += (clean as f64 - exact).abs();
            part.sum_faulty += (faulty as f64 - exact).abs();
            part.sum_guarded += (guarded as f64 - exact).abs();
            if exact > 0.0 {
                part.sum_mre += ((faulty as f64 - exact) / exact).abs();
                part.mre_samples += 1;
            }
        }
        part
    }

    fn finalize(&self, parts: Vec<(u64, FaultPartial)>) -> Option<SiteReport> {
        let plan = self.plan();
        let covered: u64 = parts.iter().map(|&(i, _)| plan.chunk(i).len).sum();
        if covered == 0 {
            return None;
        }
        let max = self.design.max_operand();
        let norm = max as f64 * max as f64;
        let mut total = FaultPartial::default();
        for (_, part) in &parts {
            total.merge(part);
        }
        Some(FaultCampaign::report_from(
            self.fault, covered, norm, &total,
        ))
    }
}

/// Aggregates site reports into per-class summaries, ordered most
/// error-critical first (by mean NMED degradation).
pub fn summarize_by_class(reports: &[SiteReport]) -> Vec<ClassSummary> {
    let mut summaries = Vec::new();
    for class in SiteClass::ALL {
        let members: Vec<&SiteReport> = reports
            .iter()
            .filter(|r| r.fault.site.class() == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        let n = members.len() as f64;
        summaries.push(ClassSummary {
            class,
            sites: members.len(),
            corruption_rate: members.iter().map(|r| r.corruption_rate).sum::<f64>() / n,
            detection_rate: members.iter().map(|r| r.detection_rate).sum::<f64>() / n,
            nmed_degradation: members.iter().map(|r| r.nmed_degradation()).sum::<f64>() / n,
            worst_degradation: members
                .iter()
                .map(|r| r.nmed_degradation())
                .fold(f64::NEG_INFINITY, f64::max),
            mre: members.iter().map(|r| r.mre_faulty).sum::<f64>() / n,
        });
    }
    summaries.sort_by(|a, b| b.nmed_degradation.total_cmp(&a.nmed_degradation));
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::{Realm, RealmConfig};
    use realm_fault::Operand;

    fn realm16() -> Realm {
        Realm::new(RealmConfig::n16(16, 0)).expect("valid configuration")
    }

    fn campaign() -> FaultCampaign {
        FaultCampaign::new(4_000, 0xCA11)
    }

    #[test]
    fn msb_shift_fault_is_critical_and_guard_catches_it() {
        let r = campaign().characterize(
            &realm16(),
            Fault::stuck_at(FaultSite::ShiftAmount { bit: 4 }, false),
        );
        // Clearing the shift MSB crushes most products by 2^16.
        assert!(r.corruption_rate > 0.5, "corruption {}", r.corruption_rate);
        assert!(r.detection_rate > 0.95, "detection {}", r.detection_rate);
        assert!(
            r.nmed_degradation() > 0.01,
            "ΔNMED {}",
            r.nmed_degradation()
        );
        // Behind the guard the degradation nearly vanishes.
        assert!(
            r.guarded_degradation() < r.nmed_degradation() / 100.0,
            "guarded ΔNMED {} vs {}",
            r.guarded_degradation(),
            r.nmed_degradation()
        );
    }

    #[test]
    fn lut_lsb_fault_is_benign_and_invisible_to_the_guard() {
        let r = campaign().characterize(
            &realm16(),
            Fault::stuck_at(FaultSite::LutFactor { bit: 0 }, true),
        );
        // The LUT LSB is worth 2^-6 of the product — within an octave, so
        // the magnitude guard cannot see it and the damage is tiny.
        assert!(r.mre_faulty < 0.05, "MRE {}", r.mre_faulty);
        assert!(r.fallback_rate < 0.01, "fallback {}", r.fallback_rate);
        assert!(r.nmed_degradation() < 1e-3);
    }

    #[test]
    fn characteristic_outranks_lut_in_class_ranking() {
        let c = campaign();
        let design = realm16();
        let mut reports = Vec::new();
        for site in [
            FaultSite::Characteristic {
                operand: Operand::A,
                bit: 3,
            },
            FaultSite::Characteristic {
                operand: Operand::B,
                bit: 2,
            },
            FaultSite::LutFactor { bit: 0 },
            FaultSite::LutFactor { bit: 3 },
        ] {
            reports.push(c.characterize(&design, Fault::stuck_at(site, true)));
            reports.push(c.characterize(&design, Fault::stuck_at(site, false)));
        }
        let classes = summarize_by_class(&reports);
        assert_eq!(classes[0].class, SiteClass::Characteristic);
        assert!(classes[0].nmed_degradation > classes[1].nmed_degradation);
    }

    #[test]
    fn transient_curve_is_monotone_in_probability() {
        let points = campaign().transient_curve(
            &realm16(),
            FaultSite::ShiftAmount { bit: 3 },
            &[0.0, 0.1, 0.5, 1.0],
        );
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].report.corruption_rate, 0.0);
        for pair in points.windows(2) {
            assert!(
                pair[1].report.nmed_faulty >= pair[0].report.nmed_faulty,
                "NMED not monotone: {:?}",
                pair.iter()
                    .map(|p| p.report.nmed_faulty)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sweep_covers_every_site_twice() {
        let design = realm16();
        let small = FaultCampaign::new(50, 3);
        let reports = small.stuck_at_sweep(&design);
        assert_eq!(reports.len(), 2 * design.fault_sites().len());
    }

    #[test]
    fn report_is_thread_count_independent() {
        use realm_par::Threads;
        let design = realm16();
        let fault = Fault::transient(FaultSite::ShiftAmount { bit: 2 }, 0.25);
        let base = FaultCampaign::new(20_000, 0xF00D).with_chunk(1 << 11);
        let one = base
            .with_threads(Threads::Fixed(1))
            .characterize(&design, fault);
        for workers in [2usize, 8] {
            let many = base
                .with_threads(Threads::Fixed(workers))
                .characterize(&design, fault);
            assert_eq!(one, many, "workers={workers}");
        }
    }
}
