//! Fault-injection campaigns: per-site corruption/detection statistics
//! and error-degradation metrics over the functional fault model of
//! `realm-fault`.
//!
//! A campaign drives one [`FaultTarget`] design through uniform random
//! operand pairs three ways per sample — fault-free, faulty, and faulty
//! behind the [`Guarded`](realm_fault::Guarded) invariant — and reports,
//! per fault site:
//!
//! * how often the fault disturbed an architectural value and how often
//!   that corrupted the product,
//! * how often the log-domain magnitude guard caught the corruption,
//! * NMED and mean-relative-error degradation relative to the fault-free
//!   design, and the residual NMED behind the guard.

use crate::nmed::DistanceSummary;
use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_fault::{plausible_product, Fault, FaultSite, FaultTarget, Injector, SiteClass};
use std::fmt;

/// A fault-injection campaign configuration: how many operand pairs to
/// draw and the random seed shared by operand sampling and transient
/// activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCampaign {
    samples: u64,
    seed: u64,
}

/// Campaign statistics for one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteReport {
    /// The injected fault.
    pub fault: Fault,
    /// Operand pairs characterized.
    pub samples: u64,
    /// Fraction of operations in which the fault changed an
    /// architectural value (for stuck-ats, the activation profile of the
    /// site; for transients, ≈ the flip probability).
    pub disturbance_rate: f64,
    /// Fraction of operations whose product differed from the fault-free
    /// product — directly comparable to the gate-level
    /// `detection_rate` of `realm_synth::faults`.
    pub corruption_rate: f64,
    /// Fraction of *corrupted* operations the magnitude guard flagged
    /// (1.0 when nothing was corrupted: a silent fault has no undetected
    /// corruption).
    pub detection_rate: f64,
    /// Fraction of all operations the guard recomputed exactly.
    pub fallback_rate: f64,
    /// NMED of the fault-free design (campaign baseline).
    pub nmed_clean: f64,
    /// NMED of the faulty design.
    pub nmed_faulty: f64,
    /// NMED of the faulty design behind the guard.
    pub nmed_guarded: f64,
    /// Mean |relative error| of the faulty design (zero-product pairs
    /// skipped), comparable to the gate-level `mean_relative_error`.
    pub mre_faulty: f64,
}

impl SiteReport {
    /// NMED degradation attributable to the fault.
    pub fn nmed_degradation(&self) -> f64 {
        self.nmed_faulty - self.nmed_clean
    }

    /// NMED degradation that remains once the guard is in place.
    pub fn guarded_degradation(&self) -> f64 {
        self.nmed_guarded - self.nmed_clean
    }
}

impl fmt::Display for SiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} corrupt={:6.2}% detect={:6.2}% nmed {:.2e}→{:.2e} (guarded {:.2e})",
            self.fault.to_string(),
            self.corruption_rate * 100.0,
            self.detection_rate * 100.0,
            self.nmed_clean,
            self.nmed_faulty,
            self.nmed_guarded,
        )
    }
}

/// Per-class aggregation of [`SiteReport`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSummary {
    /// The aggregated site class.
    pub class: SiteClass,
    /// Number of site reports aggregated.
    pub sites: usize,
    /// Mean corruption rate across the class's sites.
    pub corruption_rate: f64,
    /// Mean guard detection rate across the class's sites.
    pub detection_rate: f64,
    /// Mean NMED degradation across the class's sites.
    pub nmed_degradation: f64,
    /// Worst NMED degradation across the class's sites.
    pub worst_degradation: f64,
    /// Mean faulty MRE across the class's sites.
    pub mre: f64,
}

impl fmt::Display for ClassSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} sites={:<3} corrupt={:6.2}% detect={:6.2}% ΔNMED mean={:.2e} worst={:.2e} MRE={:.3}",
            self.class.to_string(),
            self.sites,
            self.corruption_rate * 100.0,
            self.detection_rate * 100.0,
            self.nmed_degradation,
            self.worst_degradation,
            self.mre,
        )
    }
}

/// One point of a transient-fault degradation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientPoint {
    /// Per-operation flip probability injected.
    pub probability: f64,
    /// The campaign statistics at that probability.
    pub report: SiteReport,
}

impl FaultCampaign {
    /// A campaign drawing `samples` uniform operand pairs with the given
    /// seed. `samples` is clamped up to 1 so campaigns are total.
    pub fn new(samples: u64, seed: u64) -> Self {
        FaultCampaign {
            samples: samples.max(1),
            seed,
        }
    }

    /// Characterizes a single fault on a design.
    pub fn characterize(&self, design: &dyn FaultTarget, fault: Fault) -> SiteReport {
        let max = design.max_operand();
        let width = design.width();
        let norm = max as f64 * max as f64;
        let faults = [fault];
        let mut rng = SplitMix64::new(self.seed);

        let mut disturbed = 0u64;
        let mut corrupted = 0u64;
        let mut detected = 0u64;
        let mut fallbacks = 0u64;
        let mut sum_clean = 0.0f64;
        let mut sum_faulty = 0.0f64;
        let mut sum_guarded = 0.0f64;
        let mut sum_mre = 0.0f64;
        let mut mre_samples = 0u64;

        for _ in 0..self.samples {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            let exact = (a as u128 * b as u128) as f64;

            let clean = design.multiply(a, b);
            let mut injector = Injector::new(&faults, &mut rng);
            let faulty = design.multiply_faulty(a, b, &mut injector);

            if injector.disturbed() {
                disturbed += 1;
            }
            let is_corrupted = faulty != clean;
            if is_corrupted {
                corrupted += 1;
            }
            let implausible = !plausible_product(a, b, faulty);
            if implausible {
                fallbacks += 1;
                if is_corrupted {
                    detected += 1;
                }
            }
            let guarded = if implausible {
                realm_core::mitchell::saturate_product(a as u128 * b as u128, width)
            } else {
                faulty
            };

            sum_clean += (clean as f64 - exact).abs();
            sum_faulty += (faulty as f64 - exact).abs();
            sum_guarded += (guarded as f64 - exact).abs();
            if exact > 0.0 {
                sum_mre += ((faulty as f64 - exact) / exact).abs();
                mre_samples += 1;
            }
        }

        let n = self.samples as f64;
        SiteReport {
            fault,
            samples: self.samples,
            disturbance_rate: disturbed as f64 / n,
            corruption_rate: corrupted as f64 / n,
            detection_rate: if corrupted == 0 {
                1.0
            } else {
                detected as f64 / corrupted as f64
            },
            fallback_rate: fallbacks as f64 / n,
            nmed_clean: sum_clean / n / norm,
            nmed_faulty: sum_faulty / n / norm,
            nmed_guarded: sum_guarded / n / norm,
            mre_faulty: if mre_samples == 0 {
                0.0
            } else {
                sum_mre / mre_samples as f64
            },
        }
    }

    /// Exhaustive permanent-fault sweep: one stuck-at-0 and one
    /// stuck-at-1 campaign per fault site of the design.
    pub fn stuck_at_sweep(&self, design: &dyn FaultTarget) -> Vec<SiteReport> {
        let mut reports = Vec::new();
        for site in design.fault_sites() {
            for value in [false, true] {
                reports.push(self.characterize(design, Fault::stuck_at(site, value)));
            }
        }
        reports
    }

    /// Transient degradation curve: one campaign per flip probability on
    /// a single site.
    pub fn transient_curve(
        &self,
        design: &dyn FaultTarget,
        site: FaultSite,
        probabilities: &[f64],
    ) -> Vec<TransientPoint> {
        probabilities
            .iter()
            .map(|&probability| TransientPoint {
                probability,
                report: self.characterize(design, Fault::transient(site, probability)),
            })
            .collect()
    }

    /// The fault-free NMED/WCED of a design under this campaign's
    /// operand distribution (convenience baseline).
    pub fn baseline(&self, design: &dyn realm_core::Multiplier) -> DistanceSummary {
        crate::nmed::distance_metrics(design, self.samples, self.seed)
    }
}

/// Aggregates site reports into per-class summaries, ordered most
/// error-critical first (by mean NMED degradation).
pub fn summarize_by_class(reports: &[SiteReport]) -> Vec<ClassSummary> {
    let mut summaries = Vec::new();
    for class in SiteClass::ALL {
        let members: Vec<&SiteReport> = reports
            .iter()
            .filter(|r| r.fault.site.class() == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        let n = members.len() as f64;
        summaries.push(ClassSummary {
            class,
            sites: members.len(),
            corruption_rate: members.iter().map(|r| r.corruption_rate).sum::<f64>() / n,
            detection_rate: members.iter().map(|r| r.detection_rate).sum::<f64>() / n,
            nmed_degradation: members.iter().map(|r| r.nmed_degradation()).sum::<f64>() / n,
            worst_degradation: members
                .iter()
                .map(|r| r.nmed_degradation())
                .fold(f64::NEG_INFINITY, f64::max),
            mre: members.iter().map(|r| r.mre_faulty).sum::<f64>() / n,
        });
    }
    summaries.sort_by(|a, b| b.nmed_degradation.total_cmp(&a.nmed_degradation));
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::{Realm, RealmConfig};
    use realm_fault::Operand;

    fn realm16() -> Realm {
        Realm::new(RealmConfig::n16(16, 0)).expect("valid configuration")
    }

    fn campaign() -> FaultCampaign {
        FaultCampaign::new(4_000, 0xCA11)
    }

    #[test]
    fn msb_shift_fault_is_critical_and_guard_catches_it() {
        let r = campaign().characterize(
            &realm16(),
            Fault::stuck_at(FaultSite::ShiftAmount { bit: 4 }, false),
        );
        // Clearing the shift MSB crushes most products by 2^16.
        assert!(r.corruption_rate > 0.5, "corruption {}", r.corruption_rate);
        assert!(r.detection_rate > 0.95, "detection {}", r.detection_rate);
        assert!(
            r.nmed_degradation() > 0.01,
            "ΔNMED {}",
            r.nmed_degradation()
        );
        // Behind the guard the degradation nearly vanishes.
        assert!(
            r.guarded_degradation() < r.nmed_degradation() / 100.0,
            "guarded ΔNMED {} vs {}",
            r.guarded_degradation(),
            r.nmed_degradation()
        );
    }

    #[test]
    fn lut_lsb_fault_is_benign_and_invisible_to_the_guard() {
        let r = campaign().characterize(
            &realm16(),
            Fault::stuck_at(FaultSite::LutFactor { bit: 0 }, true),
        );
        // The LUT LSB is worth 2^-6 of the product — within an octave, so
        // the magnitude guard cannot see it and the damage is tiny.
        assert!(r.mre_faulty < 0.05, "MRE {}", r.mre_faulty);
        assert!(r.fallback_rate < 0.01, "fallback {}", r.fallback_rate);
        assert!(r.nmed_degradation() < 1e-3);
    }

    #[test]
    fn characteristic_outranks_lut_in_class_ranking() {
        let c = campaign();
        let design = realm16();
        let mut reports = Vec::new();
        for site in [
            FaultSite::Characteristic {
                operand: Operand::A,
                bit: 3,
            },
            FaultSite::Characteristic {
                operand: Operand::B,
                bit: 2,
            },
            FaultSite::LutFactor { bit: 0 },
            FaultSite::LutFactor { bit: 3 },
        ] {
            reports.push(c.characterize(&design, Fault::stuck_at(site, true)));
            reports.push(c.characterize(&design, Fault::stuck_at(site, false)));
        }
        let classes = summarize_by_class(&reports);
        assert_eq!(classes[0].class, SiteClass::Characteristic);
        assert!(classes[0].nmed_degradation > classes[1].nmed_degradation);
    }

    #[test]
    fn transient_curve_is_monotone_in_probability() {
        let points = campaign().transient_curve(
            &realm16(),
            FaultSite::ShiftAmount { bit: 3 },
            &[0.0, 0.1, 0.5, 1.0],
        );
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].report.corruption_rate, 0.0);
        for pair in points.windows(2) {
            assert!(
                pair[1].report.nmed_faulty >= pair[0].report.nmed_faulty,
                "NMED not monotone: {:?}",
                pair.iter()
                    .map(|p| p.report.nmed_faulty)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sweep_covers_every_site_twice() {
        let design = realm16();
        let small = FaultCampaign::new(50, 3);
        let reports = small.stuck_at_sweep(&design);
        assert_eq!(reports.len(), 2 * design.fault_sites().len());
    }
}
