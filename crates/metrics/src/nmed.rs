//! Absolute-error metrics: NMED (normalized mean error distance) and
//! worst-case error distance — the other common yardsticks in the
//! approximate-arithmetic literature (the survey \[2\] the paper cites),
//! complementing the relative-error metrics of Table I.

use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_core::Multiplier;
use realm_harness::{ByteReader, Checkpoint, HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan, Threads};

use crate::engine::{Engine, Workload};
use crate::montecarlo::DEFAULT_CHUNK;

/// Absolute-error statistics for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSummary {
    /// NMED: mean |approx − exact| normalized by the maximum product
    /// `(2^N − 1)²`.
    pub nmed: f64,
    /// Worst observed |approx − exact|, normalized the same way ("WCED").
    pub worst_case: f64,
    /// Samples drawn.
    pub samples: u64,
}

/// Per-chunk partial of a distance campaign: plain sums, merged in chunk
/// order by the reduce. Opaque — only the engine and the journal touch
/// its content.
#[derive(Debug, Clone, Copy)]
pub struct DistancePartial {
    sum: f64,
    worst: f64,
}

impl Checkpoint for DistancePartial {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sum.encode(out);
        self.worst.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(DistancePartial {
            sum: f64::decode(r)?,
            worst: f64::decode(r)?,
        })
    }
}

/// The [`Workload`] of a distance-metrics campaign: chunk `i` draws
/// uniform operand pairs from `SplitMix64::stream(seed, i)` and sums
/// absolute error distances; finalization normalizes by the samples the
/// folded chunks actually cover (equal to the budget on complete runs).
#[derive(Debug, Clone, Copy)]
pub struct DistanceWorkload<'a> {
    design: &'a dyn Multiplier,
    samples: u64,
    seed: u64,
}

impl<'a> DistanceWorkload<'a> {
    /// The NMED/WCED campaign of `design` over `samples` uniform operand
    /// pairs drawn from `seed`.
    pub fn new(design: &'a dyn Multiplier, samples: u64, seed: u64) -> Self {
        DistanceWorkload {
            design,
            samples,
            seed,
        }
    }
}

impl Workload for DistanceWorkload<'_> {
    type Part = DistancePartial;
    type Output = DistanceSummary;

    fn family(&self) -> &'static str {
        "nmed"
    }

    fn subject(&self) -> String {
        self.design.label()
    }

    fn plan(&self) -> ChunkPlan {
        ChunkPlan::new(self.samples, DEFAULT_CHUNK)
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run_chunk(&self, chunk: Chunk) -> DistancePartial {
        let design = self.design;
        let max = design.max_operand();
        let mut rng = SplitMix64::stream(self.seed, chunk.index);
        let mut pairs = Vec::with_capacity(chunk.len as usize);
        for _ in 0..chunk.len {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            pairs.push((a, b));
        }
        let mut products = vec![0u64; pairs.len()];
        design.multiply_batch(&pairs, &mut products);
        let mut part = DistancePartial {
            sum: 0.0,
            worst: 0.0,
        };
        for (&(a, b), &p) in pairs.iter().zip(&products) {
            let exact = (a as u128 * b as u128) as f64;
            let d = (p as f64 - exact).abs();
            part.sum += d;
            part.worst = part.worst.max(d);
        }
        part
    }

    fn finalize(&self, parts: Vec<(u64, DistancePartial)>) -> Option<DistanceSummary> {
        let plan = self.plan();
        let covered: u64 = parts.iter().map(|&(i, _)| plan.chunk(i).len).sum();
        if covered == 0 {
            return None;
        }
        let max = self.design.max_operand();
        let norm = (max as f64) * (max as f64);
        let mut sum = 0.0f64;
        let mut worst = 0.0f64;
        for (_, part) in &parts {
            sum += part.sum;
            worst = worst.max(part.worst);
        }
        Some(DistanceSummary {
            nmed: sum / covered as f64 / norm,
            worst_case: worst / norm,
            samples: covered,
        })
    }
}

/// [`distance_metrics`] with an explicit worker-thread policy. The summary
/// is bit-identical for every policy: chunk `i` draws from
/// `SplitMix64::stream(seed, i)` and the per-chunk sums fold in chunk
/// order.
pub fn distance_metrics_threaded(
    design: &dyn Multiplier,
    samples: u64,
    seed: u64,
    threads: Threads,
) -> DistanceSummary {
    assert!(samples > 0, "need at least one sample");
    Engine::new(threads)
        .run(&DistanceWorkload::new(design, samples, seed))
        .unwrap_or_else(|| unreachable!("a nonempty campaign covers at least one sample"))
}

/// [`distance_metrics`] under a [`Supervisor`]. A complete run is
/// bit-identical to [`distance_metrics_threaded`]; a partial run
/// normalizes by — and reports — the samples actually covered.
pub fn distance_metrics_supervised(
    design: &dyn Multiplier,
    samples: u64,
    seed: u64,
    supervisor: &Supervisor,
) -> Result<Supervised<DistanceSummary>, HarnessError> {
    assert!(samples > 0, "need at least one sample");
    Engine::supervised(&DistanceWorkload::new(design, samples, seed), supervisor)
}

/// Measures NMED/WCED with `samples` uniform operand pairs on every
/// available hardware thread (the thread count never changes the result).
///
/// ```
/// use realm_core::Accurate;
/// use realm_metrics::nmed::distance_metrics;
///
/// let s = distance_metrics(&Accurate::new(16), 10_000, 1);
/// assert_eq!(s.nmed, 0.0);
/// ```
pub fn distance_metrics(design: &dyn Multiplier, samples: u64, seed: u64) -> DistanceSummary {
    distance_metrics_threaded(design, samples, seed, Threads::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::{Calm, Drum};
    use realm_core::{Accurate, Realm, RealmConfig};

    #[test]
    fn accurate_is_zero() {
        let s = distance_metrics(&Accurate::new(16), 5_000, 1);
        assert_eq!(s.nmed, 0.0);
        assert_eq!(s.worst_case, 0.0);
    }

    #[test]
    fn realm_nmed_beats_calm() {
        let realm = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
        let r = distance_metrics(&realm, 200_000, 7);
        let c = distance_metrics(&Calm::new(16), 200_000, 7);
        assert!(r.nmed < c.nmed / 4.0, "REALM {} vs cALM {}", r.nmed, c.nmed);
    }

    #[test]
    fn nmed_ordering_matches_relative_ordering_for_log_family() {
        // For designs whose relative error is roughly magnitude-
        // independent, NMED ordering tracks mean-relative-error ordering.
        let r16 = distance_metrics(
            &Realm::new(RealmConfig::n16(16, 0)).expect("paper design point"),
            100_000,
            3,
        );
        let r4 = distance_metrics(
            &Realm::new(RealmConfig::n16(4, 0)).expect("paper design point"),
            100_000,
            3,
        );
        assert!(r16.nmed < r4.nmed);
    }

    #[test]
    fn distance_is_thread_count_independent() {
        let realm = Realm::new(RealmConfig::n16(8, 3)).expect("paper design point");
        let one = distance_metrics_threaded(&realm, 300_000, 5, Threads::Fixed(1));
        for workers in [2usize, 8] {
            let many = distance_metrics_threaded(&realm, 300_000, 5, Threads::Fixed(workers));
            assert_eq!(one, many, "workers={workers}");
        }
    }

    #[test]
    fn drum_worst_case_is_bounded() {
        let s = distance_metrics(&Drum::new(16, 8).expect("valid"), 100_000, 5);
        // Relative error < 2^-6 → normalized distance below that too.
        assert!(s.worst_case < 1.0 / 64.0, "worst {}", s.worst_case);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let _ = distance_metrics(&Accurate::new(16), 0, 1);
    }
}
