//! Monte-Carlo error characterization (paper §IV-B): uniform random
//! operand pairs over `{0, …, 2^N − 1}`, seeded for reproducibility.
//!
//! The paper uses `2^24` samples per configuration; campaigns here take
//! the sample count as a parameter so tests can run small and the bench
//! harness can run the full budget.
//!
//! ## Determinism under parallelism
//!
//! A campaign is decomposed into fixed-size chunks ([`ChunkPlan`]); chunk
//! `i` draws its operands from the substream `SplitMix64::stream(seed, i)`
//! and fills a private [`ErrorAccumulator`], and the per-chunk accumulators
//! are merged **in chunk order**. Both the serial and the parallel path run
//! this exact decomposition, so the summary is bit-identical for any
//! worker-thread count — parallelism only changes wall-clock time.

use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_core::Multiplier;
use realm_harness::{CampaignId, HarnessError, Supervised, Supervisor};
use realm_par::{Chunk, ChunkPlan, Threads};

use crate::engine::{campaign_id, Engine, Workload};
use crate::summary::{ErrorAccumulator, ErrorSummary};

/// Default chunk size: 2^16 samples per chunk, i.e. 256 chunks for the
/// paper's 2^24-sample budget — plenty of load-balancing granularity while
/// keeping per-chunk bookkeeping negligible.
pub const DEFAULT_CHUNK: u64 = 1 << 16;

/// A reproducible Monte-Carlo characterization campaign.
///
/// ```
/// use realm_core::{Realm, RealmConfig};
/// use realm_metrics::MonteCarlo;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let campaign = MonteCarlo::new(50_000, 7);
/// let realm = Realm::new(RealmConfig::n16(16, 0))?;
/// let s = campaign.characterize(&realm);
/// // Table I: REALM16/t=0 mean error 0.42 %.
/// assert!((s.mean_error - 0.0042).abs() < 0.001);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonteCarlo {
    samples: u64,
    seed: u64,
    threads: Threads,
    chunk: u64,
}

impl MonteCarlo {
    /// A campaign drawing `samples` operand pairs from the RNG seeded with
    /// `seed`, using every available hardware thread ([`Threads::Auto`])
    /// and the default chunk size. The thread count never affects the
    /// result.
    pub fn new(samples: u64, seed: u64) -> Self {
        assert!(samples > 0, "campaign needs at least one sample");
        MonteCarlo {
            samples,
            seed,
            threads: Threads::Auto,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// The paper's full-budget campaign: `2^24` samples.
    pub fn paper_budget(seed: u64) -> Self {
        MonteCarlo::new(1 << 24, seed)
    }

    /// Sets the worker-thread policy. Purely a performance knob: summaries
    /// are bit-identical for every choice.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the chunk size. **This knob changes which RNG substream serves
    /// which sample**, so two campaigns compare bit-identically only at
    /// equal chunk size (the default is fine for everything but tests).
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Number of samples drawn per characterization.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread policy.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// The chunk decomposition of this campaign.
    pub fn plan(&self) -> ChunkPlan {
        ChunkPlan::new(self.samples, self.chunk)
    }

    /// The campaign's [`Workload`] over one design — the engine-facing
    /// description every entry point below drives.
    pub fn workload<'a>(&self, design: &'a dyn Multiplier) -> MonteCarloWorkload<'a> {
        MonteCarloWorkload {
            campaign: *self,
            design,
        }
    }

    /// Characterizes one design: relative error statistics over uniform
    /// random pairs (zero products skipped, as in the paper). Runs the
    /// chunk plan on the campaign's worker pool.
    pub fn characterize(&self, design: &dyn Multiplier) -> ErrorSummary {
        Engine::new(self.threads)
            .run(&self.workload(design))
            .unwrap_or_else(|| panic!("cannot summarize an empty accumulator"))
    }

    /// The campaign's identity for checkpoint journaling: binds the
    /// family, the design (via its label), the plan geometry and the
    /// seed, so a journal can never be replayed into a different
    /// campaign.
    pub fn campaign_id(&self, design: &dyn Multiplier) -> CampaignId {
        campaign_id(&self.workload(design))
    }

    /// [`characterize`](Self::characterize) under a
    /// [`Supervisor`]: checkpoint/resume, panic quarantine, deadlines
    /// and cancellation.
    ///
    /// When the report says the run is complete, the summary is
    /// bit-identical to [`characterize`](Self::characterize) —
    /// regardless of thread count, how many times the campaign was
    /// interrupted and resumed, or how many transient panics were
    /// retried. On a partial run the summary covers exactly the chunks
    /// the report accounts for (`None` if no chunk completed). The
    /// supervisor's thread policy is used (the campaign's own is for
    /// the unsupervised path).
    pub fn characterize_supervised(
        &self,
        design: &dyn Multiplier,
        supervisor: &Supervisor,
    ) -> Result<Supervised<ErrorSummary>, HarnessError> {
        Engine::supervised(&self.workload(design), supervisor)
    }

    /// Characterizes one design and simultaneously feeds every error into
    /// `sink` (used to build Fig. 5 histograms without a second pass).
    ///
    /// The sink forces serial execution, but the decomposition and fold
    /// order are identical to [`characterize`](Self::characterize), so the
    /// returned summary is bit-identical to the parallel one and the sink
    /// sees errors in deterministic chunk order.
    pub fn characterize_with<F: FnMut(f64)>(
        &self,
        design: &dyn Multiplier,
        mut sink: F,
    ) -> ErrorSummary {
        let workload = self.workload(design);
        Engine::serial_with(&workload, |chunk| workload.run_chunk_with(chunk, &mut sink))
            .unwrap_or_else(|| panic!("cannot summarize an empty accumulator"))
    }
}

/// The [`Workload`] of one [`MonteCarlo`] campaign applied to one design:
/// `samples` uniform operand pairs, chunk `i` drawn from
/// `SplitMix64::stream(seed, i)`, folded into an [`ErrorAccumulator`]
/// per chunk.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloWorkload<'a> {
    campaign: MonteCarlo,
    design: &'a dyn Multiplier,
}

impl MonteCarloWorkload<'_> {
    /// The chunk driver with a sample sink: draws the chunk's operand
    /// pairs from its own substream, multiplies them through the
    /// design's batch kernel, and accumulates relative errors (zero
    /// products skipped, as in the paper). `on_error` observes every
    /// recorded error in draw order. [`Workload::run_chunk`] is exactly
    /// this with a no-op sink.
    pub fn run_chunk_with(&self, chunk: Chunk, mut on_error: impl FnMut(f64)) -> ErrorAccumulator {
        let design = self.design;
        let mut rng = SplitMix64::stream(self.campaign.seed, chunk.index);
        let max = design.max_operand();
        let mut pairs = Vec::with_capacity(chunk.len as usize);
        for _ in 0..chunk.len {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            pairs.push((a, b));
        }
        let mut acc = ErrorAccumulator::new();
        if design.width() > 32 {
            // Wide designs: the 64-bit batch register clamps 2N-bit
            // products, so score the unclamped per-pair wide path.
            for &(a, b) in &pairs {
                let exact = a as u128 * b as u128;
                if exact == 0 {
                    continue;
                }
                let e = (design.multiply_wide(a, b) as f64 - exact as f64) / exact as f64;
                acc.push(e);
                on_error(e);
            }
            return acc;
        }
        let mut products = vec![0u64; pairs.len()];
        design.multiply_batch(&pairs, &mut products);
        for (&(a, b), &p) in pairs.iter().zip(&products) {
            let exact = a as u128 * b as u128;
            if exact == 0 {
                continue;
            }
            let e = (p as f64 - exact as f64) / exact as f64;
            acc.push(e);
            on_error(e);
        }
        acc
    }
}

impl Workload for MonteCarloWorkload<'_> {
    type Part = ErrorAccumulator;
    type Output = ErrorSummary;

    fn family(&self) -> &'static str {
        "montecarlo"
    }

    fn subject(&self) -> String {
        self.design.label()
    }

    fn plan(&self) -> ChunkPlan {
        self.campaign.plan()
    }

    fn seed(&self) -> u64 {
        self.campaign.seed
    }

    fn run_chunk(&self, chunk: Chunk) -> ErrorAccumulator {
        self.run_chunk_with(chunk, |_| {})
    }

    fn finalize(&self, parts: Vec<(u64, ErrorAccumulator)>) -> Option<ErrorSummary> {
        let mut total = ErrorAccumulator::new();
        for (_, part) in &parts {
            total.merge(part);
        }
        (total.count() > 0).then(|| total.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::Accurate;

    #[test]
    fn accurate_has_all_zero_metrics() {
        let s = MonteCarlo::new(5_000, 1).characterize(&Accurate::new(16));
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.mean_error, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min_error, 0.0);
        assert_eq!(s.max_error, 0.0);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let m = Calm::new(16);
        let a = MonteCarlo::new(20_000, 99).characterize(&m);
        let b = MonteCarlo::new(20_000, 99).characterize(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_summary() {
        let m = Calm::new(16);
        let base = MonteCarlo::new(30_000, 4).with_chunk(1 << 10);
        let serial = base.with_threads(Threads::Fixed(1)).characterize(&m);
        for workers in [2usize, 3, 8] {
            let parallel = base.with_threads(Threads::Fixed(workers)).characterize(&m);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn characterize_with_matches_characterize_bit_for_bit() {
        let m = Calm::new(16);
        let c = MonteCarlo::new(25_000, 12).with_chunk(1 << 11);
        let plain = c.characterize(&m);
        let with_sink = c.characterize_with(&m, |_| {});
        assert_eq!(plain, with_sink);
    }

    #[test]
    fn different_seeds_agree_statistically() {
        let m = Calm::new(16);
        let a = MonteCarlo::new(100_000, 1).characterize(&m);
        let b = MonteCarlo::new(100_000, 2).characterize(&m);
        assert!((a.bias - b.bias).abs() < 0.002);
        assert!((a.mean_error - b.mean_error).abs() < 0.002);
    }

    #[test]
    fn calm_matches_table1_row() {
        // Table I cALM: bias −3.85 %, mean 3.85 %, min −11.11 %, max 0.00,
        // variance 8.63 (percent²).
        let s = MonteCarlo::new(200_000, 7).characterize(&Calm::new(16));
        assert!((s.bias - (-0.0385)).abs() < 0.001, "bias {}", s.bias);
        assert!(
            (s.mean_error - 0.0385).abs() < 0.001,
            "mean {}",
            s.mean_error
        );
        assert!(s.max_error <= 0.0);
        assert!(s.min_error >= -0.1112);
        assert!(
            (s.variance_percent() - 8.63).abs() < 0.5,
            "var {}",
            s.variance_percent()
        );
    }

    #[test]
    fn sink_sees_every_error() {
        let mut n = 0u64;
        let s = MonteCarlo::new(3_000, 5).characterize_with(&Calm::new(16), |_| n += 1);
        assert_eq!(n, s.samples);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = MonteCarlo::new(0, 1);
    }
}
