//! Monte-Carlo error characterization (paper §IV-B): uniform random
//! operand pairs over `{0, …, 2^N − 1}`, seeded for reproducibility.
//!
//! The paper uses `2^24` samples per configuration; campaigns here take
//! the sample count as a parameter so tests can run small and the bench
//! harness can run the full budget.

use realm_core::multiplier::MultiplierExt;
use realm_core::rng::SplitMix64;
use realm_core::Multiplier;

use crate::summary::{ErrorAccumulator, ErrorSummary};

/// A reproducible Monte-Carlo characterization campaign.
///
/// ```
/// use realm_core::{Realm, RealmConfig};
/// use realm_metrics::MonteCarlo;
///
/// # fn main() -> Result<(), realm_core::ConfigError> {
/// let campaign = MonteCarlo::new(50_000, 7);
/// let realm = Realm::new(RealmConfig::n16(16, 0))?;
/// let s = campaign.characterize(&realm);
/// // Table I: REALM16/t=0 mean error 0.42 %.
/// assert!((s.mean_error - 0.0042).abs() < 0.001);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonteCarlo {
    samples: u64,
    seed: u64,
}

impl MonteCarlo {
    /// A campaign drawing `samples` operand pairs from the RNG seeded with
    /// `seed`.
    pub fn new(samples: u64, seed: u64) -> Self {
        assert!(samples > 0, "campaign needs at least one sample");
        MonteCarlo { samples, seed }
    }

    /// The paper's full-budget campaign: `2^24` samples.
    pub fn paper_budget(seed: u64) -> Self {
        MonteCarlo::new(1 << 24, seed)
    }

    /// Number of samples drawn per characterization.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Characterizes one design: relative error statistics over uniform
    /// random pairs (zero products skipped, as in the paper).
    pub fn characterize(&self, design: &dyn Multiplier) -> ErrorSummary {
        let mut rng = SplitMix64::new(self.seed);
        let max = design.max_operand();
        let mut acc = ErrorAccumulator::new();
        let mut drawn = 0u64;
        while drawn < self.samples {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            drawn += 1;
            if let Some(e) = design.relative_error(a, b) {
                acc.push(e);
            }
        }
        acc.finish()
    }

    /// Characterizes one design and simultaneously feeds every error into
    /// `sink` (used to build Fig. 5 histograms without a second pass).
    pub fn characterize_with<F: FnMut(f64)>(
        &self,
        design: &dyn Multiplier,
        mut sink: F,
    ) -> ErrorSummary {
        let mut rng = SplitMix64::new(self.seed);
        let max = design.max_operand();
        let mut acc = ErrorAccumulator::new();
        for _ in 0..self.samples {
            let a = rng.range_inclusive(0, max);
            let b = rng.range_inclusive(0, max);
            if let Some(e) = design.relative_error(a, b) {
                acc.push(e);
                sink(e);
            }
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_baselines::Calm;
    use realm_core::Accurate;

    #[test]
    fn accurate_has_all_zero_metrics() {
        let s = MonteCarlo::new(5_000, 1).characterize(&Accurate::new(16));
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.mean_error, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min_error, 0.0);
        assert_eq!(s.max_error, 0.0);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let m = Calm::new(16);
        let a = MonteCarlo::new(20_000, 99).characterize(&m);
        let b = MonteCarlo::new(20_000, 99).characterize(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_agree_statistically() {
        let m = Calm::new(16);
        let a = MonteCarlo::new(100_000, 1).characterize(&m);
        let b = MonteCarlo::new(100_000, 2).characterize(&m);
        assert!((a.bias - b.bias).abs() < 0.002);
        assert!((a.mean_error - b.mean_error).abs() < 0.002);
    }

    #[test]
    fn calm_matches_table1_row() {
        // Table I cALM: bias −3.85 %, mean 3.85 %, min −11.11 %, max 0.00,
        // variance 8.63 (percent²).
        let s = MonteCarlo::new(200_000, 7).characterize(&Calm::new(16));
        assert!((s.bias - (-0.0385)).abs() < 0.001, "bias {}", s.bias);
        assert!(
            (s.mean_error - 0.0385).abs() < 0.001,
            "mean {}",
            s.mean_error
        );
        assert!(s.max_error <= 0.0);
        assert!(s.min_error >= -0.1112);
        assert!(
            (s.variance_percent() - 8.63).abs() < 0.5,
            "var {}",
            s.variance_percent()
        );
    }

    #[test]
    fn sink_sees_every_error() {
        let mut n = 0u64;
        let s = MonteCarlo::new(3_000, 5).characterize_with(&Calm::new(16), |_| n += 1);
        assert_eq!(n, s.samples);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = MonteCarlo::new(0, 1);
    }
}
