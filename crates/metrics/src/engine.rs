//! The unified campaign engine: one [`Workload`] abstraction shared by
//! every characterization family in this crate, and one [`Engine`] that
//! composes `realm-par` chunking, `realm-harness` supervision and
//! `realm-obs` observability behind it.
//!
//! ## The contract
//!
//! A [`Workload`] is a *pure description* of a campaign:
//!
//! * a fixed sample space decomposed by a [`ChunkPlan`] whose geometry
//!   never depends on the worker count,
//! * a deterministic per-chunk fold ([`run_chunk`](Workload::run_chunk))
//!   producing a mergeable partial ([`Workload::Part`]) — chunk `i` must
//!   derive all of its randomness from `SplitMix64::stream(seed, i)` and
//!   must not read any state outside the workload and the chunk,
//! * a finalizer ([`finalize`](Workload::finalize)) folding the indexed
//!   partials, **in ascending chunk order**, into the family's summary
//!   type,
//! * an identity (family / subject / plan / seed) that fingerprints the
//!   campaign for checkpoint journaling via [`campaign_id`].
//!
//! Because partials are [`Checkpoint`]s, every workload is journalable
//! for free: the engine's supervised path replays completed chunks from
//! the journal and re-runs only the rest, and a resumed run folds to the
//! bit-identical summary. The differential suite in
//! `tests/engine_differential.rs` pins all of this against goldens
//! captured before the engine existed.

use realm_harness::{CampaignId, Checkpoint, HarnessError, Supervised, Supervisor};
use realm_par::{map_chunks, Chunk, ChunkPlan, Threads};

/// A deterministic, chunk-decomposed characterization campaign.
///
/// Implementations must be pure in the sense documented at the
/// [module level](self): `run_chunk(chunk)` depends only on the workload
/// configuration and the chunk (plus the chunk-indexed RNG substream),
/// and `finalize` must be insensitive to *how* the partials were
/// produced (serial, parallel, replayed from a journal) — only their
/// `(index, part)` content matters. Under those rules the engine
/// guarantees bit-identical outputs at any worker-thread count and
/// across arbitrary interrupt/resume sequences.
pub trait Workload: Sync {
    /// The mergeable per-chunk partial. Being a [`Checkpoint`] makes the
    /// workload journalable: partials are what the supervisor persists
    /// and replays.
    type Part: Checkpoint + Send;

    /// The finalized summary of a complete (or partial-but-covered)
    /// campaign.
    type Output;

    /// The campaign family tag (e.g. `"montecarlo"`, `"exhaustive"`).
    /// Part of the journal fingerprint.
    fn family(&self) -> &'static str;

    /// The campaign subject (typically the design label plus any
    /// parameters not captured by the plan/seed). Part of the journal
    /// fingerprint: two workloads that could fold different data must
    /// have different subjects.
    fn subject(&self) -> String;

    /// The chunk decomposition. Must be a pure function of the workload
    /// configuration (never of the worker count).
    fn plan(&self) -> ChunkPlan;

    /// The campaign seed (0 for exhaustive workloads that draw no
    /// randomness). Part of the journal fingerprint.
    fn seed(&self) -> u64;

    /// Computes chunk `chunk` of the campaign. Must be deterministic
    /// and independent of every other chunk.
    fn run_chunk(&self, chunk: Chunk) -> Self::Part;

    /// Folds indexed partials (ascending chunk order) into the summary.
    /// Returns `None` when the covered chunks contain nothing
    /// summarizable (e.g. zero recorded samples). The merge this
    /// performs must be associative over chunk ranges so that any
    /// replayed/executed split folds identically to a single pass.
    fn finalize(&self, parts: Vec<(u64, Self::Part)>) -> Option<Self::Output>;
}

/// The campaign's identity for checkpoint journaling: binds the family,
/// the subject, the plan geometry and the seed, so a journal can never
/// be replayed into a different campaign.
pub fn campaign_id<W: Workload + ?Sized>(workload: &W) -> CampaignId {
    CampaignId::new(
        workload.family(),
        workload.subject(),
        workload.plan(),
        workload.seed(),
    )
}

/// The one campaign driver behind every characterization family.
///
/// The engine owns nothing but a thread policy; all campaign content
/// lives in the [`Workload`]. Three entry points cover every use in the
/// workspace:
///
/// * [`run`](Engine::run) — plain parallel execution on the engine's
///   pool,
/// * [`supervised`](Engine::supervised) — checkpoint/resume, panic
///   quarantine, deadlines, cancellation and observability via a
///   [`Supervisor`],
/// * [`serial_with`](Engine::serial_with) — serial execution with a
///   caller-instrumented chunk driver (e.g. a histogram sink observing
///   every sample), folding exactly like the parallel paths.
///
/// ```
/// use realm_core::Accurate;
/// use realm_metrics::engine::Engine;
/// use realm_metrics::{MonteCarlo, Threads};
///
/// let campaign = MonteCarlo::new(10_000, 42);
/// let design = Accurate::new(16);
/// let summary = Engine::new(Threads::Auto)
///     .run(&campaign.workload(&design))
///     .unwrap_or_else(|| panic!("campaign draws at least one sample"));
/// assert_eq!(summary.mean_error, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Engine {
    threads: Threads,
}

impl Default for Engine {
    /// An engine on every available hardware thread.
    fn default() -> Self {
        Engine::new(Threads::Auto)
    }
}

impl Engine {
    /// An engine with an explicit worker-thread policy. Purely a
    /// performance knob: outputs are bit-identical for every policy.
    pub fn new(threads: Threads) -> Self {
        Engine { threads }
    }

    /// The engine's worker-thread policy.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// Runs the full campaign on the engine's worker pool and finalizes
    /// the per-chunk partials in chunk order. `None` when the workload
    /// summarizes to nothing (e.g. every sample was skipped).
    pub fn run<W: Workload>(&self, workload: &W) -> Option<W::Output> {
        let parts = map_chunks(workload.plan(), self.threads, |chunk| {
            workload.run_chunk(chunk)
        });
        workload.finalize(
            parts
                .into_iter()
                .enumerate()
                .map(|(i, part)| (i as u64, part))
                .collect(),
        )
    }

    /// Runs the campaign under a [`Supervisor`]: checkpoint/resume,
    /// panic quarantine, deadlines, cancellation, and whatever
    /// observability collector the supervisor carries.
    ///
    /// When the returned report says the run is complete, the value is
    /// bit-identical to [`run`](Engine::run) — regardless of thread
    /// count, how many times the campaign was interrupted and resumed,
    /// or how many transient panics were retried. On a partial run the
    /// value covers exactly the chunks the report accounts for (`None`
    /// if no chunk completed). The supervisor's thread policy is used
    /// (the engine's own policy only drives the unsupervised path).
    pub fn supervised<W: Workload>(
        workload: &W,
        supervisor: &Supervisor,
    ) -> Result<Supervised<W::Output>, HarnessError> {
        let outcome = supervisor.run(&campaign_id(workload), workload.plan(), |chunk| {
            workload.run_chunk(chunk)
        })?;
        Ok(outcome.fold(|parts| workload.finalize(parts)))
    }

    /// Runs the campaign serially on the calling thread through a
    /// caller-supplied chunk driver — the hook for sinks that must
    /// observe every sample (Fig. 5's histograms). The driver **must**
    /// return exactly what [`Workload::run_chunk`] would return for the
    /// chunk; the decomposition and fold order are identical to
    /// [`run`](Engine::run), so the output is bit-identical to the
    /// parallel path.
    pub fn serial_with<W: Workload>(
        workload: &W,
        mut driver: impl FnMut(Chunk) -> W::Part,
    ) -> Option<W::Output> {
        let parts = workload
            .plan()
            .chunks()
            .map(|chunk| (chunk.index, driver(chunk)))
            .collect();
        workload.finalize(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_harness::ByteReader;

    /// A toy workload: chunk `i` contributes the sum of its global
    /// sample indices; the output is the grand total.
    struct SumWorkload {
        total: u64,
        chunk: u64,
    }

    impl Workload for SumWorkload {
        type Part = u64;
        type Output = u64;

        fn family(&self) -> &'static str {
            "sum"
        }

        fn subject(&self) -> String {
            format!("0..{}", self.total)
        }

        fn plan(&self) -> ChunkPlan {
            ChunkPlan::new(self.total, self.chunk)
        }

        fn seed(&self) -> u64 {
            0
        }

        fn run_chunk(&self, chunk: Chunk) -> u64 {
            (chunk.start..chunk.end()).sum()
        }

        fn finalize(&self, parts: Vec<(u64, u64)>) -> Option<u64> {
            Some(parts.iter().map(|&(_, p)| p).sum())
        }
    }

    #[test]
    fn run_folds_every_chunk_once() {
        let w = SumWorkload {
            total: 1000,
            chunk: 7,
        };
        assert_eq!(Engine::new(Threads::Fixed(3)).run(&w), Some(999 * 1000 / 2));
    }

    #[test]
    fn serial_with_matches_run() {
        let w = SumWorkload {
            total: 500,
            chunk: 16,
        };
        let mut seen = Vec::new();
        let serial = Engine::serial_with(&w, |chunk| {
            seen.push(chunk.index);
            w.run_chunk(chunk)
        });
        assert_eq!(serial, Engine::default().run(&w));
        // The driver sees every chunk, in order.
        let expected: Vec<u64> = (0..w.plan().num_chunks()).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn campaign_id_binds_all_four_identity_fields() {
        let w = SumWorkload {
            total: 100,
            chunk: 10,
        };
        let id = campaign_id(&w);
        assert_eq!(id.family(), "sum");
        assert_eq!(id.subject(), "0..100");
        let other = SumWorkload {
            total: 100,
            chunk: 20,
        };
        assert_ne!(id.fingerprint(), campaign_id(&other).fingerprint());
    }

    #[test]
    fn supervised_equals_run_and_resumes() {
        let dir = std::env::temp_dir().join(format!("realm-engine-{}", std::process::id()));
        let w = SumWorkload {
            total: 640,
            chunk: 8,
        };
        // Interrupt after 3 chunks, then resume to completion.
        let sup = Supervisor::new()
            .with_threads(Threads::Fixed(1))
            .checkpoint_to(&dir)
            .with_chunk_budget(3);
        let partial = Engine::supervised(&w, &sup).expect("supervised run");
        assert!(!partial.report.is_complete());
        let sup = Supervisor::new()
            .with_threads(Threads::Fixed(2))
            .checkpoint_to(&dir)
            .resume(true);
        let resumed = Engine::supervised(&w, &sup).expect("resumed run");
        assert!(resumed.report.is_complete());
        assert_eq!(resumed.value, Engine::default().run(&w));
        std::fs::remove_dir_all(&dir).ok();
    }

    // `u64` already implements Checkpoint in realm-harness; keep a
    // compile-time proof that the bound composes for tuple partials too.
    #[allow(dead_code)]
    fn tuple_parts_are_checkpoints() {
        fn assert_part<T: Checkpoint>() {}
        assert_part::<(u64, Vec<f64>)>();
        let _ = ByteReader::new(&[]);
    }
}
