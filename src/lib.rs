//! # realm
//!
//! Facade crate for the REALM reproduction workspace (DATE 2020:
//! *"REALM: Reduced-Error Approximate Log-based Integer Multiplier"* by
//! Saadat, Javaid, Ignjatovic and Parameswaran): one dependency that
//! re-exports the whole ecosystem.
//!
//! * [`realm_core`] (re-exported at the root) — the REALM multiplier, the
//!   analytic error-reduction factors, the quantized LUT and the shared
//!   [`Multiplier`] trait.
//! * [`baselines`] — every comparator of the paper's Table I.
//! * [`metrics`] — Monte-Carlo error characterization, histograms,
//!   Pareto fronts, fault campaigns.
//! * [`par`] — the deterministic chunked worker pool those campaigns
//!   run on (bit-identical results for any thread count).
//! * [`fault`] — functional fault injection (transient and stuck-at)
//!   with an invariant-guarded graceful-degradation wrapper.
//! * [`synth`] — gate-level netlists for every design with a calibrated
//!   45 nm-style area/power model.
//! * [`jpeg`] — the fixed-point JPEG application study.
//! * [`dsp`] — FIR filtering, 2-D convolution, batched GEMM and int8
//!   inference (`QuantNet`, per-layer multiplier binding) through
//!   approximate multipliers.
//! * [`harness`] — checkpoint journals, panic quarantine and the
//!   campaign [`Supervisor`](harness::Supervisor).
//! * [`serve`] — the fault-tolerant multi-tenant campaign service
//!   (HTTP job API with admission control, retry/backoff and crash
//!   recovery).
//!
//! ## Quickstart
//!
//! ```
//! use realm::{Multiplier, Realm, RealmConfig};
//!
//! # fn main() -> Result<(), realm::ConfigError> {
//! let realm = Realm::new(RealmConfig::n16(16, 0))?;
//! let approx = realm.multiply(48_131, 60_007);
//! let exact = 48_131u64 * 60_007;
//! let err = (approx as f64 - exact as f64) / exact as f64;
//! assert!(err.abs() < 0.0208); // Table I: REALM16/t=0 peak error 2.08 %
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use realm_core::*;

/// The approximate-multiplier baselines of Table I (re-export of
/// `realm-baselines`).
pub use realm_baselines as baselines;

/// The DSP/ML application substrates (re-export of `realm-dsp`).
pub use realm_dsp as dsp;

/// Functional fault injection and graceful degradation (re-export of
/// `realm-fault`).
pub use realm_fault as fault;

/// Supervision and checkpoint discipline: journals, quarantine, the
/// campaign supervisor (re-export of `realm-harness`).
pub use realm_harness as harness;

/// The JPEG application study (re-export of `realm-jpeg`).
pub use realm_jpeg as jpeg;

/// The error-characterization harness (re-export of `realm-metrics`).
pub use realm_metrics as metrics;

/// The campaign observability layer: spans, metrics registry, JSONL
/// event streams (re-export of `realm-obs`).
pub use realm_obs as obs;

/// The deterministic parallel execution layer (re-export of `realm-par`).
pub use realm_par as par;

/// The fault-tolerant multi-tenant campaign service (re-export of
/// `realm-serve`).
pub use realm_serve as serve;

/// The gate-level synthesis substitute (re-export of `realm-synth`).
pub use realm_synth as synth;
