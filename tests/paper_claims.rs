//! Integration tests pinning the paper's headline quantitative claims,
//! with tolerances for Monte-Carlo noise. Each test cites the claim it
//! checks.

use realm::baselines::catalog;
use realm::baselines::{Calm, Drum, Mbm};
use realm::metrics::{characterize_range, MonteCarlo};
use realm::multiplier::MultiplierExt;
use realm::{Realm, RealmConfig};

const SAMPLES: u64 = 1 << 19;

fn mc() -> MonteCarlo {
    MonteCarlo::new(SAMPLES, 2020)
}

#[test]
fn abstract_claim_realm_mean_error_range() {
    // Abstract: "lower mean error (from 0.4% to 1.6%)" across the whole
    // REALM design space.
    let campaign = mc();
    for realm in catalog::realm_configurations() {
        let s = campaign.characterize(&realm);
        assert!(
            s.mean_error > 0.003 && s.mean_error < 0.018,
            "{}: mean error {:.3}% outside the advertised 0.4–1.6% band",
            realm.label(),
            s.mean_error * 100.0
        );
    }
}

#[test]
fn abstract_claim_realm_peak_error_range() {
    // Abstract: "lower peak error (from 2.08% to 7.4%)".
    let campaign = mc();
    for realm in catalog::realm_configurations() {
        let s = campaign.characterize(&realm);
        let peak = s.peak_error();
        assert!(
            peak > 0.015 && peak < 0.085,
            "{}: peak error {:.2}% outside the advertised 2.08–7.4% band",
            realm.label(),
            peak * 100.0
        );
    }
}

#[test]
fn abstract_claim_low_error_bias() {
    // Abstract: "very low error bias (mostly <= 0.05%)"; Table I shows
    // |bias| <= 0.05% for t <= 8 and a worst case of 0.22% at t = 9.
    let campaign = mc();
    for realm in catalog::realm_configurations() {
        let s = campaign.characterize(&realm);
        let limit = if realm.configuration().truncation <= 8 {
            0.0012
        } else {
            0.0035
        };
        assert!(
            s.bias.abs() < limit,
            "{}: bias {:.3}% too large",
            realm.label(),
            s.bias * 100.0
        );
    }
}

#[test]
fn table1_realm16_row() {
    // Table I, REALM16/t=0: bias 0.01, mean 0.42, peaks −2.08/+1.79,
    // variance 0.28.
    let s = mc().characterize(&Realm::new(RealmConfig::n16(16, 0)).expect("paper design point"));
    assert!(
        (s.mean_error - 0.0042).abs() < 0.0006,
        "mean {:.4}",
        s.mean_error
    );
    assert!(
        s.min_error > -0.024 && s.min_error < -0.017,
        "min {:.4}",
        s.min_error
    );
    assert!(s.max_error < 0.021, "max {:.4}", s.max_error);
    assert!(
        (s.variance_percent() - 0.28).abs() < 0.1,
        "var {:.3}",
        s.variance_percent()
    );
}

#[test]
fn table1_calm_row() {
    // Table I, cALM: bias −3.85, mean 3.85, peaks −11.11/0.00, var 8.63.
    let s = mc().characterize(&Calm::new(16));
    assert!((s.bias - (-0.0385)).abs() < 0.0008, "bias {:.4}", s.bias);
    assert!(
        (s.mean_error - 0.0385).abs() < 0.0008,
        "mean {:.4}",
        s.mean_error
    );
    assert!(s.min_error >= -0.1112, "min {:.4}", s.min_error);
    assert!(s.max_error <= 0.0, "max {:.4}", s.max_error);
    assert!(
        (s.variance_percent() - 8.63).abs() < 0.35,
        "var {:.3}",
        s.variance_percent()
    );
}

#[test]
fn table1_mbm_and_drum_rows() {
    // Table I, MBM/t=0: mean 2.58, peaks −7.64/+7.81.
    let campaign = mc();
    let mbm = campaign.characterize(&Mbm::new(16, 0).expect("paper design point"));
    assert!(
        (mbm.mean_error - 0.0258).abs() < 0.001,
        "MBM mean {:.4}",
        mbm.mean_error
    );
    assert!(
        mbm.min_error > -0.0790 && mbm.min_error < -0.0720,
        "MBM min {:.4}",
        mbm.min_error
    );
    assert!(
        mbm.max_error > 0.0720 && mbm.max_error < 0.0790,
        "MBM max {:.4}",
        mbm.max_error
    );
    // Table I, DRUM/k=8: bias 0.01, mean 0.37, peaks −1.49/+1.57.
    let drum = campaign.characterize(&Drum::new(16, 8).expect("paper design point"));
    assert!(
        (drum.mean_error - 0.0037).abs() < 0.0005,
        "DRUM mean {:.4}",
        drum.mean_error
    );
    assert!(drum.bias.abs() < 0.001, "DRUM bias {:.4}", drum.bias);
}

#[test]
fn fig1_realm16_beats_every_other_log_design() {
    // Fig. 1/§I: REALM16 outperforms the classical and state-of-the-art
    // log-based multipliers on both mean and peak error.
    let realm = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let realm_stats = characterize_range(&realm, 32..=255, 32..=255);
    for design in catalog::baseline_configurations() {
        if matches!(
            design.name(),
            "cALM" | "MBM" | "ALM-MAA" | "ALM-SOA" | "ImpLM"
        ) {
            let s = characterize_range(design.as_ref(), 32..=255, 32..=255);
            assert!(
                realm_stats.mean_error < s.mean_error,
                "REALM16 mean {:.3}% not below {} ({:.3}%)",
                realm_stats.mean_error * 100.0,
                design.label(),
                s.mean_error * 100.0
            );
        }
    }
}

#[test]
fn section4_error_improves_with_m_and_degrades_with_t() {
    // §IV-C: "the error improves with more partitions (increasing M)" and
    // the effect of bit truncation "becomes more prominent when t >= 7".
    let campaign = MonteCarlo::new(1 << 18, 7);
    let mean = |m: u32, t: u32| {
        campaign
            .characterize(&Realm::new(RealmConfig::n16(m, t)).expect("paper design point"))
            .mean_error
    };
    assert!(mean(16, 0) < mean(8, 0));
    assert!(mean(8, 0) < mean(4, 0));
    let (t0, t6, t9) = (mean(16, 0), mean(16, 6), mean(16, 9));
    assert!(
        (t6 - t0).abs() < 0.001,
        "t<=6 should change little: {t0} vs {t6}"
    );
    assert!(t9 > t0 * 1.5, "t=9 should degrade clearly: {t0} vs {t9}");
}

#[test]
fn synthesis_realm_vs_accurate_orderings() {
    // Table I synthesis columns: every REALM configuration saves
    // substantial area and power vs. the accurate multiplier; larger M
    // costs more; truncation saves.
    let reporter = realm::synth::Reporter::paper_setup(200, 5);
    let report = |m: u32, t: u32| {
        let realm = Realm::new(RealmConfig::n16(m, t)).expect("paper design point");
        reporter.report(&realm::synth::designs::realm_netlist(&realm))
    };
    let r16t0 = report(16, 0);
    let r16t9 = report(16, 9);
    let r4t0 = report(4, 0);
    for r in [&r16t0, &r16t9, &r4t0] {
        assert!(
            r.area_reduction > 35.0,
            "area reduction {:.1}",
            r.area_reduction
        );
        assert!(
            r.power_reduction > 40.0,
            "power reduction {:.1}",
            r.power_reduction
        );
    }
    assert!(
        r4t0.area_reduction > r16t0.area_reduction,
        "bigger LUT must cost more"
    );
    assert!(
        r16t9.area_reduction > r16t0.area_reduction,
        "truncation must save area"
    );
    assert!(
        r16t9.power_reduction > r16t0.power_reduction,
        "truncation must save power"
    );
}

#[test]
fn fig5_distributions_narrow_with_m() {
    // Fig. 5: "as M increases, the distributions become narrower".
    let campaign = MonteCarlo::new(1 << 18, 13);
    let concentration = |m: u32| {
        let realm = Realm::new(RealmConfig::n16(m, 0)).expect("paper design point");
        let mut hist = realm::metrics::Histogram::new(-0.08, 0.08, 64);
        campaign.characterize_with(&realm, |e| hist.add(e));
        hist.mass_within(0.01)
    };
    let (c4, c8, c16) = (concentration(4), concentration(8), concentration(16));
    assert!(c16 > c8 && c8 > c4, "c4={c4:.3} c8={c8:.3} c16={c16:.3}");
    assert!(
        c16 > 0.9,
        "REALM16 should keep >90% of mass within ±1%, got {c16:.3}"
    );
}
