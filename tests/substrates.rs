//! Integration tests for the later-added substrates through the facade:
//! FFT, heatmaps, PGM/PPM I/O, the CLA/Booth blocks and the Kulkarni
//! bonus baseline.

use realm::baselines::Kulkarni;
use realm::dsp::fft::{fft, fft_snr, Complex};
use realm::jpeg::pgm::{read_pgm, write_pgm};
use realm::jpeg::{psnr, Image, JpegCodec};
use realm::metrics::heatmap::render_heatmap;
use realm::metrics::{error_profile, MonteCarlo};
use realm::synth::blocks::booth::booth_netlist;
use realm::synth::blocks::cla::carry_lookahead_add;
use realm::synth::designs::kulkarni_netlist;
use realm::synth::Netlist;
use realm::{Accurate, Multiplier, Realm, RealmConfig};

#[test]
fn fft_pipeline_through_realm() {
    let realm = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let input: Vec<Complex> = (0..64)
        .map(|t| {
            let angle = 2.0 * std::f64::consts::PI * 3.0 * t as f64 / 64.0;
            Complex::new((9_000.0 * angle.cos()) as i32, 0)
        })
        .collect();
    let snr = fft_snr(&realm, &input);
    assert!(snr > 28.0, "REALM FFT SNR {snr}");
    // And the pipeline itself runs end to end.
    let mut data = input;
    fft(&realm, &mut data);
    assert!(
        data[3].mag_sq() > data[10].mag_sq() * 10.0,
        "tone bin not dominant"
    );
}

#[test]
fn heatmap_contrast_between_calm_and_realm() {
    let calm_profile = error_profile(&realm::baselines::Calm::new(16), 32..=255, 32..=255);
    let realm = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let realm_profile = error_profile(&realm, 32..=255, 32..=255);
    let dark = |s: &str| {
        s.chars()
            .filter(|&c| c == '#' || c == '%' || c == '@')
            .count()
    };
    let calm_map = render_heatmap(&calm_profile, 48, 24, 0.12);
    let realm_map = render_heatmap(&realm_profile, 48, 24, 0.12);
    assert!(
        dark(&calm_map) > 20,
        "cALM heatmap should show dark sawtooth cores"
    );
    assert_eq!(
        dark(&realm_map),
        0,
        "REALM heatmap should have no dark cells"
    );
}

#[test]
fn pgm_files_feed_the_codec() {
    // Write a synthetic scene to PGM bytes, read it back, compress it —
    // the path a user takes with a real cameraman.pgm.
    let original = Image::synthetic_cameraman();
    let mut bytes = Vec::new();
    write_pgm(&mut bytes, &original).expect("in-memory write");
    let loaded = read_pgm(&bytes[..]).expect("read back");
    assert_eq!(loaded, original);
    let codec = JpegCodec::quality50(Accurate::new(16));
    let p = psnr(&loaded, &codec.roundtrip(&loaded));
    assert!(p > 27.0, "PSNR {p}");
}

#[test]
fn cla_serves_as_drop_in_adder() {
    let mut nl = Netlist::new("cla-int");
    let a = nl.input_bus("a", 16);
    let b = nl.input_bus("b", 16);
    let zero = nl.zero();
    let s = carry_lookahead_add(&mut nl, &a, &b, zero);
    nl.output_bus("s", s);
    for (x, y) in [
        (65_535u64, 65_535u64),
        (0, 0),
        (40_000, 30_000),
        (1, 65_534),
    ] {
        assert_eq!(nl.eval_one(&[("a", x), ("b", y)], "s"), x + y);
    }
}

#[test]
fn booth_and_wallace_agree() {
    let booth = booth_netlist(12);
    let wallace = realm::synth::blocks::multiplier::wallace_netlist(12);
    let verdict = realm::synth::equiv::check_equivalence(&booth, &wallace, 400, 17);
    assert!(verdict.is_equivalent(), "{verdict:?}");
}

#[test]
fn kulkarni_is_the_adhoc_contrast_to_realm() {
    // The paper's motivation: mathematically formulated (REALM) beats
    // ad-hoc (Kulkarni) on error at comparable savings.
    let kulkarni = Kulkarni::new(16).expect("power of two");
    let realm = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let campaign = MonteCarlo::new(1 << 17, 31);
    let sk = campaign.characterize(&kulkarni);
    let sr = campaign.characterize(&realm);
    assert!(
        sr.mean_error < sk.mean_error,
        "REALM {} vs Kulkarni {}",
        sr.mean_error,
        sk.mean_error
    );
    assert!(sk.max_error <= 0.0, "Kulkarni never overestimates");
    // And its netlist is equivalent to the behavioural model.
    let nl = kulkarni_netlist(16);
    for (a, b) in [(0xFFFFu64, 0xFFFFu64), (3, 3), (12_345, 54_321)] {
        assert_eq!(
            nl.eval_one(&[("a", a), ("b", b)], "p"),
            kulkarni.multiply(a, b)
        );
    }
}

#[test]
fn kulkarni_error_is_much_worse_than_realm_at_similar_area() {
    let reporter = realm::synth::Reporter::paper_setup(150, 3);
    let realm = Realm::new(RealmConfig::n16(4, 0)).expect("paper design point");
    let r_realm = reporter.report(&realm::synth::designs::realm_netlist(&realm));
    let r_kulkarni = reporter.report(&kulkarni_netlist(16));
    // Both save area; REALM4's mean error (1.38 %) is comparable to
    // Kulkarni's (~1.4 %), but REALM's peak error is far smaller — the
    // "systematic beats ad-hoc" story in numbers.
    assert!(r_realm.area_reduction > 20.0);
    // This straightforward recursive composition (ripple adders between
    // quadrants) barely undercuts the Wallace reference — consistent with
    // the original paper's modest savings and with why the field moved to
    // formulated designs; only the sign of the saving is asserted.
    assert!(
        r_kulkarni.area_reduction > -5.0,
        "{}",
        r_kulkarni.area_reduction
    );
    let campaign = MonteCarlo::new(1 << 17, 7);
    let sk = campaign.characterize(&Kulkarni::new(16).expect("power of two"));
    let sr = campaign.characterize(&realm);
    assert!(
        sr.peak_error() < sk.peak_error() / 2.0,
        "REALM4 peak {} vs Kulkarni peak {}",
        sr.peak_error(),
        sk.peak_error()
    );
}
