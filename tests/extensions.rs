//! Integration tests for the extension subsystems: the MSE factor
//! formulation, the approximate divider (behavioural + netlist), the
//! floating-point wrapper, Verilog export, equivalence checking, fault
//! injection and the DSP/ML substrates — all exercised through the
//! facade crate.

use realm::divider::{MitchellDivider, RealmDivider};
use realm::float::{ApproxFloat, FloatFormat};
use realm::metrics::MonteCarlo;
use realm::mse::mse_table;
use realm::synth::designs::{realm_divider_netlist, realm_netlist, wallace16};
use realm::synth::equiv::check_equivalence;
use realm::synth::faults::{sample_faults, simulate_fault};
use realm::synth::verilog::to_verilog;
use realm::{Realm, RealmConfig};

#[test]
fn mse_realm_matches_paper_realm_at_q6() {
    // At the paper's q = 6 the MSE and mean-error formulations quantize to
    // nearly identical LUTs; both must stay within REALM16's envelope.
    let mse = Realm::with_table(RealmConfig::n16(16, 0), &mse_table(16).expect("valid M"))
        .expect("valid configuration");
    let s = MonteCarlo::new(1 << 18, 5).characterize(&mse);
    assert!(
        s.mean_error < 0.005,
        "MSE-REALM mean error {:.4}",
        s.mean_error
    );
    assert!(
        s.peak_error() < 0.023,
        "MSE-REALM peak {:.4}",
        s.peak_error()
    );
}

#[test]
fn divider_behavioural_and_netlist_agree_through_facade() {
    let model = RealmDivider::new(16, 8, 2).expect("valid configuration");
    let nl = realm_divider_netlist(&model);
    for (a, b) in [
        (50_000u64, 123u64),
        (65_535, 65_535),
        (0, 7),
        (7, 0),
        (1, 1),
        (999, 37),
    ] {
        assert_eq!(
            nl.eval_one(&[("a", a), ("b", b)], "q"),
            model.divide(a, b),
            "({a}, {b})"
        );
    }
}

#[test]
fn divider_improves_on_mitchell_division() {
    let realm = RealmDivider::new(16, 8, 0).expect("valid configuration");
    let classic = MitchellDivider::new(16);
    let (mut me_r, mut me_c, mut n) = (0.0, 0.0, 0u32);
    for a in (1_000..65_536u64).step_by(331) {
        for b in (2..256u64).step_by(11) {
            if a / b < 64 {
                continue;
            }
            let exact = a as f64 / b as f64;
            me_r += ((realm.divide(a, b) as f64 - exact) / exact).abs();
            me_c += ((classic.divide(a, b) as f64 - exact) / exact).abs();
            n += 1;
        }
    }
    assert!(
        me_r < me_c / 2.0,
        "REALM-div {me_r} vs Mitchell {me_c} over {n} samples"
    );
}

#[test]
fn float_wrapper_composes_with_realm() {
    let fpu = ApproxFloat::new(
        FloatFormat::FP32,
        Realm::new(RealmConfig::new(24, 16, 0, 6)).expect("valid configuration"),
    )
    .expect("24-bit core");
    let p = fpu.multiply_f32(6.02e23, 1.38e-23);
    let exact = 6.02e23f64 * 1.38e-23f64;
    let rel = (p as f64 - exact) / exact;
    assert!(rel.abs() < 0.021, "rel {rel}");
}

#[test]
fn verilog_export_covers_every_table1_design() {
    for pair in realm::synth::designs::table1_pairs() {
        let v = to_verilog(&pair.netlist);
        assert!(v.starts_with("module "), "{}", pair.netlist.name());
        assert!(
            v.trim_end().ends_with("endmodule"),
            "{}",
            pair.netlist.name()
        );
        // Assign count tracks gate count (+ output hookups).
        let output_bits: usize = pair.netlist.outputs().iter().map(|(_, n)| n.len()).sum();
        assert_eq!(
            v.matches("assign ").count(),
            pair.netlist.gate_count() + output_bits,
            "{}",
            pair.netlist.name()
        );
    }
}

#[test]
fn equivalence_checker_accepts_the_realm_pair() {
    // Rebuild the same REALM netlist twice: structurally identical,
    // therefore functionally equivalent.
    let realm = Realm::new(RealmConfig::n16(8, 3)).expect("paper design point");
    let a = realm_netlist(&realm);
    let b = realm_netlist(&realm);
    let verdict = check_equivalence(&a, &b, 200, 9);
    assert!(verdict.is_equivalent(), "{verdict:?}");
}

#[test]
fn equivalence_checker_distinguishes_m_configurations() {
    let r8 = realm_netlist(&Realm::new(RealmConfig::n16(8, 0)).expect("valid"));
    let r16 = realm_netlist(&Realm::new(RealmConfig::n16(16, 0)).expect("valid"));
    let verdict = check_equivalence(&r8, &r16, 300, 9);
    assert!(
        !verdict.is_equivalent(),
        "different M must differ functionally"
    );
}

#[test]
fn fault_injection_runs_on_the_reference_multiplier() {
    let nl = wallace16();
    for fault in sample_faults(&nl, 5, 77) {
        let impact = simulate_fault(&nl, fault, 60, 3);
        assert!((0.0..=1.0).contains(&impact.detection_rate));
    }
}

#[test]
fn sweep_keeps_table1_netlists_functional() {
    // Sweeping dead logic must not change any design's function (the
    // builders produce little dead logic, but the invariant must hold).
    let realm = Realm::new(RealmConfig::n16(4, 6)).expect("paper design point");
    let mut nl = realm_netlist(&realm);
    let removed = nl.sweep();
    use realm::Multiplier;
    for (a, b) in [(12_345u64, 54_321u64), (65_535, 1), (400, 400)] {
        assert_eq!(
            nl.eval_one(&[("a", a), ("b", b)], "p"),
            realm.multiply(a, b)
        );
    }
    assert!(removed < 50, "unexpectedly large dead cone: {removed}");
}

#[test]
fn dsp_substrates_run_through_facade() {
    use realm::dsp::conv2d::Kernel;
    use realm::dsp::fir::FirFilter;
    let m = Realm::new(RealmConfig::n16(16, 0)).expect("paper design point");
    let filtered = FirFilter::low_pass(15, 0.2).apply(&m, &[1000, -1000, 500, -500, 0, 250]);
    assert_eq!(filtered.len(), 6);
    let img = realm::jpeg::Image::from_fn(16, 16, |x, y| ((x ^ y) * 16) as u8);
    let blurred = Kernel::gaussian(3, 0.8).apply(&m, &img, 0);
    assert_eq!(blurred.width(), 16);
}
