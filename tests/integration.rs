//! Cross-crate integration tests: the facade API, the behavioural ↔
//! gate-level equivalence across the whole Table I catalogue, the signed
//! wrapper driving the JPEG pipeline, and the metrics → Pareto pipeline.

use realm::baselines::catalog;
use realm::jpeg::{psnr, Image, JpegCodec};
use realm::metrics::{pareto_front, MonteCarlo, ParetoPoint};
use realm::multiplier::MultiplierExt;
use realm::synth::designs::table1_pairs;
use realm::{Accurate, Multiplier, Realm, RealmConfig, SignMagnitude};

#[test]
fn facade_reexports_compose() {
    let realm = Realm::new(RealmConfig::default()).expect("default is a paper design point");
    let exact = Accurate::new(16);
    let e = realm.relative_error(1000, 1000).expect("nonzero");
    assert!(e.abs() < 0.021);
    assert_eq!(exact.multiply(1000, 1000), 1_000_000);
}

#[test]
fn every_table1_netlist_matches_its_model_on_samples() {
    // The synth crate verifies each design deeply; this cross-crate pass
    // sweeps the complete catalogue with a shared vector set so a catalog
    // regression (model paired with the wrong netlist) cannot slip by.
    let mut x = 0xDEAD_BEEF_CAFE_1234u64;
    let vectors: Vec<(u64, u64)> = (0..40)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 11) & 0xFFFF, (x >> 37) & 0xFFFF)
        })
        .chain([(0, 0), (65_535, 65_535), (1, 65_535)])
        .collect();
    for pair in table1_pairs() {
        for &(a, b) in &vectors {
            assert_eq!(
                pair.netlist.eval_one(&[("a", a), ("b", b)], "p"),
                pair.model.multiply(a, b),
                "{} diverges from its netlist at ({a}, {b})",
                pair.model.label()
            );
        }
    }
}

#[test]
fn signed_realm_drives_dot_products() {
    let signed = SignMagnitude::new(Realm::new(RealmConfig::n16(16, 0)).expect("paper design"));
    let xs: [i64; 6] = [120, -3400, 25_000, -32_000, 7, -1];
    let ys: [i64; 6] = [-45, 1200, -30_000, 32_000, -7, 1];
    let approx: i64 = xs
        .iter()
        .zip(&ys)
        .map(|(&x, &y)| signed.multiply_signed(x, y))
        .sum();
    let exact: i64 = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
    let rel = (approx - exact) as f64 / exact.abs() as f64;
    assert!(rel.abs() < 0.03, "signed dot product error {rel}");
}

#[test]
fn jpeg_quality_ordering_matches_table2() {
    // Table II ordering on every scene: REALM16/t=8 within ~1.5 dB of
    // accurate and clearly better than cALM.
    let accurate = JpegCodec::quality50(Accurate::new(16));
    let realm = JpegCodec::quality50(Realm::new(RealmConfig::n16(16, 8)).expect("paper design"));
    let calm = JpegCodec::quality50(realm::baselines::Calm::new(16));
    for (name, img) in Image::table2_set() {
        let pa = psnr(&img, &accurate.roundtrip(&img));
        let pr = psnr(&img, &realm.roundtrip(&img));
        let pc = psnr(&img, &calm.roundtrip(&img));
        assert!(
            pa - pr < 1.5,
            "{name}: REALM16 {pr:.2} too far below accurate {pa:.2}"
        );
        assert!(
            pr - pc > 2.0,
            "{name}: REALM16 {pr:.2} not clearly above cALM {pc:.2}"
        );
    }
}

#[test]
fn metrics_to_pareto_pipeline() {
    // Characterize a subset and extract a front; REALM must appear on it.
    let campaign = MonteCarlo::new(60_000, 99);
    let reporter = realm::synth::Reporter::paper_setup(120, 99);
    let points: Vec<ParetoPoint> = table1_pairs()
        .into_iter()
        .filter(|p| {
            matches!(
                p.model.name(),
                "REALM4" | "REALM8" | "REALM16" | "cALM" | "MBM" | "DRUM"
            )
        })
        .map(|p| {
            let e = campaign.characterize(p.model.as_ref());
            let s = reporter.report(&p.netlist);
            ParetoPoint::new(p.model.label(), s.power_reduction, e.mean_error * 100.0)
        })
        .collect();
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    assert!(
        front.iter().any(|&i| points[i].label.starts_with("REALM")),
        "REALM absent from its own Pareto front"
    );
}

#[test]
fn precomputed_tables_build_identical_multipliers() {
    // Building REALM from the frozen constants must agree bit-for-bit
    // with the analytic derivation.
    for m in [4u32, 8, 16] {
        let analytic = Realm::new(RealmConfig::n16(m, 0)).expect("paper design point");
        let table = realm::precomputed::table(m).expect("paper design point");
        let frozen = Realm::with_table(RealmConfig::n16(m, 0), &table).expect("paper design point");
        for (a, b) in [
            (12_345u64, 54_321u64),
            (65_535, 65_535),
            (40_000, 3),
            (255, 255),
        ] {
            assert_eq!(
                analytic.multiply(a, b),
                frozen.multiply(a, b),
                "M={m} ({a}, {b})"
            );
        }
    }
}

#[test]
fn catalog_row_count_matches_table1() {
    assert_eq!(catalog::table1_designs().len(), 69);
    assert_eq!(table1_pairs().len(), 69);
}
