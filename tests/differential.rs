//! Exhaustive differential tests of the REALM datapath against the
//! analytic error model in `core::analysis`.
//!
//! Coverage is the full 8-bit operand square — every `(a, b)` with
//! `a, b ∈ 0..=255` — for the paper's design grid `M ∈ {4, 8, 16} ×
//! t ∈ {0, 4}` (N = 16, q = 6, as in Table I). Three properties are
//! pinned:
//!
//! 1. **Kernel equivalence**: `multiply_batch` is bit-identical to the
//!    scalar `multiply` on every pair (the batch kernel is a
//!    hand-hoisted monomorphization, so this is a real proof
//!    obligation, not a tautology).
//! 2. **Analytic agreement**: over the top power-of-two interval
//!    (`a, b ∈ 128..=255`, where the 7-bit fraction grid is densest),
//!    the exhaustive bias and mean |error| match
//!    [`ideal_realm_stats`](realm::analysis::ideal_realm_stats)
//!    within the quantization error budget (`q = 6` LUT plus `t`
//!    truncated fraction bits).
//! 3. **Zero-mean-per-segment** (the paper's §III property): within
//!    every `(i, j)` segment pair the signed relative errors average to
//!    ≈ 0 — the error-reduction factor cancels the segment's Mitchell
//!    bias — again within quantization error, and an order of magnitude
//!    below Mitchell's own per-segment bias.

use realm::analysis::{ideal_realm_stats, mitchell_stats};
use realm::baselines::Calm;
use realm::{Multiplier, Realm, RealmConfig};

/// The design grid under test: the paper's `M` sweep at the two
/// truncation extremes used throughout the evaluation.
const DESIGNS: [(u32, u32); 6] = [(4, 0), (4, 4), (8, 0), (8, 4), (16, 0), (16, 4)];

fn realm(m: u32, t: u32) -> Realm {
    Realm::new(RealmConfig::n16(m, t)).expect("paper design point")
}

/// Signed relative error of one multiplication (`None` for zero
/// products, which the campaigns skip too).
fn rel_error(design: &dyn Multiplier, a: u64, b: u64) -> Option<f64> {
    let exact = (a * b) as f64;
    if exact == 0.0 {
        return None;
    }
    Some((design.multiply(a, b) as f64 - exact) / exact)
}

#[test]
fn batch_kernel_is_bit_identical_to_scalar_on_every_8bit_pair() {
    // All 65 536 pairs of the 8-bit square, in one batch per design.
    let pairs: Vec<(u64, u64)> = (0..=255u64)
        .flat_map(|a| (0..=255u64).map(move |b| (a, b)))
        .collect();
    for (m, t) in DESIGNS {
        let r = realm(m, t);
        let mut out = vec![0u64; pairs.len()];
        r.multiply_batch(&pairs, &mut out);
        for (&(a, b), &p) in pairs.iter().zip(&out) {
            assert_eq!(
                p,
                r.multiply(a, b),
                "M={m} t={t}: batch and scalar disagree at a={a} b={b}"
            );
        }
    }
}

#[test]
fn exhaustive_interval_stats_match_the_analytic_model() {
    // Over a, b ∈ 128..=255 both fractions sweep the full 7-bit grid, so
    // the exhaustive average is a 128×128 Riemann sum of the continuous
    // error surface; it must agree with the quadrature-exact ideal-REALM
    // statistics up to the hardware quantization the ideal model omits:
    // the q = 6 LUT rounds each factor by ≤ 2^-7 and t = 4 truncation
    // perturbs fractions by ≤ 2^-11, so half a percent absolute is a
    // generous-but-meaningful budget (Mitchell's bias is −3.85 %, an
    // order of magnitude outside it).
    for (m, t) in DESIGNS {
        let r = realm(m, t);
        let ideal = ideal_realm_stats(m).expect("valid M");
        let mut sum = 0.0;
        let mut sum_abs = 0.0;
        let mut n = 0u32;
        for a in 128..=255u64 {
            for b in 128..=255u64 {
                let e = rel_error(&r, a, b).expect("nonzero product");
                sum += e;
                sum_abs += e.abs();
                n += 1;
            }
        }
        let bias = sum / n as f64;
        let mean = sum_abs / n as f64;
        println!(
            "M={m} t={t}: bias {bias:+.5} (ideal {:+.5}), mean {mean:.5} (ideal {:.5})",
            ideal.bias, ideal.mean_error
        );
        assert!(
            (bias - ideal.bias).abs() < 5e-3,
            "M={m} t={t}: exhaustive bias {bias} vs analytic {}",
            ideal.bias
        );
        assert!(
            (mean - ideal.mean_error).abs() < 5e-3,
            "M={m} t={t}: exhaustive mean {mean} vs analytic {}",
            ideal.mean_error
        );
    }
}

#[test]
fn per_segment_mean_error_is_zero_within_quantization() {
    // The paper's §III construction: within each (i, j) segment pair the
    // reduction factor s_ij is chosen so the signed error integrates to
    // zero. Exhaustively average the 8-bit top interval per segment pair
    // and require ≈ 0 within the quantization budget — and strictly
    // tighter than Mitchell's per-segment bias, which the factors exist
    // to cancel.
    let mitchell = Calm::new(16);
    let m_stats = mitchell_stats();
    for (m, t) in DESIGNS {
        let r = realm(m, t);
        let seg_shift = 7 - m.trailing_zeros(); // 7-bit fraction → index
        let cells = (m * m) as usize;
        let mut sums = vec![0.0f64; cells];
        let mut mitchell_sums = vec![0.0f64; cells];
        let mut counts = vec![0u32; cells];
        for a in 128..=255u64 {
            for b in 128..=255u64 {
                let i = ((a - 128) >> seg_shift) as usize;
                let j = ((b - 128) >> seg_shift) as usize;
                let cell = i * m as usize + j;
                sums[cell] += rel_error(&r, a, b).expect("nonzero");
                mitchell_sums[cell] += rel_error(&mitchell, a, b).expect("nonzero");
                counts[cell] += 1;
            }
        }
        let mut worst = 0.0f64;
        let mut mitchell_worst = 0.0f64;
        for cell in 0..cells {
            assert!(counts[cell] > 0, "M={m}: empty segment cell {cell}");
            let mean = sums[cell] / counts[cell] as f64;
            let m_mean = mitchell_sums[cell] / counts[cell] as f64;
            worst = worst.max(mean.abs());
            mitchell_worst = mitchell_worst.max(m_mean.abs());
        }
        println!(
            "M={m} t={t}: worst |segment mean| {worst:.5} (Mitchell {mitchell_worst:.5}, global bias {:+.5})",
            m_stats.bias
        );
        assert!(
            worst < 8e-3,
            "M={m} t={t}: worst per-segment mean {worst} exceeds the quantization budget"
        );
        assert!(
            worst < mitchell_worst / 2.0,
            "M={m} t={t}: factors must cancel most of Mitchell's per-segment bias \
             (REALM {worst} vs Mitchell {mitchell_worst})"
        );
    }
}
