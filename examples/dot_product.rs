//! The error-cancellation motivation (paper §I, design consideration (b)):
//! in accumulation-heavy kernels — dot products, FIR filters, neural-net
//! layers — a *low-bias* approximate multiplier's errors cancel across
//! terms, while a biased one drifts.
//!
//! This example runs a 256-tap dot product through REALM (bias ≈ 0.01 %)
//! and cALM (bias −3.85 %) and compares the accumulated error.
//!
//! ```text
//! cargo run --release --example dot_product
//! ```

use realm::baselines::Calm;
use realm::{Multiplier, Realm, RealmConfig};

fn dot(m: &dyn Multiplier, xs: &[u64], ys: &[u64]) -> u64 {
    xs.iter().zip(ys).map(|(&x, &y)| m.multiply(x, y)).sum()
}

fn main() -> Result<(), realm::ConfigError> {
    // Deterministic pseudo-random vectors of 16-bit operands.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 24) & 0xFFFF
    };
    let xs: Vec<u64> = (0..256).map(|_| next().max(1)).collect();
    let ys: Vec<u64> = (0..256).map(|_| next().max(1)).collect();

    let exact: u64 = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
    let realm = Realm::new(RealmConfig::n16(16, 0))?;
    let calm = Calm::new(16);

    println!("256-tap dot product of random 16-bit vectors");
    println!("  exact : {exact}");
    for (label, m) in [("REALM16", &realm as &dyn Multiplier), ("cALM", &calm)] {
        let approx = dot(m, &xs, &ys);
        let err = (approx as f64 - exact as f64) / exact as f64 * 100.0;
        println!("  {label:<8}: {approx}  ({err:+.3}% accumulated error)");
    }
    println!();
    println!("REALM's per-term errors are double-sided and nearly unbiased, so they cancel");
    println!("as terms accumulate; cALM's one-sided errors add up to its -3.85% bias.");

    // Show convergence: accumulated error vs vector length.
    println!("\naccumulated relative error vs number of taps:");
    println!("{:>6} {:>12} {:>12}", "taps", "REALM16", "cALM");
    for taps in [4usize, 16, 64, 256] {
        let exact_n: u64 = xs[..taps]
            .iter()
            .zip(&ys[..taps])
            .map(|(&x, &y)| x * y)
            .sum();
        let r = dot(&realm, &xs[..taps], &ys[..taps]);
        let c = dot(&calm, &xs[..taps], &ys[..taps]);
        println!(
            "{:>6} {:>11.3}% {:>11.3}%",
            taps,
            (r as f64 - exact_n as f64) / exact_n as f64 * 100.0,
            (c as f64 - exact_n as f64) / exact_n as f64 * 100.0
        );
    }
    Ok(())
}
