//! Quickstart: build a REALM multiplier, multiply, inspect the error, and
//! sweep the two error-configuration knobs (`M`, `t`).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use realm::multiplier::MultiplierExt;
use realm::{ConfigError, Multiplier, Realm, RealmConfig};

fn main() -> Result<(), ConfigError> {
    // The paper's lowest-error configuration: N = 16, M = 16, t = 0, q = 6.
    let realm = Realm::new(RealmConfig::n16(16, 0))?;
    let (a, b) = (48_131u64, 60_007u64);
    let approx = realm.multiply(a, b);
    let exact = a * b;
    println!("REALM16 (t=0): {a} x {b}");
    println!("  approximate product : {approx}");
    println!("  exact product       : {exact}");
    println!(
        "  relative error      : {:+.4}%",
        (approx as f64 - exact as f64) / exact as f64 * 100.0
    );

    // The hardwired error-reduction LUT behind that result.
    let lut = realm.lut();
    println!(
        "\nhardwired LUT: {} x {} entries, {} stored bits each (q = {})",
        lut.segments(),
        lut.segments(),
        lut.storage_bits(),
        lut.precision()
    );

    // Error-configurability: sweep both knobs over a fixed operand set.
    println!("\nknob sweep (mean |relative error| over a strided operand sweep):");
    println!("{:>4} {:>10} {:>10} {:>10}", "t", "M=4", "M=8", "M=16");
    for t in [0u32, 3, 6, 9] {
        print!("{t:>4}");
        for m in [4u32, 8, 16] {
            let design = Realm::new(RealmConfig::n16(m, t))?;
            let mut sum = 0.0;
            let mut n = 0u32;
            for a in (1..65_536u64).step_by(1_023) {
                for b in (1..65_536u64).step_by(1_151) {
                    sum += design.relative_error(a, b).expect("nonzero product").abs();
                    n += 1;
                }
            }
            print!(" {:>9.3}%", sum / n as f64 * 100.0);
        }
        println!();
    }
    println!("\n(Table I: mean error 1.38% / 0.75% / 0.42% at t = 0, rising gently with t)");
    Ok(())
}
