//! The REALM-style approximate **divider** (extension beyond the paper):
//! Mitchell's 1962 log-based division with per-segment error reduction.
//!
//! ```text
//! cargo run --release --example approximate_divider
//! ```

use realm::divider::{MitchellDivider, RealmDivider};

fn main() -> Result<(), realm::ConfigError> {
    let realm = RealmDivider::new(16, 8, 0)?;
    let mitchell = MitchellDivider::new(16);

    println!("approximate division, N = 16 (REALM-style M = 8 correction):\n");
    println!(
        "{:>22} {:>10} {:>10} {:>10}",
        "a / b", "exact", "Mitchell", "REALM-div"
    );
    for (a, b) in [
        (50_000u64, 123u64),
        (61_657, 478),
        (40_000, 777),
        (65_535, 3),
        (4_096, 64),
    ] {
        println!(
            "{:>14} / {:<6} {:>10.1} {:>10} {:>10}",
            a,
            b,
            a as f64 / b as f64,
            mitchell.divide(a, b),
            realm.divide(a, b)
        );
    }

    // Mean error comparison over large quotients (where output flooring
    // does not dominate).
    let (mut me_realm, mut me_mitchell, mut n) = (0.0f64, 0.0f64, 0u64);
    for a in (256..65_536u64).step_by(127) {
        for b in (2..512u64).step_by(5) {
            if a / b < 64 {
                continue;
            }
            let exact = a as f64 / b as f64;
            me_realm += ((realm.divide(a, b) as f64 - exact) / exact).abs();
            me_mitchell += ((mitchell.divide(a, b) as f64 - exact) / exact).abs();
            n += 1;
        }
    }
    println!("\nmean |relative error| over {n} divisions with quotient >= 64:");
    println!(
        "  Mitchell (classical) : {:.3}%",
        me_mitchell / n as f64 * 100.0
    );
    println!(
        "  REALM-style divider  : {:.3}%",
        me_realm / n as f64 * 100.0
    );
    println!("\nThe same per-segment zero-mean-error derivation that powers the multiplier");
    println!("cuts the classical divider's error by ~4x; its factors are interval-");
    println!("independent too, so the hardware again needs only an M x M constant LUT.");
    Ok(())
}
