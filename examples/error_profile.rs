//! Dumps Fig. 1-style relative-error profiles as CSV to stdout: pick a
//! design by name on the command line (default `realm16`).
//!
//! ```text
//! cargo run --release --example error_profile -- calm   > calm.csv
//! cargo run --release --example error_profile -- realm16 > realm16.csv
//! ```

use realm::baselines::{Alm, AlmAdder, Calm, ImpLm, Mbm};
use realm::metrics::error_profile;
use realm::{Multiplier, Realm, RealmConfig};

fn design_by_name(name: &str) -> Box<dyn Multiplier> {
    match name {
        "calm" => Box::new(Calm::new(16)),
        "mbm" => Box::new(Mbm::new(16, 0).expect("valid configuration")),
        "implm" => Box::new(ImpLm::new(16)),
        "alm-soa" => Box::new(Alm::new(16, AlmAdder::Soa, 11)),
        "realm4" => Box::new(Realm::new(RealmConfig::n16(4, 0)).expect("valid configuration")),
        "realm8" => Box::new(Realm::new(RealmConfig::n16(8, 0)).expect("valid configuration")),
        "realm16" => Box::new(Realm::new(RealmConfig::n16(16, 0)).expect("valid configuration")),
        other => panic!(
            "unknown design '{other}' (expected calm, mbm, implm, alm-soa, realm4, realm8, realm16)"
        ),
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "realm16".to_string());
    let design = design_by_name(&name);
    eprintln!("# {} over A, B in 32..=255 (paper Fig. 1 range)", name);
    println!("a,b,relative_error_pct");
    for p in error_profile(design.as_ref(), 32..=255, 32..=255) {
        println!("{},{},{:.5}", p.a, p.b, p.error * 100.0);
    }
}
