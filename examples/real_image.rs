//! Run the Table II study on a **real** image: pass the path of any 8-bit
//! binary PGM (e.g. the actual `cameraman.pgm` from the image-processing
//! literature) and the JPEG pipeline compares the accurate multiplier
//! against REALM and cALM on it. Without an argument, the synthetic
//! substitute scene is used — making the substitution documented in
//! DESIGN.md §2 directly checkable.
//!
//! ```text
//! cargo run --release --example real_image -- /path/to/cameraman.pgm
//! ```

use realm::baselines::Calm;
use realm::jpeg::pgm::read_pgm;
use realm::jpeg::{psnr, Image, JpegCodec};
use realm::{Accurate, Realm, RealmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (label, img) = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path)?;
            (path, read_pgm(file)?)
        }
        None => {
            eprintln!("(no PGM given — using the synthetic cameraman substitute)");
            (
                "synthetic cameraman".to_string(),
                Image::synthetic_cameraman(),
            )
        }
    };
    println!(
        "image: {label} ({}x{}, mean {:.1}, std dev {:.1})\n",
        img.width(),
        img.height(),
        img.mean(),
        img.std_dev()
    );

    println!(
        "{:<22} {:>10} {:>14}",
        "multiplier", "psnr (dB)", "vs accurate"
    );
    let accurate = JpegCodec::quality50(Accurate::new(16));
    let p_acc = psnr(&img, &accurate.roundtrip(&img));
    println!("{:<22} {:>10.2} {:>14}", "Accurate", p_acc, "-");
    for (name, codec) in [
        (
            "REALM16 (t=8)",
            JpegCodec::quality50(Realm::new(RealmConfig::n16(16, 8))?),
        ),
        (
            "REALM8 (t=8)",
            JpegCodec::quality50(Realm::new(RealmConfig::n16(8, 8))?),
        ),
        (
            "REALM4 (t=8)",
            JpegCodec::quality50(Realm::new(RealmConfig::n16(4, 8))?),
        ),
    ] {
        let p = psnr(&img, &codec.roundtrip(&img));
        println!("{:<22} {:>10.2} {:>+13.2}dB", name, p, p - p_acc);
    }
    let calm = JpegCodec::quality50(Calm::new(16));
    let p_calm = psnr(&img, &calm.roundtrip(&img));
    println!(
        "{:<22} {:>10.2} {:>+13.2}dB",
        "cALM",
        p_calm,
        p_calm - p_acc
    );

    println!("\nTable II's shape — REALM within a fraction of a dB, cALM several dB down —");
    println!("should hold for any natural image; try your own PGM to verify.");
    Ok(())
}
