//! Runtime accuracy scaling (extension): a single REALM-CFG datapath
//! switching its mode per workload phase — high accuracy while a JPEG
//! frame is "important", bypass when the system wants to save energy.
//!
//! ```text
//! cargo run --release --example runtime_accuracy
//! ```

use realm::configurable::{AccuracyMode, ConfigurableRealm};
use realm::jpeg::{psnr, Image, JpegCodec};
use realm::multiplier::MultiplierExt;
use realm::synth::designs::configurable_realm_netlist;
use realm::synth::Reporter;

fn main() -> Result<(), realm::ConfigError> {
    let cfg = ConfigurableRealm::new(16, 0)?;
    println!("one datapath, four accuracy modes (2-bit mode input):\n");

    // Error per mode.
    println!("{:>8} {:>12} {:>12}", "mode", "mean err %", "peak err %");
    for mode in AccuracyMode::ALL {
        let pinned = cfg.clone().with_mode(mode);
        let (mut sum, mut peak, mut n) = (0.0f64, 0.0f64, 0u32);
        for a in (1..65_536u64).step_by(811) {
            for b in (1..65_536u64).step_by(877) {
                let e = pinned.relative_error(a, b).expect("nonzero");
                sum += e.abs();
                peak = peak.max(e.abs());
                n += 1;
            }
        }
        println!(
            "{:>8} {:>12.3} {:>12.2}",
            format!("{mode:?}"),
            sum / n as f64 * 100.0,
            peak * 100.0
        );
    }

    // Application view: JPEG quality per mode.
    let img = Image::synthetic_lena();
    println!("\nJPEG (quality 50) PSNR per mode on the lena substitute:");
    for mode in AccuracyMode::ALL {
        let codec = JpegCodec::quality50(cfg.clone().with_mode(mode));
        println!(
            "  {:<8} {:.2} dB",
            format!("{mode:?}"),
            psnr(&img, &codec.roundtrip(&img))
        );
    }

    // Hardware view: what the switchability costs.
    let nl = configurable_realm_netlist(&cfg);
    let reporter = Reporter::paper_setup(300, 21);
    let switchable = reporter.report(&nl);
    println!(
        "\nswitchable datapath: {} gates, {:.1}% area reduction vs accurate",
        nl.gate_count(),
        switchable.area_reduction
    );
    println!(
        "(a fixed REALM16 saves {:.1}%; the difference buys runtime mode control)",
        reporter
            .report(&realm::synth::designs::realm_netlist(&realm::Realm::new(
                realm::RealmConfig::n16(16, 0)
            )?))
            .area_reduction
    );
    Ok(())
}
