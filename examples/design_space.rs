//! Design-space exploration: characterize every Table I configuration
//! with a medium Monte-Carlo budget, report the accuracy vs.
//! power-efficiency Pareto front (the paper's Fig. 4 claim), and show how
//! a designer would pick a configuration for an error budget.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use realm::metrics::{pareto_front, MonteCarlo, ParetoPoint};
use realm::multiplier::MultiplierExt;
use realm::synth::Reporter;

fn main() {
    let campaign = MonteCarlo::new(1 << 18, 42);
    let reporter = Reporter::paper_setup(300, 42);

    println!("characterizing all 65 Table I configurations ...");
    let mut points = Vec::new();
    let mut measurements = Vec::new();
    for pair in realm::synth::designs::table1_pairs() {
        let errors = campaign.characterize(pair.model.as_ref());
        let synth = reporter.report(&pair.netlist);
        let label = pair.model.label();
        if errors.mean_error <= 0.04 && errors.peak_error() <= 0.15 {
            points.push(ParetoPoint::new(
                label.clone(),
                synth.power_reduction,
                errors.mean_error * 100.0,
            ));
        }
        measurements.push((label, errors, synth));
    }

    println!("\nPareto front (mean error vs power reduction):");
    let front = pareto_front(&points);
    for &i in &front {
        let p = &points[i];
        println!(
            "  {:<22} power -{:>5.1}%   mean error {:>5.2}%",
            p.label, p.gain, p.cost
        );
    }
    let realm_points = front
        .iter()
        .filter(|&&i| points[i].label.starts_with("REALM"))
        .count();
    println!(
        "  -> {realm_points}/{} front points are REALM configurations",
        front.len()
    );

    // A designer's query: cheapest configuration under a 1 % mean-error
    // budget.
    let budget = 0.01;
    let best = measurements
        .iter()
        .filter(|(_, e, _)| e.mean_error <= budget)
        .max_by(|a, b| {
            a.2.power_reduction
                .partial_cmp(&b.2.power_reduction)
                .expect("finite reductions")
        })
        .expect("at least one design fits the budget");
    println!(
        "\ncheapest design with mean error <= {:.1}%: {} ({:.1}% power reduction, ME {:.2}%)",
        budget * 100.0,
        best.0,
        best.2.power_reduction,
        best.1.mean_error * 100.0
    );
}
