//! Application study: compress the three benchmark scenes with the
//! accurate multiplier and a few approximate designs, reporting PSNR and
//! estimated compressed size (the paper's Table II experiment plus a
//! size column).
//!
//! ```text
//! cargo run --release --example jpeg_compression
//! ```

use realm::baselines::Calm;
use realm::jpeg::{psnr, Image, JpegCodec};
use realm::{Accurate, Realm, RealmConfig};

fn main() -> Result<(), realm::ConfigError> {
    let images = Image::table2_set();
    println!("JPEG quality 50, 16-bit fixed-point DCT through each multiplier\n");
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>12}",
        "image", "multiplier", "psnr (dB)", "kbits", "vs accurate"
    );

    for (name, img) in &images {
        let accurate = JpegCodec::quality50(Accurate::new(16)).compress(img);
        let p_acc = psnr(img, &accurate.reconstruction);
        println!(
            "{:<12} {:>12} {:>14.2} {:>10.1} {:>12}",
            name,
            "Accurate",
            p_acc,
            accurate.estimated_bits as f64 / 1000.0,
            "-"
        );
        let realm16 = JpegCodec::quality50(Realm::new(RealmConfig::n16(16, 8))?).compress(img);
        let realm4 = JpegCodec::quality50(Realm::new(RealmConfig::n16(4, 8))?).compress(img);
        let calm = JpegCodec::quality50(Calm::new(16)).compress(img);
        for (label, result) in [
            ("REALM16 t=8", realm16),
            ("REALM4 t=8", realm4),
            ("cALM", calm),
        ] {
            let p = psnr(img, &result.reconstruction);
            println!(
                "{:<12} {:>12} {:>14.2} {:>10.1} {:>+11.2}dB",
                "",
                label,
                p,
                result.estimated_bits as f64 / 1000.0,
                p - p_acc
            );
        }
    }
    println!("\npaper shape: REALM within a fraction of a dB of accurate; cALM drops many dB");
    Ok(())
}
